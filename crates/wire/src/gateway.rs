//! The gateway: N concurrent sensor connections feeding one
//! [`ServeRuntime`], predictions streaming back.
//!
//! # Threading model (DESIGN.md §10 has the diagram)
//!
//! * one **accept loop** pulls connections off the [`Acceptor`], flips
//!   each into its non-blocking [`PollConn`](crate::transport::PollConn)
//!   face and hands it round-robin to a reactor;
//! * a small pool of **reactor threads** ([`GatewayConfig::reactors`],
//!   default 1) owns every connection outright: each sweep retries
//!   stalled control frames, drains the outbound queue through a
//!   per-connection write ring with vectored writes, then reads and
//!   parses inbound bytes — `Record`/`Batch` records are decoded
//!   *zero-copy* out of the receive buffer
//!   ([`crate::codec::BatchView`]) and submitted through a
//!   [`SensorClient`] under the *client's* sequence numbers
//!   ([`SensorClient::submit_sequenced`]), so NACKs and predictions
//!   correlate at the sensor. A panic inside one connection's handler
//!   is contained to that connection (`wire.connection_panics`); its
//!   in-flight records are re-counted as shed so the accounting
//!   identity still closes;
//! * the bounded per-connection outbound queue is still the
//!   slow-client boundary: its [`BackpressurePolicy`] decides whether
//!   a sensor that stops reading stalls the router (`Block`), loses
//!   its oldest predictions (`DropOldest`) or its newest
//!   (`RejectNewest`);
//! * one **router** thread receives every [`Prediction`] from the
//!   runtime and pushes it to the owning sensor's outbound queue.
//!
//! # Accounting
//!
//! The gateway increments the [`wire_stats`] counters on the runtime's
//! own [`MetricsRegistry`](occusense_serve::MetricsRegistry);
//! [`ServeRuntime::shutdown`] mirrors them into
//! [`ServeReport::wire`](occusense_serve::ServeReport) and
//! `FaultReport::{transport_rejections, transport_timeouts,
//! connection_panics}`, and `ServeReport::unaccounted_records()`
//! extends the serve identity across the wire:
//! `decoded = ingested + rejected + shed`. A record that made it off
//! the socket cannot vanish — it is scored, NACKed back, or counted
//! as shed (including records stranded by a contained connection
//! panic).

use crate::codec::{Frame, PredictionFrame};
use crate::frame::DEFAULT_MAX_PAYLOAD;
use crate::reactor::{reactor_loop, Injector, ReactorCtx};
use crate::transport::{Accepted, Acceptor};
use crate::WireError;
use occusense_core::detector::OccupancyDetector;
use occusense_core::temporal::TemporalDetector;
use occusense_serve::{
    wire_stats, BackpressurePolicy, BoundedQueue, Counter, MetricsRegistry, Prediction,
    SensorClient, ServeConfig, ServeReport, ServeRuntime,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Gateway tuning knobs (transport-level knobs — timeouts, frame-size
/// ceilings — live on the transport configs instead).
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// How long a fresh connection may take to present its `Hello`
    /// before it is dropped (counted as a transport timeout).
    pub handshake_timeout: Duration,
    /// Capacity of each connection's outbound prediction queue.
    pub outbound_capacity: usize,
    /// Slow-client policy of the outbound queues. `DropOldest` (the
    /// default) keeps one stalled sensor from head-of-line blocking
    /// the router; `Block` is lossless and right for cooperative
    /// clients that always drain (e.g. `wire_storm --verify`) — the
    /// reactor never parks on a full `Block` queue, it pauses that
    /// connection's ingress instead.
    pub outbound_policy: BackpressurePolicy,
    /// After a client's `Goodbye`, how long a connection may go
    /// without *progress* (new predictions delivered or shed) before
    /// the reactor gives up on draining its in-flight predictions.
    pub drain_grace: Duration,
    /// Number of reactor threads connections are sharded across.
    /// Values `< 1` are treated as 1.
    pub reactors: usize,
    /// Largest frame payload a connection's receive buffer will grow
    /// to hold; oversize frames are refused as malformed.
    pub max_payload: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            handshake_timeout: Duration::from_secs(5),
            outbound_capacity: 1024,
            outbound_policy: BackpressurePolicy::DropOldest,
            drain_grace: Duration::from_secs(2),
            reactors: 1,
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// Outbound queues of the live connections, keyed by sensor id. The
/// router resolves each prediction through this map; a reactor
/// registers a connection's queue after its handshake and deregisters
/// it before closing.
pub(crate) type Registry = Arc<Mutex<BTreeMap<String, Arc<BoundedQueue<Frame>>>>>;

/// `wire_stats` counter handles shared by every gateway thread.
#[derive(Clone)]
pub(crate) struct GatewayCounters {
    pub(crate) connections: Arc<Counter>,
    pub(crate) frames_received: Arc<Counter>,
    pub(crate) records_decoded: Arc<Counter>,
    pub(crate) records_ingested: Arc<Counter>,
    pub(crate) records_rejected: Arc<Counter>,
    pub(crate) records_shed: Arc<Counter>,
    pub(crate) malformed_frames: Arc<Counter>,
    pub(crate) predictions_routed: Arc<Counter>,
    pub(crate) predictions_sent: Arc<Counter>,
    pub(crate) predictions_unrouted: Arc<Counter>,
    pub(crate) transport_timeouts: Arc<Counter>,
    pub(crate) connection_panics: Arc<Counter>,
    pub(crate) lock_recoveries: Arc<Counter>,
    pub(crate) thread_panics: Arc<Counter>,
}

impl GatewayCounters {
    pub(crate) fn new(m: &MetricsRegistry) -> Self {
        Self {
            connections: m.counter(wire_stats::CONNECTIONS),
            frames_received: m.counter(wire_stats::FRAMES_RECEIVED),
            records_decoded: m.counter(wire_stats::RECORDS_DECODED),
            records_ingested: m.counter(wire_stats::RECORDS_INGESTED),
            records_rejected: m.counter(wire_stats::RECORDS_REJECTED),
            records_shed: m.counter(wire_stats::RECORDS_SHED),
            malformed_frames: m.counter(wire_stats::MALFORMED_FRAMES),
            predictions_routed: m.counter(wire_stats::PREDICTIONS_ROUTED),
            predictions_sent: m.counter(wire_stats::PREDICTIONS_SENT),
            predictions_unrouted: m.counter(wire_stats::PREDICTIONS_UNROUTED),
            transport_timeouts: m.counter(wire_stats::TRANSPORT_TIMEOUTS),
            connection_panics: m.counter(wire_stats::CONNECTION_PANICS),
            lock_recoveries: m.counter(wire_stats::LOCK_RECOVERIES),
            thread_panics: m.counter(wire_stats::THREAD_PANICS),
        }
    }
}

/// Joins a gateway thread, *counting* a panic surfaced by the join
/// instead of discarding it. The panic was already terminal for the
/// thread — what must not vanish is the evidence, so it lands in
/// `wire.thread_panics` and the shutdown report.
fn join_counted(handle: JoinHandle<()>, thread_panics: &Counter) {
    if handle.join().is_err() {
        thread_panics.inc();
    }
}

/// Locks the registry, *recovering* from poison instead of
/// propagating it. A connection handler that panicked while holding
/// the lock can only have left the map between two valid states (one
/// `BTreeMap` insert/remove, both atomic from the reader's view), so
/// continuing to route against it is safe — and strictly better than
/// escalating one connection's panic into a gateway-wide crash.
/// Recoveries are counted so the report shows the near-miss.
pub(crate) fn lock_registry<'a>(
    registry: &'a Registry,
    counters: &GatewayCounters,
) -> MutexGuard<'a, BTreeMap<String, Arc<BoundedQueue<Frame>>>> {
    match registry.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            counters.lock_recoveries.inc();
            poisoned.into_inner()
        }
    }
}

/// The running gateway. [`shutdown`](Self::shutdown) drains
/// everything and returns the runtime's [`ServeReport`], whose
/// [`wire`](occusense_serve::ServeReport) section carries the
/// transport counters.
pub struct Gateway {
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    registry: Registry,
    runtime: Option<Arc<ServeRuntime>>,
    accept: Option<JoinHandle<()>>,
    router: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    counters: GatewayCounters,
}

impl Gateway {
    /// Boots a [`ServeRuntime`] around `detector` and starts accepting
    /// sensor connections from `acceptor`.
    ///
    /// # Errors
    ///
    /// [`WireError::Serve`] when the runtime refuses its
    /// configuration.
    pub fn start(
        detector: OccupancyDetector,
        serve: ServeConfig,
        config: GatewayConfig,
        acceptor: Box<dyn Acceptor>,
    ) -> Result<Self, WireError> {
        let (runtime, predictions) =
            ServeRuntime::start(detector, serve).map_err(WireError::Serve)?;
        Ok(Self::boot(runtime, predictions, config, acceptor))
    }

    /// Boots a *stateful temporal* [`ServeRuntime`] around the GRU
    /// sequence `detector` and starts accepting sensor connections.
    ///
    /// Each connected sensor's hidden state is carried between
    /// micro-batches; when a sensor's last connection closes, its
    /// state is evicted, so a later reconnect restarts the sequence
    /// from zeros. A reconnect that *replaces* a live connection under
    /// the same sensor id keeps the state (the stale connection's
    /// deregistration is a no-op by the ptr-eq rule).
    ///
    /// # Errors
    ///
    /// [`WireError::Serve`] when the runtime refuses its configuration
    /// (e.g. online training requested — unsupported for temporal
    /// models).
    pub fn start_temporal(
        detector: TemporalDetector,
        serve: ServeConfig,
        config: GatewayConfig,
        acceptor: Box<dyn Acceptor>,
    ) -> Result<Self, WireError> {
        let (runtime, predictions) =
            ServeRuntime::start_temporal(detector, serve).map_err(WireError::Serve)?;
        Ok(Self::boot(runtime, predictions, config, acceptor))
    }

    /// The transport topology shared by both boot modes: router +
    /// reactor pool + accept loop around an already-started runtime.
    fn boot(
        runtime: ServeRuntime,
        predictions: mpsc::Receiver<Prediction>,
        config: GatewayConfig,
        acceptor: Box<dyn Acceptor>,
    ) -> Self {
        let runtime = Arc::new(runtime);
        let counters = GatewayCounters::new(runtime.metrics());
        let registry: Registry = Arc::new(Mutex::new(BTreeMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));

        let router = {
            let registry = Arc::clone(&registry);
            let counters = counters.clone();
            std::thread::Builder::new()
                .name("wire-router".into())
                .spawn(move || route_predictions(predictions, registry, counters))
                // lint:allow(panic, reason = "startup-only: thread spawn failure is unrecoverable resource exhaustion, before any connection is accepted")
                .expect("spawn router")
        };

        let ctx = ReactorCtx {
            runtime: Arc::clone(&runtime),
            registry: Arc::clone(&registry),
            config,
            counters,
            stop: Arc::clone(&stop),
            draining: Arc::clone(&draining),
        };
        let pool = config.reactors.max(1);
        let mut injectors = Vec::with_capacity(pool);
        let mut reactors = Vec::with_capacity(pool);
        for i in 0..pool {
            let injector = Arc::new(Injector::new());
            let handle = {
                let injector = Arc::clone(&injector);
                let ctx = ctx.clone();
                std::thread::Builder::new()
                    .name(format!("wire-reactor-{i}"))
                    .spawn(move || reactor_loop(injector, ctx))
                    // lint:allow(panic, reason = "startup-only: thread spawn failure is unrecoverable resource exhaustion, before any connection is accepted")
                    .expect("spawn reactor")
            };
            injectors.push(injector);
            reactors.push(handle);
        }

        let accept = {
            let stop = Arc::clone(&stop);
            let counters = ctx.counters.clone();
            std::thread::Builder::new()
                .name("wire-accept".into())
                .spawn(move || accept_loop(acceptor, stop, injectors, counters))
                // lint:allow(panic, reason = "startup-only: thread spawn failure is unrecoverable resource exhaustion, before any connection is accepted")
                .expect("spawn acceptor")
        };

        Self {
            stop,
            draining,
            registry,
            runtime: Some(runtime),
            accept: Some(accept),
            router: Some(router),
            reactors,
            counters: ctx.counters,
        }
    }

    /// Enters drain-and-handoff mode: live connections keep being
    /// served to completion, but every *new* handshake is refused with
    /// a `Shutdown` NACK (retryable — the sensor should reconnect to
    /// another worker). Returns the sensor ids with a live route at
    /// the moment of the snapshot, which is exactly the set a fleet
    /// controller must re-route before calling
    /// [`shutdown`](Self::shutdown) on this gateway. Idempotent.
    pub fn drain(&self) -> Vec<String> {
        self.draining.store(true, Ordering::SeqCst);
        lock_registry(&self.registry, &self.counters)
            .keys()
            .cloned()
            .collect()
    }

    /// Whether [`drain`](Self::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// A direct in-process ingestion handle on the underlying runtime
    /// (used by drivers that mix wire and local traffic).
    pub fn local_client(&self, sensor_id: &str) -> Option<SensorClient> {
        self.runtime.as_ref().map(|rt| rt.client(sensor_id))
    }

    /// Live model version of the underlying runtime.
    pub fn model_version(&self) -> u64 {
        self.runtime.as_ref().map_or(0, |rt| rt.model_version())
    }

    /// The tenant the underlying runtime serves (empty = untenanted);
    /// handshakes claiming a different tenant are refused.
    pub fn tenant(&self) -> String {
        self.runtime
            .as_ref()
            .map_or_else(String::new, |rt| rt.tenant().to_string())
    }

    /// Hot-swaps the serving temporal model on a runtime booted with
    /// [`Gateway::start_temporal`]; every sensor's carried state is
    /// zero-reset at its first post-swap batch. Returns the new
    /// version. On a frame-mode runtime the workers quarantine rather
    /// than mis-score (see `occusense_serve`).
    pub fn publish_temporal(&self, detector: TemporalDetector) -> u64 {
        self.runtime
            .as_ref()
            .map_or(0, |rt| rt.publish_temporal(detector))
    }

    /// Number of sensors currently holding temporal sequence state
    /// (always 0 on a frame-mode runtime).
    pub fn active_sensor_states(&self) -> usize {
        self.runtime
            .as_ref()
            .map_or(0, |rt| rt.active_sensor_states())
    }

    /// Stops accepting, drains every connection and the runtime, and
    /// returns the final report (wire counters included).
    pub fn shutdown(mut self) -> ServeReport {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            // A panicking accept loop already stopped accepting; the
            // runtime report below still accounts every record.
            join_counted(h, &self.counters.thread_panics);
        }
        // The reactors wind every connection down (bounded by
        // `drain_grace` per phase) and then exit.
        for h in self.reactors.drain(..) {
            join_counted(h, &self.counters.thread_panics);
        }
        let runtime = self
            .runtime
            .take()
            .and_then(|rt| Arc::try_unwrap(rt).ok())
            // lint:allow(panic, reason = "invariant: the accept loop and every reactor joined above, so this is the last Arc; failure means a leaked thread and no truthful report exists")
            .expect("gateway runtime still shared after joining all threads");
        let mut report = runtime.shutdown();
        if let Some(h) = self.router.take() {
            // The prediction channel closed when the workers exited,
            // so the router has already run to completion.
            join_counted(h, &self.counters.thread_panics);
        }
        // The router joined *after* the runtime mirrored the wire
        // counters into the report; re-read so a router panic is not
        // lost from the accounting.
        report.wire.thread_panics = self.counters.thread_panics.get();
        report
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            join_counted(h, &self.counters.thread_panics);
        }
        for h in self.reactors.drain(..) {
            join_counted(h, &self.counters.thread_panics);
        }
        // Dropping the runtime Arc joins the serve threads (its Drop),
        // which closes the prediction channel and ends the router.
        self.runtime.take();
        if let Some(h) = self.router.take() {
            join_counted(h, &self.counters.thread_panics);
        }
    }
}

fn accept_loop(
    mut acceptor: Box<dyn Acceptor>,
    stop: Arc<AtomicBool>,
    injectors: Vec<Arc<Injector>>,
    counters: GatewayCounters,
) {
    let mut next: usize = 0;
    // SeqCst to match the shutdown store: the flag is the only
    // handshake between `shutdown()` and this loop, so its load must
    // synchronise with the store rather than trail it arbitrarily.
    while !stop.load(Ordering::SeqCst) {
        match acceptor.accept() {
            Ok(Accepted::Connection(conn)) => match conn.into_poll() {
                Ok(io) => {
                    if let Some(injector) = injectors.get(next % injectors.len().max(1)) {
                        injector.push(io);
                    }
                    next = next.wrapping_add(1);
                }
                // The socket died between accept and non-blocking
                // setup — same bucket as a pre-handshake drop.
                Err(_) => counters.transport_timeouts.inc(),
            },
            Ok(Accepted::TimedOut) => continue,
            Ok(Accepted::Closed) => break,
            Err(_) => break,
        }
    }
}

fn route_predictions(
    predictions: mpsc::Receiver<Prediction>,
    registry: Registry,
    counters: GatewayCounters,
) {
    while let Ok(p) = predictions.recv() {
        let queue = lock_registry(&registry, &counters)
            .get(p.sensor_id.as_ref())
            .cloned();
        let Some(queue) = queue else {
            counters.predictions_unrouted.inc();
            continue;
        };
        counters.predictions_routed.inc();
        let frame = Frame::Prediction(PredictionFrame {
            seq: p.seq,
            timestamp_s: p.timestamp_s,
            occupied: p.occupied,
            proba: p.proba,
            model_version: p.model_version,
            latency_ns: p.latency.as_nanos() as u64,
        });
        // A full `RejectNewest` queue or a closed (disconnecting)
        // queue loses the frame; `predictions_routed − predictions_sent`
        // makes the loss visible in the report.
        // lint:allow(swallow, reason = "the loss is already counted: predictions_routed minus predictions_sent is exactly the frames this push dropped")
        let _ = queue.push(frame);
    }
}

pub(crate) fn register(
    registry: &Registry,
    sensor_id: &str,
    queue: &Arc<BoundedQueue<Frame>>,
    counters: &GatewayCounters,
) {
    lock_registry(registry, counters).insert(sensor_id.to_string(), Arc::clone(queue));
}

/// Removes this connection's registry entry — only if it still points
/// at *our* queue. A reconnect under the same sensor id replaces the
/// entry; the stale connection must not tear down its successor's
/// route. Returns whether the entry was removed — `true` means this
/// was the sensor's last live route, which is the eviction signal for
/// its temporal sequence state.
pub(crate) fn deregister(
    registry: &Registry,
    sensor_id: &str,
    queue: &Arc<BoundedQueue<Frame>>,
    counters: &GatewayCounters,
) -> bool {
    let mut guard = lock_registry(registry, counters);
    if guard.get(sensor_id).is_some_and(|q| Arc::ptr_eq(q, queue)) {
        guard.remove(sensor_id);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::connect;
    use crate::transport::{
        loopback, Connection, FrameSink, FrameSource, LoopbackConfig, PollConn, PollRead,
        PollWrite, TransportError,
    };
    use crate::ClientEvent;
    use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
    use occusense_core::sim::{simulate, ScenarioConfig};
    use std::io::IoSlice;

    fn quick_detector() -> OccupancyDetector {
        let train = simulate(&ScenarioConfig::quick(200.0, 11));
        OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 1,
                seed: 11,
                ..DetectorConfig::default()
            },
        )
    }

    /// A connection whose poll face panics on first read — the
    /// injected fault for the containment regression test.
    struct PanicConn;

    struct PanicPoll;

    impl PollConn for PanicPoll {
        fn poll_read(&mut self, _buf: &mut [u8]) -> Result<PollRead, TransportError> {
            panic!("injected connection panic");
        }
        fn poll_write(&mut self, _bufs: &[IoSlice<'_>]) -> Result<PollWrite, TransportError> {
            Ok(PollWrite::WouldBlock)
        }
        fn peer(&self) -> String {
            "panic-poll".into()
        }
    }

    impl Connection for PanicConn {
        fn split(self: Box<Self>) -> (Box<dyn FrameSink>, Box<dyn FrameSource>) {
            unreachable!("the reactor gateway only uses the poll face")
        }
        fn into_poll(self: Box<Self>) -> Result<Box<dyn PollConn>, TransportError> {
            Ok(Box::new(PanicPoll))
        }
        fn peer(&self) -> String {
            "panic-conn".into()
        }
    }

    /// Yields one poisoned connection, then delegates to the real
    /// loopback acceptor.
    struct PanicFirstAcceptor {
        injected: bool,
        inner: Box<dyn Acceptor>,
    }

    impl Acceptor for PanicFirstAcceptor {
        fn accept(&mut self) -> Result<Accepted, TransportError> {
            if !self.injected {
                self.injected = true;
                return Ok(Accepted::Connection(Box::new(PanicConn)));
            }
            self.inner.accept()
        }
    }

    /// Regression (issue 7): a panicking connection handler used to
    /// poison the shared registry lock and crash every other
    /// connection's thread through `.expect("connection registry
    /// poisoned")`. The reactor must contain the panic to the one
    /// connection, keep serving its siblings, and still close the
    /// accounting identity.
    #[test]
    fn one_panicking_connection_does_not_cascade() {
        const RECORDS: usize = 40;
        let detector = quick_detector();
        let (acceptor, connector) = loopback(LoopbackConfig::default());
        let gateway = Gateway::start(
            detector,
            occusense_serve::ServeConfig {
                online: None,
                ..occusense_serve::ServeConfig::default()
            },
            GatewayConfig {
                outbound_policy: BackpressurePolicy::Block,
                ..GatewayConfig::default()
            },
            Box::new(PanicFirstAcceptor {
                injected: false,
                inner: Box::new(acceptor),
            }),
        )
        .expect("gateway");

        // The healthy sensor connects *after* the poisoned connection
        // is already inside the reactor.
        let conn = connector.connect().expect("connect");
        let (mut tx, mut rx) =
            connect(conn, "survivor", Duration::from_secs(5)).expect("handshake");
        let records: Vec<_> = simulate(&ScenarioConfig::quick(30.0, 3))
            .records()
            .iter()
            .copied()
            .take(RECORDS)
            .collect();
        assert_eq!(records.len(), RECORDS, "scenario must yield enough records");
        for r in &records {
            tx.send(*r, None).expect("send");
        }
        tx.finish().expect("finish");
        let mut preds = 0;
        loop {
            match rx.recv().expect("receive") {
                ClientEvent::Prediction(_) => preds += 1,
                ClientEvent::Goodbye(_) | ClientEvent::Closed => break,
                ClientEvent::TimedOut => continue,
                other => panic!("unexpected event {other:?}"),
            }
        }
        drop(rx);
        let report = gateway.shutdown();

        assert_eq!(preds, RECORDS, "the healthy sensor must be fully served");
        assert_eq!(
            report.wire.connection_panics, 1,
            "the panic must be counted"
        );
        assert_eq!(report.faults.connection_panics, 1);
        assert_eq!(
            report.wire.connections, 1,
            "the poisoned connection died before its handshake"
        );
        assert_eq!(report.unaccounted_records(), 0);
        assert_eq!(
            report.wire.thread_panics, 0,
            "a contained connection panic must not read as a gateway thread panic"
        );
    }

    /// `join_counted` is the only way gateway threads are joined: a
    /// panicking thread increments `wire.thread_panics` instead of the
    /// old `let _ = handle.join()` silently discarding the evidence,
    /// and a clean thread leaves the counter untouched.
    #[test]
    fn join_counted_counts_panics_and_only_panics() {
        let metrics = MetricsRegistry::new();
        let counters = GatewayCounters::new(&metrics);

        join_counted(std::thread::spawn(|| {}), &counters.thread_panics);
        assert_eq!(counters.thread_panics.get(), 0, "clean join must not count");

        join_counted(
            std::thread::spawn(|| panic!("injected thread panic")),
            &counters.thread_panics,
        );
        assert_eq!(
            counters.thread_panics.get(),
            1,
            "a panicking join must land in the counter"
        );
    }

    /// The registry lock itself recovers from poison: a thread that
    /// panics while holding it must not take down registration,
    /// deregistration or routing — and each recovery is counted.
    #[test]
    fn registry_lock_recovers_from_poison() {
        let metrics = MetricsRegistry::new();
        let counters = GatewayCounters::new(&metrics);
        let registry: Registry = Arc::new(Mutex::new(BTreeMap::new()));

        let queue = Arc::new(BoundedQueue::<Frame>::new(4, BackpressurePolicy::Block));
        register(&registry, "before", &queue, &counters);

        // Poison the lock.
        let poisoner = Arc::clone(&registry);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().expect("first lock");
            panic!("poison the registry");
        })
        .join();
        assert!(registry.is_poisoned(), "the lock must actually be poisoned");

        // Every registry operation still works, against the pre-panic
        // contents.
        let queue2 = Arc::new(BoundedQueue::<Frame>::new(4, BackpressurePolicy::Block));
        register(&registry, "after", &queue2, &counters);
        assert!(lock_registry(&registry, &counters).contains_key("before"));
        assert!(lock_registry(&registry, &counters).contains_key("after"));
        assert!(deregister(&registry, "before", &queue, &counters));
        assert!(
            !deregister(&registry, "after", &queue, &counters),
            "ptr-eq rule must still hold under a recovered lock"
        );
        assert!(counters.lock_recoveries.get() >= 4);
    }
}
