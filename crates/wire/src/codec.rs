//! Payload codec: the deterministic little-endian byte layout of every
//! frame body, with typed decode errors and no panicking paths.
//!
//! The codec is the *inner* layer of the protocol — it knows how a
//! `Hello` or a `Record` body is laid out, but nothing about magic
//! numbers, lengths or checksums; that envelope lives in
//! [`crate::frame`]. Keeping the two layers separate means property
//! tests can corrupt exactly one of them at a time and assert on the
//! exact error class that comes back.
//!
//! Layout rules (DESIGN.md §10 has the full tables):
//!
//! * every integer is little-endian, every `f64` travels as the
//!   little-endian bytes of [`f64::to_bits`] — so NaN payloads and
//!   negative zeros round-trip bit-for-bit, which is what makes the
//!   `wire_storm --verify` bitwise comparison against in-process
//!   scoring meaningful;
//! * variable-length fields carry an explicit length prefix with a
//!   hard upper bound ([`MAX_SENSOR_ID_BYTES`], [`MAX_BATCH_RECORDS`]);
//! * encodings are canonical: a decoder rejects padding games (a label
//!   byte under a "no label" flag, trailing bytes after the last
//!   field), so `decode(encode(x)) == x` *and* `encode(decode(b)) == b`
//!   for every accepted `b`.

use occusense_dataset::{CsiRecord, N_SUBCARRIERS};
use std::error::Error;
use std::fmt;

/// Protocol revision spoken by this codec. Bumped on any layout change;
/// a decoder refuses other versions rather than guessing.
pub const PROTOCOL_VERSION: u8 = 1;

/// Longest admissible `Hello` sensor id, in UTF-8 bytes.
pub const MAX_SENSOR_ID_BYTES: usize = 256;

/// Longest admissible `Hello` tenant id, in UTF-8 bytes. Tenant ids
/// are operator-chosen fleet labels, not sensor names, so the bound is
/// deliberately tighter than [`MAX_SENSOR_ID_BYTES`].
pub const MAX_TENANT_ID_BYTES: usize = 64;

/// Most records one `Batch` frame may carry.
pub const MAX_BATCH_RECORDS: usize = 512;

/// Encoded size of one [`CsiRecord`] body: timestamp + 64 subcarrier
/// amplitudes + temperature + humidity, all `f64`, plus the occupant
/// count byte.
pub const RECORD_BYTES: usize = 8 * (3 + N_SUBCARRIERS) + 1;

/// Why a byte sequence was refused. Every variant is a *typed* refusal
/// — the codec never panics on wire input, a contract enforced by the
/// occusense-lint panic/index rules over this crate and fuzzed by the
/// proptest suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame did not start with [`crate::frame::MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The version byte is not [`PROTOCOL_VERSION`].
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The reserved flags field was non-zero (v1 defines no flags).
    ReservedFlags {
        /// The flags value found.
        found: u16,
    },
    /// The frame-type byte names no known frame.
    UnknownFrameType {
        /// The type byte found.
        found: u8,
    },
    /// The input ended before a field (or the payload itself) was
    /// complete.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The header checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum claimed by the header.
        expected: u64,
        /// Checksum computed over the received payload.
        computed: u64,
    },
    /// The declared payload length exceeds the receiver's limit.
    Oversize {
        /// Declared payload length.
        len: usize,
        /// The receiver's configured maximum.
        max: usize,
    },
    /// A `Hello` sensor id longer than [`MAX_SENSOR_ID_BYTES`].
    SensorIdTooLong {
        /// Declared id length.
        len: usize,
    },
    /// A `Hello` tenant id longer than [`MAX_TENANT_ID_BYTES`].
    TenantIdTooLong {
        /// Declared tenant id length.
        len: usize,
    },
    /// A `Hello` sensor or tenant id that is not valid UTF-8.
    BadUtf8,
    /// A `Batch` declaring more than [`MAX_BATCH_RECORDS`] records.
    BatchTooLarge {
        /// Declared record count.
        count: usize,
    },
    /// A label-presence flag that is neither 0 nor 1, or a non-zero
    /// label byte under flag 0 (non-canonical encoding).
    BadLabelFlag {
        /// The flag byte found.
        found: u8,
    },
    /// A NACK reason byte naming no [`NackReason`].
    BadNackReason {
        /// The reason byte found.
        found: u8,
    },
    /// Bytes left over after the last field of the payload.
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic { found } => write!(f, "bad frame magic {found:02x?}"),
            DecodeError::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found} (speak v{PROTOCOL_VERSION})")
            }
            DecodeError::ReservedFlags { found } => {
                write!(f, "reserved flags must be zero, found {found:#06x}")
            }
            DecodeError::UnknownFrameType { found } => write!(f, "unknown frame type {found}"),
            DecodeError::Truncated { needed, have } => {
                write!(f, "truncated input: needed {needed} bytes, have {have}")
            }
            DecodeError::ChecksumMismatch { expected, computed } => write!(
                f,
                "checksum mismatch: header says {expected:#018x}, payload hashes to {computed:#018x}"
            ),
            DecodeError::Oversize { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte limit")
            }
            DecodeError::SensorIdTooLong { len } => {
                write!(f, "sensor id of {len} bytes exceeds {MAX_SENSOR_ID_BYTES}")
            }
            DecodeError::TenantIdTooLong { len } => {
                write!(f, "tenant id of {len} bytes exceeds {MAX_TENANT_ID_BYTES}")
            }
            DecodeError::BadUtf8 => write!(f, "sensor or tenant id is not valid UTF-8"),
            DecodeError::BatchTooLarge { count } => {
                write!(f, "batch of {count} records exceeds {MAX_BATCH_RECORDS}")
            }
            DecodeError::BadLabelFlag { found } => {
                write!(f, "non-canonical label flag byte {found}")
            }
            DecodeError::BadNackReason { found } => write!(f, "unknown NACK reason {found}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last payload field")
            }
        }
    }
}

impl Error for DecodeError {}

/// Why a frame refused to *encode*. Encoding is fallible only for the
/// two dynamic bounds of the protocol; a conforming producer (the
/// client library chunks batches at [`MAX_BATCH_RECORDS`]) never sees
/// these. Before this error existed the encoder silently truncated the
/// offending field — possibly mid-UTF-8-codepoint for a sensor id, and
/// desynchronizing `first_seq` accounting for a batch — so the refusal
/// is typed and loud instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// A `Hello` sensor id longer than [`MAX_SENSOR_ID_BYTES`].
    SensorIdTooLong {
        /// The id's UTF-8 length in bytes.
        len: usize,
    },
    /// A `Hello` tenant id longer than [`MAX_TENANT_ID_BYTES`].
    TenantIdTooLong {
        /// The tenant id's UTF-8 length in bytes.
        len: usize,
    },
    /// A `Batch` holding more than [`MAX_BATCH_RECORDS`] records.
    BatchTooLarge {
        /// The batch's record count.
        count: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::SensorIdTooLong { len } => {
                write!(
                    f,
                    "refusing to encode a {len}-byte sensor id (limit {MAX_SENSOR_ID_BYTES})"
                )
            }
            EncodeError::TenantIdTooLong { len } => {
                write!(
                    f,
                    "refusing to encode a {len}-byte tenant id (limit {MAX_TENANT_ID_BYTES})"
                )
            }
            EncodeError::BatchTooLarge { count } => {
                write!(
                    f,
                    "refusing to encode a {count}-record batch (limit {MAX_BATCH_RECORDS})"
                )
            }
        }
    }
}

impl Error for EncodeError {}

/// A client's opening frame: protocol version check + sensor identity
/// + tenant claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The protocol version the client speaks.
    pub protocol: u8,
    /// Stable sensor identity; the gateway hash-routes on it, so the
    /// same id always lands on the same shard.
    pub sensor_id: String,
    /// The tenant this sensor claims to belong to. A gateway serving a
    /// specific tenant refuses mismatched claims at the handshake; the
    /// empty string is the default (untenanted) namespace accepted by
    /// gateways that enforce no tenant.
    pub tenant: String,
}

/// The gateway's handshake answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// The protocol version the gateway speaks.
    pub protocol: u8,
    /// The worker shard this sensor's records are routed to.
    pub shard: u32,
}

/// One CSI record in flight, with the client's sequence number and an
/// optional ground-truth label (which feeds the continual trainer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordFrame {
    /// Client-assigned, strictly increasing per connection; predictions
    /// and NACKs echo it back, so the client can correlate.
    pub seq: u64,
    /// Ground-truth occupancy, when the sensor knows it.
    pub label: Option<u8>,
    /// The measurement itself.
    pub record: CsiRecord,
}

/// A run of consecutive records sharing one envelope: record `i`
/// implicitly carries sequence number `first_seq + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchFrame {
    /// Sequence number of the first record.
    pub first_seq: u64,
    /// The records with their optional labels, in sequence order.
    pub records: Vec<(CsiRecord, Option<u8>)>,
}

/// One scored record streaming back to its sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionFrame {
    /// Echo of the client sequence number that produced this score.
    pub seq: u64,
    /// The record's scenario timestamp (bit-exact echo).
    pub timestamp_s: f64,
    /// Predicted binary occupancy.
    pub occupied: u8,
    /// Positive-class probability, bit-exact from the model.
    pub proba: f64,
    /// Version of the model snapshot that scored the record.
    pub model_version: u64,
    /// Ingest→scored latency in nanoseconds, as measured by the server.
    pub latency_ns: u64,
}

/// Why the gateway refused a record (the wire face of
/// [`occusense_serve::SubmitError`] plus protocol-level refusals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// The shard queue was full under `RejectNewest`; retry later.
    QueueFull,
    /// The runtime is shutting down; the record was shed.
    Shutdown,
    /// The frame failed to decode; the connection closes after this.
    Malformed,
    /// A frame type the gateway does not accept from clients, or a
    /// protocol version mismatch in the handshake.
    Unsupported,
}

impl NackReason {
    /// The wire byte for this reason (`1..=4`).
    pub fn to_byte(self) -> u8 {
        match self {
            NackReason::QueueFull => 1,
            NackReason::Shutdown => 2,
            NackReason::Malformed => 3,
            NackReason::Unsupported => 4,
        }
    }

    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadNackReason`] for anything outside `1..=4`.
    pub fn from_byte(b: u8) -> Result<Self, DecodeError> {
        match b {
            1 => Ok(NackReason::QueueFull),
            2 => Ok(NackReason::Shutdown),
            3 => Ok(NackReason::Malformed),
            4 => Ok(NackReason::Unsupported),
            found => Err(DecodeError::BadNackReason { found }),
        }
    }
}

impl fmt::Display for NackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NackReason::QueueFull => "queue-full",
            NackReason::Shutdown => "shutdown",
            NackReason::Malformed => "malformed",
            NackReason::Unsupported => "unsupported",
        };
        write!(f, "{name}")
    }
}

/// An explicit refusal: the record numbered `seq` produced no
/// prediction and never will.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NackFrame {
    /// The refused record's client sequence number.
    pub seq: u64,
    /// Why it was refused.
    pub reason: NackReason,
}

/// Orderly end-of-stream, sent by both sides: the client announces how
/// many records it sent, the gateway (after draining) how many
/// predictions it delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Goodbye {
    /// Records sent (client→gateway) or predictions delivered
    /// (gateway→client) on this connection.
    pub count: u64,
}

/// Every frame of the protocol.
// The `Record` variant carries its 537-byte `CsiRecord` inline on
// purpose: boxing it would put a heap allocation on the per-record
// hot path of every sensor connection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client handshake.
    Hello(Hello),
    /// Gateway handshake answer.
    HelloAck(HelloAck),
    /// One record for scoring.
    Record(RecordFrame),
    /// A batch of consecutive records.
    Batch(BatchFrame),
    /// One scored record.
    Prediction(PredictionFrame),
    /// An explicit per-record refusal.
    Nack(NackFrame),
    /// Orderly end-of-stream.
    Goodbye(Goodbye),
}

impl Frame {
    /// The frame-type byte used in the envelope header.
    pub fn frame_type(&self) -> u8 {
        match self {
            Frame::Hello(_) => 1,
            Frame::HelloAck(_) => 2,
            Frame::Record(_) => 3,
            Frame::Batch(_) => 4,
            Frame::Prediction(_) => 5,
            Frame::Nack(_) => 6,
            Frame::Goodbye(_) => 7,
        }
    }

    /// Human-readable frame-type name (diagnostics only).
    pub fn type_name(&self) -> &'static str {
        match self {
            Frame::Hello(_) => "Hello",
            Frame::HelloAck(_) => "HelloAck",
            Frame::Record(_) => "Record",
            Frame::Batch(_) => "Batch",
            Frame::Prediction(_) => "Prediction",
            Frame::Nack(_) => "Nack",
            Frame::Goodbye(_) => "Goodbye",
        }
    }
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_label(out: &mut Vec<u8>, label: Option<u8>) {
    match label {
        Some(l) => {
            out.push(1);
            out.push(l);
        }
        None => {
            out.push(0);
            out.push(0);
        }
    }
}

fn put_record(out: &mut Vec<u8>, record: &CsiRecord) {
    put_f64(out, record.timestamp_s);
    for amp in &record.csi {
        put_f64(out, *amp);
    }
    put_f64(out, record.temperature_c);
    put_f64(out, record.humidity_pct);
    out.push(record.occupant_count);
}

/// Appends the payload bytes of `frame` (body only, no envelope) to
/// `out`. Within the protocol bounds encoding is total: every
/// admissible `Frame` value has exactly one byte representation.
///
/// # Errors
///
/// [`EncodeError`] when a dynamic field exceeds its protocol bound (a
/// sensor id beyond [`MAX_SENSOR_ID_BYTES`], a batch beyond
/// [`MAX_BATCH_RECORDS`]). Bounds are checked *before* any byte is
/// written, so `out` is untouched on error.
pub fn encode_payload(frame: &Frame, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    match frame {
        Frame::Hello(h) => {
            let id = h.sensor_id.as_bytes();
            if id.len() > MAX_SENSOR_ID_BYTES {
                return Err(EncodeError::SensorIdTooLong { len: id.len() });
            }
            let tenant = h.tenant.as_bytes();
            if tenant.len() > MAX_TENANT_ID_BYTES {
                return Err(EncodeError::TenantIdTooLong { len: tenant.len() });
            }
            out.push(h.protocol);
            put_u16(out, id.len() as u16);
            out.extend_from_slice(id);
            put_u16(out, tenant.len() as u16);
            out.extend_from_slice(tenant);
        }
        Frame::HelloAck(a) => {
            out.push(a.protocol);
            put_u32(out, a.shard);
        }
        Frame::Record(r) => {
            put_u64(out, r.seq);
            put_label(out, r.label);
            put_record(out, &r.record);
        }
        Frame::Batch(b) => {
            if b.records.len() > MAX_BATCH_RECORDS {
                return Err(EncodeError::BatchTooLarge {
                    count: b.records.len(),
                });
            }
            put_u64(out, b.first_seq);
            put_u16(out, b.records.len() as u16);
            for (record, label) in &b.records {
                put_label(out, *label);
                put_record(out, record);
            }
        }
        Frame::Prediction(p) => {
            put_u64(out, p.seq);
            put_f64(out, p.timestamp_s);
            out.push(p.occupied);
            put_f64(out, p.proba);
            put_u64(out, p.model_version);
            put_u64(out, p.latency_ns);
        }
        Frame::Nack(n) => {
            put_u64(out, n.seq);
            out.push(n.reason.to_byte());
        }
        Frame::Goodbye(g) => {
            put_u64(out, g.count);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Bounds-checked cursor over a payload. Every accessor returns
/// `Truncated` instead of panicking when the bytes run out.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let have = self.bytes.len().saturating_sub(self.pos);
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DecodeError::Truncated { needed: n, have })?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated { needed: n, have })?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        self.take(1)?
            .first()
            .copied()
            .ok_or(DecodeError::Truncated { needed: 1, have: 0 })
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(raw))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn label(&mut self) -> Result<Option<u8>, DecodeError> {
        let flag = self.u8()?;
        let value = self.u8()?;
        match (flag, value) {
            (0, 0) => Ok(None),
            (1, v) => Ok(Some(v)),
            (found, _) => Err(DecodeError::BadLabelFlag { found }),
        }
    }

    fn record(&mut self) -> Result<CsiRecord, DecodeError> {
        let timestamp_s = self.f64()?;
        let mut csi = [0.0f64; N_SUBCARRIERS];
        for slot in csi.iter_mut() {
            *slot = self.f64()?;
        }
        let temperature_c = self.f64()?;
        let humidity_pct = self.f64()?;
        let occupant_count = self.u8()?;
        Ok(CsiRecord {
            timestamp_s,
            csi,
            temperature_c,
            humidity_pct,
            occupant_count,
        })
    }

    /// Canonical-encoding check: the payload must be fully consumed.
    fn finish(self) -> Result<(), DecodeError> {
        let extra = self.bytes.len().saturating_sub(self.pos);
        if extra == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes { extra })
        }
    }
}

/// Bytes one batched record occupies on the wire: label flag + label
/// value + the record body.
const BATCH_RECORD_STRIDE: usize = 2 + RECORD_BYTES;

/// A *borrowed* view over a validated `Batch` payload: the records stay
/// in the receive buffer and are decoded one at a time as the iterator
/// walks them, so the gateway hot path never materialises the
/// per-frame `Vec<(CsiRecord, Option<u8>)>` that [`BatchFrame`] carries.
///
/// [`BatchView::parse`] performs *all* validation up front (count
/// bound, exact payload length, every label flag canonical), which is
/// what lets [`BatchRecords`] iterate infallibly — an all-or-nothing
/// contract identical to [`decode_payload`]'s: a malformed batch
/// yields zero records, never a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchView<'a> {
    first_seq: u64,
    count: usize,
    body: &'a [u8],
}

impl<'a> BatchView<'a> {
    /// Validates a `Batch` payload (envelope already checked) and
    /// returns a borrowed view over its records.
    ///
    /// # Errors
    ///
    /// The same [`DecodeError`] classes [`decode_payload`] reports for
    /// frame type 4; never panics, whatever the input bytes.
    pub fn parse(payload: &'a [u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let first_seq = r.u64()?;
        let count = r.u16()? as usize;
        if count > MAX_BATCH_RECORDS {
            return Err(DecodeError::BatchTooLarge { count });
        }
        let body = r.take(count * BATCH_RECORD_STRIDE)?;
        r.finish()?;
        // Pre-validate every label pair so iteration cannot fail.
        for i in 0..count {
            let off = i * BATCH_RECORD_STRIDE;
            let flag = body.get(off).copied().unwrap_or(0);
            let value = body.get(off + 1).copied().unwrap_or(0);
            match (flag, value) {
                (0, 0) | (1, _) => {}
                (found, _) => return Err(DecodeError::BadLabelFlag { found }),
            }
        }
        Ok(Self {
            first_seq,
            count,
            body,
        })
    }

    /// Sequence number of the first record in the batch.
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the batch carries no records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates `(seq, record, label)` straight out of the payload
    /// bytes; `seq` is `first_seq + index` with wrapping arithmetic,
    /// matching the gateway's per-record accounting.
    pub fn records(&self) -> BatchRecords<'a> {
        BatchRecords {
            first_seq: self.first_seq,
            body: self.body,
            index: 0,
            count: self.count,
        }
    }
}

/// Iterator over the records of a [`BatchView`]; see
/// [`BatchView::records`].
#[derive(Debug, Clone)]
pub struct BatchRecords<'a> {
    first_seq: u64,
    body: &'a [u8],
    index: usize,
    count: usize,
}

impl Iterator for BatchRecords<'_> {
    type Item = (u64, CsiRecord, Option<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.index == self.count {
            return None;
        }
        let off = self.index * BATCH_RECORD_STRIDE;
        let chunk = self.body.get(off..off + BATCH_RECORD_STRIDE)?;
        let mut r = Reader::new(chunk);
        // Both reads are infallible after `parse` validated the layout;
        // the `ok()?` keeps the path typed and panic-free regardless.
        let label = r.label().ok()?;
        let record = r.record().ok()?;
        let seq = self.first_seq.wrapping_add(self.index as u64);
        self.index += 1;
        Some((seq, record, label))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.count.saturating_sub(self.index);
        (left, Some(left))
    }
}

impl ExactSizeIterator for BatchRecords<'_> {}

/// Decodes the payload of a frame whose envelope already validated
/// (length, checksum). `frame_type` comes from the envelope header.
///
/// # Errors
///
/// Any [`DecodeError`]; never panics, whatever the input bytes.
pub fn decode_payload(frame_type: u8, payload: &[u8]) -> Result<Frame, DecodeError> {
    let mut r = Reader::new(payload);
    let frame = match frame_type {
        1 => {
            let protocol = r.u8()?;
            let len = r.u16()? as usize;
            if len > MAX_SENSOR_ID_BYTES {
                return Err(DecodeError::SensorIdTooLong { len });
            }
            let raw = r.take(len)?;
            let sensor_id = std::str::from_utf8(raw)
                .map_err(|_| DecodeError::BadUtf8)?
                .to_string();
            let tenant_len = r.u16()? as usize;
            if tenant_len > MAX_TENANT_ID_BYTES {
                return Err(DecodeError::TenantIdTooLong { len: tenant_len });
            }
            let raw = r.take(tenant_len)?;
            let tenant = std::str::from_utf8(raw)
                .map_err(|_| DecodeError::BadUtf8)?
                .to_string();
            Frame::Hello(Hello {
                protocol,
                sensor_id,
                tenant,
            })
        }
        2 => {
            let protocol = r.u8()?;
            let shard = r.u32()?;
            Frame::HelloAck(HelloAck { protocol, shard })
        }
        3 => {
            let seq = r.u64()?;
            let label = r.label()?;
            let record = r.record()?;
            Frame::Record(RecordFrame { seq, label, record })
        }
        4 => {
            // The borrowed view owns all batch validation (including
            // the canonical-length check), so return straight from it.
            let view = BatchView::parse(payload)?;
            let mut records = Vec::with_capacity(view.len());
            records.extend(view.records().map(|(_seq, record, label)| (record, label)));
            return Ok(Frame::Batch(BatchFrame {
                first_seq: view.first_seq(),
                records,
            }));
        }
        5 => {
            let seq = r.u64()?;
            let timestamp_s = r.f64()?;
            let occupied = r.u8()?;
            let proba = r.f64()?;
            let model_version = r.u64()?;
            let latency_ns = r.u64()?;
            Frame::Prediction(PredictionFrame {
                seq,
                timestamp_s,
                occupied,
                proba,
                model_version,
                latency_ns,
            })
        }
        6 => {
            let seq = r.u64()?;
            let reason = NackReason::from_byte(r.u8()?)?;
            Frame::Nack(NackFrame { seq, reason })
        }
        7 => {
            let count = r.u64()?;
            Frame::Goodbye(Goodbye { count })
        }
        found => return Err(DecodeError::UnknownFrameType { found }),
    };
    r.finish()?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(seed: u64) -> CsiRecord {
        let mut csi = [0.0f64; N_SUBCARRIERS];
        for (i, amp) in csi.iter_mut().enumerate() {
            *amp = (seed as f64 + i as f64 * 0.25).sin() * 12.5;
        }
        CsiRecord {
            timestamp_s: seed as f64 * 0.5,
            csi,
            temperature_c: 21.5,
            humidity_pct: 38.25,
            occupant_count: (seed % 7) as u8,
        }
    }

    fn round_trip(frame: Frame) {
        let mut bytes = Vec::new();
        encode_payload(&frame, &mut bytes).unwrap();
        let back = decode_payload(frame.frame_type(), &bytes).unwrap();
        assert_eq!(back, frame);
        // Canonical: re-encoding the decoded frame reproduces the bytes.
        let mut again = Vec::new();
        encode_payload(&back, &mut again).unwrap();
        assert_eq!(again, bytes);
    }

    #[test]
    fn every_frame_type_round_trips() {
        round_trip(Frame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            sensor_id: "node-7/room-b".into(),
            tenant: "acme-labs".into(),
        }));
        round_trip(Frame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            sensor_id: "untenanted".into(),
            tenant: String::new(),
        }));
        round_trip(Frame::HelloAck(HelloAck {
            protocol: PROTOCOL_VERSION,
            shard: 3,
        }));
        round_trip(Frame::Record(RecordFrame {
            seq: 42,
            label: Some(1),
            record: sample_record(42),
        }));
        round_trip(Frame::Record(RecordFrame {
            seq: 43,
            label: None,
            record: sample_record(43),
        }));
        round_trip(Frame::Batch(BatchFrame {
            first_seq: 100,
            records: (0..5)
                .map(|i| (sample_record(i), Some((i % 2) as u8)))
                .collect(),
        }));
        round_trip(Frame::Prediction(PredictionFrame {
            seq: 9,
            timestamp_s: 1234.5,
            occupied: 1,
            proba: 0.875,
            model_version: 2,
            latency_ns: 48_000,
        }));
        round_trip(Frame::Nack(NackFrame {
            seq: 11,
            reason: NackReason::QueueFull,
        }));
        round_trip(Frame::Goodbye(Goodbye { count: 5000 }));
    }

    #[test]
    fn nan_and_negative_zero_survive_bit_for_bit() {
        let mut record = sample_record(1);
        record.csi[0] = f64::from_bits(0x7ff8_0000_dead_beef); // NaN payload
        record.csi[1] = -0.0;
        record.humidity_pct = f64::NEG_INFINITY;
        let frame = Frame::Record(RecordFrame {
            seq: 0,
            label: None,
            record,
        });
        let mut bytes = Vec::new();
        encode_payload(&frame, &mut bytes).unwrap();
        let Frame::Record(back) = decode_payload(3, &bytes).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(back.record.csi[0].to_bits(), record.csi[0].to_bits());
        assert_eq!(back.record.csi[1].to_bits(), record.csi[1].to_bits());
        assert_eq!(
            back.record.humidity_pct.to_bits(),
            record.humidity_pct.to_bits()
        );
    }

    #[test]
    fn truncation_of_every_prefix_is_a_typed_error() {
        let frame = Frame::Record(RecordFrame {
            seq: 7,
            label: Some(1),
            record: sample_record(7),
        });
        let mut bytes = Vec::new();
        encode_payload(&frame, &mut bytes).unwrap();
        for cut in 0..bytes.len() {
            let err = decode_payload(3, &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn non_canonical_encodings_are_rejected() {
        // Trailing byte after a Goodbye.
        let mut bytes = Vec::new();
        encode_payload(&Frame::Goodbye(Goodbye { count: 1 }), &mut bytes).unwrap();
        bytes.push(0);
        assert_eq!(
            decode_payload(7, &bytes),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );

        // Label byte smuggled under flag 0.
        let mut bytes = Vec::new();
        encode_payload(
            &Frame::Record(RecordFrame {
                seq: 0,
                label: None,
                record: sample_record(0),
            }),
            &mut bytes,
        )
        .unwrap();
        bytes[9] = 3; // label value byte while flag (offset 8) is 0
        assert_eq!(
            decode_payload(3, &bytes),
            Err(DecodeError::BadLabelFlag { found: 0 })
        );
    }

    #[test]
    fn bound_violations_are_typed() {
        // Batch count beyond the cap.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 0);
        put_u16(&mut bytes, (MAX_BATCH_RECORDS + 1) as u16);
        assert_eq!(
            decode_payload(4, &bytes),
            Err(DecodeError::BatchTooLarge {
                count: MAX_BATCH_RECORDS + 1
            })
        );

        // Sensor id beyond the cap.
        let mut bytes = vec![PROTOCOL_VERSION];
        put_u16(&mut bytes, (MAX_SENSOR_ID_BYTES + 1) as u16);
        assert_eq!(
            decode_payload(1, &bytes),
            Err(DecodeError::SensorIdTooLong {
                len: MAX_SENSOR_ID_BYTES + 1
            })
        );

        // Invalid UTF-8 id.
        let mut bytes = vec![PROTOCOL_VERSION];
        put_u16(&mut bytes, 2);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(decode_payload(1, &bytes), Err(DecodeError::BadUtf8));

        // Tenant id beyond the cap.
        let mut bytes = vec![PROTOCOL_VERSION];
        put_u16(&mut bytes, 1);
        bytes.push(b's');
        put_u16(&mut bytes, (MAX_TENANT_ID_BYTES + 1) as u16);
        assert_eq!(
            decode_payload(1, &bytes),
            Err(DecodeError::TenantIdTooLong {
                len: MAX_TENANT_ID_BYTES + 1
            })
        );

        // Invalid UTF-8 tenant.
        let mut bytes = vec![PROTOCOL_VERSION];
        put_u16(&mut bytes, 1);
        bytes.push(b's');
        put_u16(&mut bytes, 2);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(decode_payload(1, &bytes), Err(DecodeError::BadUtf8));

        // Unknown NACK reason.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 1);
        bytes.push(99);
        assert_eq!(
            decode_payload(6, &bytes),
            Err(DecodeError::BadNackReason { found: 99 })
        );

        // Unknown frame type.
        assert_eq!(
            decode_payload(200, &[]),
            Err(DecodeError::UnknownFrameType { found: 200 })
        );
    }

    #[test]
    fn record_bytes_matches_the_layout() {
        let mut bytes = Vec::new();
        put_record(&mut bytes, &sample_record(0));
        assert_eq!(bytes.len(), RECORD_BYTES);
    }

    #[test]
    fn oversize_fields_refuse_to_encode_and_leave_out_untouched() {
        let hello = Frame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            sensor_id: "é".repeat(MAX_SENSOR_ID_BYTES), // 2 bytes per char
            tenant: String::new(),
        });
        let mut out = vec![0xAA];
        assert_eq!(
            encode_payload(&hello, &mut out),
            Err(EncodeError::SensorIdTooLong {
                len: 2 * MAX_SENSOR_ID_BYTES
            })
        );
        assert_eq!(
            out,
            vec![0xAA],
            "failed encode must not write partial bytes"
        );

        let hello = Frame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            sensor_id: "ok".into(),
            tenant: "t".repeat(MAX_TENANT_ID_BYTES + 1),
        });
        assert_eq!(
            encode_payload(&hello, &mut out),
            Err(EncodeError::TenantIdTooLong {
                len: MAX_TENANT_ID_BYTES + 1
            })
        );
        assert_eq!(out, vec![0xAA]);

        let batch = Frame::Batch(BatchFrame {
            first_seq: 7,
            records: vec![(sample_record(0), None); MAX_BATCH_RECORDS + 1],
        });
        assert_eq!(
            encode_payload(&batch, &mut out),
            Err(EncodeError::BatchTooLarge {
                count: MAX_BATCH_RECORDS + 1
            })
        );
        assert_eq!(out, vec![0xAA]);
    }

    #[test]
    fn encode_accepts_fields_exactly_at_the_bounds() {
        round_trip(Frame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            sensor_id: "x".repeat(MAX_SENSOR_ID_BYTES),
            tenant: "t".repeat(MAX_TENANT_ID_BYTES),
        }));
        round_trip(Frame::Batch(BatchFrame {
            first_seq: u64::MAX - 3,
            records: vec![(sample_record(1), Some(2)); MAX_BATCH_RECORDS],
        }));
    }

    #[test]
    fn batch_view_matches_decode_payload_with_wrapping_seqs() {
        let frame = Frame::Batch(BatchFrame {
            first_seq: u64::MAX - 1,
            records: (0..5)
                .map(|i| (sample_record(i), (i % 2 == 0).then_some(i as u8)))
                .collect(),
        });
        let mut bytes = Vec::new();
        encode_payload(&frame, &mut bytes).unwrap();

        let view = BatchView::parse(&bytes).unwrap();
        assert_eq!(view.len(), 5);
        assert_eq!(view.first_seq(), u64::MAX - 1);
        let Frame::Batch(owned) = decode_payload(4, &bytes).unwrap() else {
            panic!("wrong frame type");
        };
        let mut expect_seq = u64::MAX - 1;
        for ((seq, record, label), (owned_record, owned_label)) in
            view.records().zip(owned.records.iter())
        {
            assert_eq!(seq, expect_seq);
            assert_eq!(&record, owned_record);
            assert_eq!(&label, owned_label);
            expect_seq = expect_seq.wrapping_add(1);
        }
    }

    #[test]
    fn batch_view_is_all_or_nothing_on_malformed_input() {
        let frame = Frame::Batch(BatchFrame {
            first_seq: 0,
            records: vec![(sample_record(0), None), (sample_record(1), None)],
        });
        let mut bytes = Vec::new();
        encode_payload(&frame, &mut bytes).unwrap();

        // Corrupt the *second* record's label flag: parse must refuse
        // the whole batch, not yield the first record.
        let off = 8 + 2 + BATCH_RECORD_STRIDE;
        bytes[off] = 9;
        assert_eq!(
            BatchView::parse(&bytes),
            Err(DecodeError::BadLabelFlag { found: 9 })
        );

        // Truncated body: typed error, no partial view.
        assert!(matches!(
            BatchView::parse(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated { .. })
        ));
    }
}
