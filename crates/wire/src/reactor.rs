//! The readiness reactor: every sensor connection multiplexed onto a
//! small pool of event-loop threads instead of two threads per
//! connection.
//!
//! # Why a scanning loop and not epoll
//!
//! The workspace forbids `unsafe` (`#![deny(unsafe_code)]`) and the
//! zero-dependency contract rules out an event-queue crate, so the
//! reactor is a *level-triggered scanning* loop: each sweep polls every
//! connection's non-blocking [`PollConn`] face, and an adaptive
//! park/backoff (yield → 50 µs → 500 µs) keeps an idle fleet from
//! burning a core. For the fleet sizes the paper's deployment story
//! implies (thousands of cheap sensors at tens of frames per second) a
//! sweep over all connections is cheap next to the decode work itself,
//! and the design keeps the hot path free of syscall-multiplexer state.
//!
//! # Buffer lifetime rules (the zero-copy contract)
//!
//! * Each connection owns one [`FrameBuffer`]: bytes land in it
//!   straight off `poll_read`, frames are *peeked* (header + checksum
//!   verified in place), payloads are decoded **borrowed from the
//!   buffer** — `Batch` frames go through
//!   [`BatchView`](crate::codec::BatchView), so records flow into
//!   [`SensorClient::submit_sequenced`] without the per-frame `Vec` the
//!   blocking path used to build — and only then is the frame consumed.
//! * A frame is consumed exactly once; a mid-batch backpressure pause
//!   leaves the frame in the buffer and remembers how many records were
//!   already submitted (`batch_done`), so resumption never re-submits.
//! * Outbound frames are encoded into a fixed write ring and flushed
//!   with vectored writes (two `IoSlice`s when the ring wraps); a
//!   prediction counts as *delivered* only when its last byte left the
//!   ring.
//!
//! # Accounting under containment
//!
//! Each connection's sweep runs under `catch_unwind`. A panicking
//! connection fails **closed**: its registry route is removed (the
//! lock recovers from poisoning — see
//! [`gateway`](crate::gateway)), its in-flight records (decoded but not
//! yet counted ingested/rejected/shed) are re-counted as shed, and
//! `wire.connection_panics` records the event — so the extended
//! accounting identity `decoded = ingested + rejected + shed` still
//! closes and the rest of the fleet keeps serving.

use crate::codec::{self, DecodeError, Frame, Goodbye, HelloAck, NackFrame, NackReason};
use crate::codec::{BatchView, PROTOCOL_VERSION};
use crate::frame::{checksum_of, decode_header, Encoder, FrameHeader, HEADER_BYTES};
use crate::gateway::GatewayConfig;
use crate::gateway::{deregister, register, GatewayCounters, Registry};
use crate::transport::{PollConn, PollRead, PollWrite};
use occusense_serve::{
    BoundedQueue, PopResult, SensorClient, ServeRuntime, SubmitError, TryPushError,
};
use std::collections::VecDeque;
use std::io::IoSlice;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Frame-type bytes the reactor dispatches on (see `codec::Frame`).
const FT_RECORD: u8 = 3;
const FT_BATCH: u8 = 4;
const FT_GOODBYE: u8 = 7;

/// Initial per-connection receive buffer; grows geometrically up to
/// `HEADER_BYTES + max_payload` only when a frame actually needs it,
/// so an idle 10 k-connection fleet costs ~40 MB, not ~10 GB.
const INITIAL_RECV_BYTES: usize = 4096;

/// Fixed capacity of each connection's outbound write ring. Gateway
/// frames are small (a `Prediction` is 58 wire bytes), so one ring
/// batches hundreds of frames per vectored write.
const WRITE_RING_BYTES: usize = 16 * 1024;

/// Per-connection fairness bounds: how many reads / fill-flush rounds
/// one connection may consume in a single sweep.
const MAX_READS_PER_SWEEP: usize = 4;
const MAX_WRITE_ROUNDS_PER_SWEEP: usize = 8;

/// Incremental frame accumulator: raw bytes in, verified frames out,
/// with the payload **borrowed from the buffer** (no per-frame copy).
///
/// The read-side loop is: [`spare_mut`](Self::spare_mut) →
/// fill from the transport → [`commit`](Self::commit) →
/// [`peek`](Self::peek) / process / [`consume`](Self::consume) until
/// `peek` reports it needs more bytes. The buffer starts small and
/// grows geometrically, capped at `HEADER_BYTES + max_payload`, so a
/// frame larger than the cap is refused (via
/// [`DecodeError::Oversize`]) before it can make the buffer grow.
///
/// Shared by the gateway's reactor and `wire_storm`'s multiplexed
/// client drivers.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
    end: usize,
    max_payload: usize,
}

impl FrameBuffer {
    /// A fresh buffer accepting payloads up to `max_payload` bytes.
    pub fn new(max_payload: usize) -> Self {
        let cap = (HEADER_BYTES + max_payload).min(INITIAL_RECV_BYTES.max(HEADER_BYTES + 1));
        Self {
            buf: vec![0; cap],
            start: 0,
            end: 0,
            max_payload,
        }
    }

    /// Unconsumed bytes currently buffered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer holds no unconsumed bytes (an EOF here is a
    /// clean close; an EOF with `!is_empty()` is a truncated frame).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The writable tail for the next transport read. Compacts (and,
    /// when a frame genuinely needs more room, grows — geometrically,
    /// capped at `HEADER_BYTES + max_payload`) so the returned slice is
    /// non-empty unless an oversize frame is pending, which `peek`
    /// refuses anyway.
    pub fn spare_mut(&mut self) -> &mut [u8] {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        if self.end == self.buf.len() {
            if self.start > 0 {
                self.buf.copy_within(self.start..self.end, 0);
                self.end -= self.start;
                self.start = 0;
            } else {
                let cap = HEADER_BYTES + self.max_payload;
                let target = (self.buf.len() * 2).min(cap);
                if target > self.buf.len() {
                    self.buf.resize(target, 0);
                }
            }
        }
        self.buf.get_mut(self.end..).unwrap_or(&mut [])
    }

    /// Records that `n` bytes were written into
    /// [`spare_mut`](Self::spare_mut).
    pub fn commit(&mut self, n: usize) {
        self.end = (self.end + n).min(self.buf.len());
    }

    // lint:no_alloc
    /// Verifies and exposes the next complete frame without copying:
    /// header decoded, length bounded, checksum checked, payload
    /// returned as a borrow of the internal buffer. `Ok(None)` means
    /// "read more bytes and retry".
    ///
    /// # Errors
    ///
    /// Any framing [`DecodeError`] — bad magic/version/flags, an
    /// oversize declaration (refused before buffering the payload), or
    /// a checksum mismatch. All of them desynchronise the stream and
    /// are fatal for the connection.
    pub fn peek(&self) -> Result<Option<(FrameHeader, &[u8])>, DecodeError> {
        let avail = self.buf.get(self.start..self.end).unwrap_or_default();
        if avail.len() < HEADER_BYTES {
            return Ok(None);
        }
        let header = decode_header(avail)?;
        if header.payload_len > self.max_payload {
            return Err(DecodeError::Oversize {
                len: header.payload_len,
                max: self.max_payload,
            });
        }
        let total = HEADER_BYTES + header.payload_len;
        let Some(frame_bytes) = avail.get(..total) else {
            return Ok(None);
        };
        let payload = frame_bytes.get(HEADER_BYTES..).unwrap_or_default();
        let computed = checksum_of(header.frame_type, payload);
        if computed != header.checksum {
            return Err(DecodeError::ChecksumMismatch {
                expected: header.checksum,
                computed,
            });
        }
        Ok(Some((header, payload)))
    }

    /// Consumes the frame last returned by [`peek`](Self::peek):
    /// advances past its header plus `payload_len` bytes.
    pub fn consume(&mut self, payload_len: usize) {
        self.start = (self.start + HEADER_BYTES + payload_len).min(self.end);
    }
    // lint:end_no_alloc
}

/// Fixed-capacity outbound byte ring: frames are encoded in, bytes are
/// flushed out with vectored writes (two [`IoSlice`]s when wrapped).
/// Prediction completion marks let the reactor count a prediction as
/// delivered exactly when its last byte leaves the ring.
#[derive(Debug)]
struct WriteRing {
    buf: Box<[u8]>,
    head: usize,
    len: usize,
    scratch: Vec<u8>,
    /// Cumulative bytes ever queued / ever flushed.
    queued: u64,
    flushed: u64,
    /// `queued` offsets at which a `Prediction` frame completes.
    pred_marks: VecDeque<u64>,
}

impl WriteRing {
    fn new(capacity: usize) -> Self {
        Self {
            buf: vec![0; capacity.max(HEADER_BYTES + 64)].into_boxed_slice(),
            head: 0,
            len: 0,
            scratch: Vec::with_capacity(HEADER_BYTES + 64),
            queued: 0,
            flushed: 0,
            pred_marks: VecDeque::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encodes `frame` into the ring. `false` means "no space — retry
    /// after a flush". A frame that refuses to encode (protocol bound
    /// exceeded — impossible for gateway-originated frames) is dropped
    /// and reported as consumed.
    fn push_frame(&mut self, encoder: &mut Encoder, frame: &Frame) -> bool {
        self.scratch.clear();
        if encoder.encode_into(frame, &mut self.scratch).is_err() {
            return true;
        }
        let n = self.scratch.len();
        let cap = self.buf.len();
        if n > cap - self.len {
            return false;
        }
        let tail = (self.head + self.len) % cap;
        let first = n.min(cap - tail);
        let (a, b) = self.scratch.split_at(first);
        if let Some(dst) = self.buf.get_mut(tail..tail + first) {
            dst.copy_from_slice(a);
        }
        if !b.is_empty() {
            if let Some(dst) = self.buf.get_mut(..b.len()) {
                dst.copy_from_slice(b);
            }
        }
        self.len += n;
        self.queued += n as u64;
        if matches!(frame, Frame::Prediction(_)) {
            self.pred_marks.push_back(self.queued);
        }
        true
    }

    /// The ring's unflushed bytes as one or two I/O slices for a
    /// vectored write.
    fn slices(&self) -> ([IoSlice<'_>; 2], usize) {
        let cap = self.buf.len();
        let end = self.head + self.len;
        if end <= cap {
            let a = self.buf.get(self.head..end).unwrap_or_default();
            ([IoSlice::new(a), IoSlice::new(&[])], 1)
        } else {
            let a = self.buf.get(self.head..).unwrap_or_default();
            let b = self.buf.get(..end - cap).unwrap_or_default();
            ([IoSlice::new(a), IoSlice::new(b)], 2)
        }
    }

    /// Marks `n` bytes as flushed; returns how many predictions
    /// completed (their final byte left the ring).
    fn advance(&mut self, n: usize) -> u64 {
        let n = n.min(self.len);
        self.head = (self.head + n) % self.buf.len();
        self.len -= n;
        self.flushed += n as u64;
        let mut completed = 0;
        while self
            .pred_marks
            .front()
            .is_some_and(|&mark| mark <= self.flushed)
        {
            self.pred_marks.pop_front();
            completed += 1;
        }
        completed
    }
}

/// Everything a reactor thread needs, cloned per reactor.
#[derive(Clone)]
pub(crate) struct ReactorCtx {
    pub(crate) runtime: Arc<ServeRuntime>,
    pub(crate) registry: Registry,
    pub(crate) config: GatewayConfig,
    pub(crate) counters: GatewayCounters,
    pub(crate) stop: Arc<AtomicBool>,
    /// Drain-and-handoff mode: live connections keep serving, but new
    /// handshakes are refused with a `Shutdown` NACK so a fleet
    /// controller can re-route sensors before shutting this worker
    /// down.
    pub(crate) draining: Arc<AtomicBool>,
}

/// Hand-off point between the accept loop and one reactor thread.
pub(crate) struct Injector {
    incoming: Mutex<Vec<Box<dyn PollConn>>>,
}

impl Injector {
    pub(crate) fn new() -> Self {
        Self {
            incoming: Mutex::new(Vec::new()),
        }
    }

    /// Queues a freshly accepted connection for the owning reactor.
    pub(crate) fn push(&self, conn: Box<dyn PollConn>) {
        // The lock only guards a Vec of boxed handles; a panic cannot
        // leave it half-mutated, so recovery is sound.
        self.incoming
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(conn);
    }

    fn drain(&self) -> Vec<Box<dyn PollConn>> {
        let mut guard = self.incoming.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *guard)
    }
}

/// Lifecycle of one multiplexed connection — mirrors the blocking
/// gateway's reader-thread control flow, state-machine-ified.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Post-accept, pre-handshake: only a `Hello` is legal; `deadline`
    /// is the handshake timeout.
    Hello { deadline: Instant },
    /// Handshake done: records ingest, predictions flow back.
    Active,
    /// Client said `Goodbye`: wait (with progress-based grace) for
    /// every in-flight prediction to resolve before answering.
    Draining {
        resolved: u64,
        last_progress: Instant,
    },
    /// A terminal control frame (server `Goodbye`, or a refusal NACK)
    /// is waiting for outbound-queue space under the `Block` policy.
    Parting { since: Instant },
    /// Route deregistered, queue closed: flush the remnants, then
    /// finalize.
    Closing { since: Instant },
}

/// One connection's reactor-side state.
struct Conn {
    io: Box<dyn PollConn>,
    inbuf: FrameBuffer,
    out: WriteRing,
    encoder: Encoder,
    phase: Phase,
    sensor_id: String,
    client: Option<SensorClient>,
    outbound: Option<Arc<BoundedQueue<Frame>>>,
    /// `try_pop` observed `Closed`: the queue is drained for good.
    outbound_done: bool,
    /// Frame popped from the outbound queue, awaiting ring space.
    staged: Option<Frame>,
    /// Control frame awaiting outbound-queue space (`Block` full).
    /// While set, ingress is paused — the reactor-side face of the
    /// backpressure a blocking push used to exert on the reader thread.
    pending: Option<Frame>,
    /// Records of the *front* `Batch` frame already submitted (resume
    /// point after a mid-batch pause).
    batch_done: usize,
    ingested: u64,
    delivered: u64,
    /// Records decoded but not yet counted ingested/rejected/shed —
    /// the panic-containment residue re-counted as shed.
    unaccounted: u64,
    read_eof: bool,
    dead: bool,
    stop_seen: bool,
}

impl Conn {
    fn new(io: Box<dyn PollConn>, ctx: &ReactorCtx) -> Self {
        Self {
            io,
            inbuf: FrameBuffer::new(ctx.config.max_payload),
            out: WriteRing::new(WRITE_RING_BYTES),
            encoder: Encoder::new(),
            phase: Phase::Hello {
                deadline: Instant::now() + ctx.config.handshake_timeout,
            },
            sensor_id: String::new(),
            client: None,
            outbound: None,
            outbound_done: false,
            staged: None,
            pending: None,
            batch_done: 0,
            ingested: 0,
            delivered: 0,
            unaccounted: 0,
            read_eof: false,
            dead: false,
            stop_seen: false,
        }
    }
}

fn nack(seq: u64, reason: NackReason) -> Frame {
    Frame::Nack(NackFrame { seq, reason })
}

/// Offers a frame to the outbound queue without ever parking. Returns
/// the frame back only under `Block` with a full queue; rejections and
/// drops are counted by the queue itself (exactly as the blocking
/// gateway's `push` did) and closed queues swallow the frame silently.
fn offer(outbound: &Option<Arc<BoundedQueue<Frame>>>, frame: Frame) -> Option<Frame> {
    let Some(queue) = outbound else {
        return None;
    };
    match queue.try_push(frame) {
        Ok(()) => None,
        Err(TryPushError::Full(frame)) => Some(frame),
        Err(TryPushError::Rejected(_) | TryPushError::Closed(_)) => None,
    }
}

/// Removes the connection's route (ptr-eq rule — a reconnect's newer
/// route survives), evicting the sensor's carried temporal state when
/// this was its last live route, then closes the queue and enters
/// `Closing` to flush the remnants.
fn close_now(conn: &mut Conn, ctx: &ReactorCtx) {
    if let Some(queue) = &conn.outbound {
        if deregister(&ctx.registry, &conn.sensor_id, queue, &ctx.counters) {
            ctx.runtime.evict_sensor(&conn.sensor_id);
        }
        queue.close();
    }
    conn.pending = None;
    conn.phase = Phase::Closing {
        since: Instant::now(),
    };
}

/// Sends a terminal control frame through the outbound queue (so it
/// stays FIFO behind anything already queued) and closes. A `Block`-full
/// queue stashes it in `pending` and enters `Parting` to retry.
fn part(conn: &mut Conn, ctx: &ReactorCtx, frame: Frame) {
    match offer(&conn.outbound, frame) {
        None => close_now(conn, ctx),
        Some(frame) => {
            conn.pending = Some(frame);
            conn.phase = Phase::Parting {
                since: Instant::now(),
            };
        }
    }
}

/// Final teardown — idempotent with `close_now` (the ptr-eq deregister
/// is a no-op the second time).
fn finalize(conn: &mut Conn, ctx: &ReactorCtx) {
    if let Some(queue) = conn.outbound.take() {
        if deregister(&ctx.registry, &conn.sensor_id, &queue, &ctx.counters) {
            ctx.runtime.evict_sensor(&conn.sensor_id);
        }
        queue.close();
    }
}

/// Fails a panicked connection closed: the panic is counted, the
/// decoded-but-unresolved records are re-counted as shed (re-closing
/// `decoded = ingested + rejected + shed`), and the route is removed so
/// the rest of the fleet keeps serving.
fn contain_panic(conn: &mut Conn, ctx: &ReactorCtx) {
    ctx.counters.connection_panics.inc();
    if conn.unaccounted > 0 {
        ctx.counters.records_shed.add(conn.unaccounted);
        conn.unaccounted = 0;
    }
    finalize(conn, ctx);
}

/// Submits one decoded record under the client's sequence number.
/// Refusals become NACKs through the outbound queue; the return value
/// is a NACK that found the queue `Block`-full and must pause ingress.
#[allow(clippy::too_many_arguments)]
fn ingest_one(
    ctx: &ReactorCtx,
    client: &mut Option<SensorClient>,
    outbound: &Option<Arc<BoundedQueue<Frame>>>,
    ingested: &mut u64,
    unaccounted: &mut u64,
    seq: u64,
    record: occusense_dataset::CsiRecord,
    label: Option<u8>,
) -> Option<Frame> {
    let client = client.as_mut()?;
    ctx.counters.records_decoded.inc();
    // `unaccounted` covers the window between "decoded" and "outcome
    // counted": a panic inside submit re-counts the record as shed.
    *unaccounted += 1;
    let reason = match client.submit_sequenced(seq, record, label) {
        Ok(()) => {
            ctx.counters.records_ingested.inc();
            *unaccounted -= 1;
            *ingested += 1;
            return None;
        }
        Err(SubmitError::Rejected) => {
            ctx.counters.records_rejected.inc();
            *unaccounted -= 1;
            NackReason::QueueFull
        }
        Err(SubmitError::Shutdown) => {
            ctx.counters.records_shed.inc();
            *unaccounted -= 1;
            NackReason::Shutdown
        }
    };
    offer(outbound, nack(seq, reason))
}

/// What processing the front frame decided (computed under the
/// payload borrow, applied after it ends).
//
// The `Pause` variant's stashed `Frame` is always a small control
// frame (NACK/HelloAck), never a Record/Batch — boxing it would buy
// nothing but an allocation on the backpressure path.
#[allow(clippy::large_enum_variant)]
enum Outcome {
    /// Not a complete frame yet — read more.
    NeedBytes,
    /// Frame fully handled: consume `0` bytes of payload… (len).
    Done(usize),
    /// A valid `Hello` during the handshake.
    Hello(usize, codec::Hello),
    /// First frame was not a `Hello` (handshake failure).
    NotHello,
    /// Client `Goodbye`: begin the drain.
    Drain(usize),
    /// A decoded-but-illegal frame (client sent a server-role frame or
    /// a second `Hello`): refuse and close.
    Unsupported(usize),
    /// The stream is desynchronised or a payload refused to decode.
    Malformed,
    /// Backpressure pause: `(payload_len, frame, consume)` — stash the
    /// frame as pending; consume only when the input frame finished.
    Pause(usize, Frame, bool),
}

/// Completes the handshake: version check, tenant gate, runtime
/// client, outbound queue registration, `HelloAck`.
fn handshake(conn: &mut Conn, ctx: &ReactorCtx, hello: codec::Hello) {
    ctx.counters.frames_received.inc();
    if hello.protocol != PROTOCOL_VERSION {
        // No outbound queue exists yet — the refusal goes straight
        // into the (empty) write ring.
        let _ = conn
            .out
            .push_frame(&mut conn.encoder, &nack(0, NackReason::Unsupported));
        close_now(conn, ctx);
        return;
    }
    // Tenant gate: a runtime labelled with a tenant serves only
    // sensors claiming that tenant — a mis-routed sensor must never
    // be scored by (or train) another tenant's model. The untenanted
    // default namespace (empty label) enforces nothing.
    let expected = ctx.runtime.tenant();
    if !expected.is_empty() && hello.tenant != expected {
        let _ = conn
            .out
            .push_frame(&mut conn.encoder, &nack(0, NackReason::Unsupported));
        close_now(conn, ctx);
        return;
    }
    // Drain-and-handoff: refuse *new* sensors while live ones finish,
    // with the retryable `Shutdown` reason so the fleet controller
    // re-routes them to a surviving worker.
    if ctx.draining.load(Ordering::SeqCst) {
        let _ = conn
            .out
            .push_frame(&mut conn.encoder, &nack(0, NackReason::Shutdown));
        close_now(conn, ctx);
        return;
    }
    ctx.counters.connections.inc();
    let client = ctx.runtime.client(&hello.sensor_id);
    let shard = client.shard() as u32;
    let queue = Arc::new(BoundedQueue::new(
        ctx.config.outbound_capacity.max(1),
        ctx.config.outbound_policy,
    ));
    register(&ctx.registry, &hello.sensor_id, &queue, &ctx.counters);
    // Fresh queue with capacity ≥ 1: cannot be Full.
    // lint:allow(swallow, reason = "infallible by construction: the queue was created two statements up with capacity max(1) and no other handle exists yet")
    let _ = queue.try_push(Frame::HelloAck(HelloAck {
        protocol: PROTOCOL_VERSION,
        shard,
    }));
    conn.sensor_id = hello.sensor_id;
    conn.client = Some(client);
    conn.outbound = Some(queue);
    conn.phase = Phase::Active;
}

/// Drains every complete frame currently buffered. Stops on phase
/// change, a backpressure pause, or when more bytes are needed.
fn parse_frames(conn: &mut Conn, ctx: &ReactorCtx) {
    loop {
        if conn.dead || conn.pending.is_some() {
            return;
        }
        let hello_phase = match conn.phase {
            Phase::Hello { .. } => true,
            Phase::Active => false,
            _ => return,
        };
        let outcome = {
            let Conn {
                inbuf,
                client,
                outbound,
                batch_done,
                ingested,
                unaccounted,
                ..
            } = conn;
            match inbuf.peek() {
                Ok(None) => Outcome::NeedBytes,
                Err(_) => Outcome::Malformed,
                Ok(Some((header, payload))) if hello_phase => {
                    match codec::decode_payload(header.frame_type, payload) {
                        Ok(Frame::Hello(h)) => Outcome::Hello(header.payload_len, h),
                        Ok(_) => Outcome::NotHello,
                        Err(_) => Outcome::Malformed,
                    }
                }
                Ok(Some((header, payload))) => match header.frame_type {
                    FT_BATCH => match BatchView::parse(payload) {
                        Err(_) => Outcome::Malformed,
                        Ok(view) => {
                            if *batch_done == 0 {
                                ctx.counters.frames_received.inc();
                            }
                            let mut paused = None;
                            for (seq, record, label) in view.records().skip(*batch_done) {
                                let stalled = ingest_one(
                                    ctx,
                                    client,
                                    outbound,
                                    ingested,
                                    unaccounted,
                                    seq,
                                    record,
                                    label,
                                );
                                *batch_done += 1;
                                if let Some(frame) = stalled {
                                    paused = Some(frame);
                                    break;
                                }
                            }
                            match paused {
                                // Mid-batch stall: keep the frame,
                                // `batch_done` is the resume point.
                                Some(frame) => Outcome::Pause(header.payload_len, frame, false),
                                None => {
                                    *batch_done = 0;
                                    Outcome::Done(header.payload_len)
                                }
                            }
                        }
                    },
                    FT_RECORD => match codec::decode_payload(FT_RECORD, payload) {
                        Ok(Frame::Record(r)) => {
                            ctx.counters.frames_received.inc();
                            match ingest_one(
                                ctx,
                                client,
                                outbound,
                                ingested,
                                unaccounted,
                                r.seq,
                                r.record,
                                r.label,
                            ) {
                                // The record is already submitted: the
                                // frame must be consumed with the NACK
                                // pending, or it would resubmit.
                                Some(frame) => Outcome::Pause(header.payload_len, frame, true),
                                None => Outcome::Done(header.payload_len),
                            }
                        }
                        _ => Outcome::Malformed,
                    },
                    FT_GOODBYE => match codec::decode_payload(FT_GOODBYE, payload) {
                        Ok(_) => {
                            ctx.counters.frames_received.inc();
                            Outcome::Drain(header.payload_len)
                        }
                        Err(_) => Outcome::Malformed,
                    },
                    other => match codec::decode_payload(other, payload) {
                        Ok(_) => {
                            ctx.counters.frames_received.inc();
                            Outcome::Unsupported(header.payload_len)
                        }
                        Err(_) => Outcome::Malformed,
                    },
                },
            }
        };
        match outcome {
            Outcome::NeedBytes => return,
            Outcome::Done(len) => conn.inbuf.consume(len),
            Outcome::Hello(len, hello) => {
                conn.inbuf.consume(len);
                handshake(conn, ctx, hello);
            }
            Outcome::NotHello => {
                // Mirrors the blocking gateway: a failed handshake of
                // any flavour lands in `transport_timeouts`.
                ctx.counters.transport_timeouts.inc();
                conn.dead = true;
                return;
            }
            Outcome::Drain(len) => {
                conn.inbuf.consume(len);
                conn.phase = Phase::Draining {
                    resolved: 0,
                    last_progress: Instant::now(),
                };
                return;
            }
            Outcome::Unsupported(len) => {
                conn.inbuf.consume(len);
                part(conn, ctx, nack(0, NackReason::Unsupported));
                return;
            }
            Outcome::Malformed => {
                if hello_phase {
                    ctx.counters.transport_timeouts.inc();
                    conn.dead = true;
                } else {
                    ctx.counters.malformed_frames.inc();
                    part(conn, ctx, nack(0, NackReason::Malformed));
                }
                return;
            }
            Outcome::Pause(len, frame, consume) => {
                if consume {
                    conn.inbuf.consume(len);
                }
                conn.pending = Some(frame);
                return;
            }
        }
    }
}

/// Reads as many bytes as the socket will give (bounded per sweep) and
/// parses them. Returns whether anything moved.
fn pump_read(conn: &mut Conn, ctx: &ReactorCtx) -> bool {
    let mut progress = false;
    // Leftover complete frames from the previous sweep (e.g. after a
    // backpressure pause lifted) parse without any new bytes.
    parse_frames(conn, ctx);
    for _ in 0..MAX_READS_PER_SWEEP {
        if conn.dead || conn.pending.is_some() {
            break;
        }
        if !matches!(conn.phase, Phase::Hello { .. } | Phase::Active) {
            break;
        }
        let result = {
            let spare = conn.inbuf.spare_mut();
            if spare.is_empty() {
                break;
            }
            conn.io.poll_read(spare)
        };
        match result {
            Ok(PollRead::Data(n)) => {
                conn.inbuf.commit(n);
                progress = true;
                parse_frames(conn, ctx);
            }
            Ok(PollRead::WouldBlock) => break,
            Ok(PollRead::Eof) => {
                conn.read_eof = true;
                break;
            }
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    progress
}

/// Moves frames outbound queue → write ring → socket. Returns whether
/// anything moved.
fn pump_write(conn: &mut Conn, ctx: &ReactorCtx) -> bool {
    let mut progress = false;
    for _ in 0..MAX_WRITE_ROUNDS_PER_SWEEP {
        // Fill the ring from the staged frame and the outbound queue.
        loop {
            let frame = match conn.staged.take() {
                Some(frame) => frame,
                None => match &conn.outbound {
                    Some(queue) if !conn.outbound_done => match queue.try_pop() {
                        PopResult::Item(frame) => frame,
                        PopResult::TimedOut => break,
                        PopResult::Closed => {
                            conn.outbound_done = true;
                            break;
                        }
                    },
                    _ => break,
                },
            };
            if conn.out.push_frame(&mut conn.encoder, &frame) {
                progress = true;
            } else if conn.out.is_empty() {
                // A frame larger than the whole ring can never be
                // delivered; dropping it beats wedging the connection.
                // (Cannot happen with real protocol frames: a
                // Prediction/NACK/Goodbye is far under 16 KiB.)
            } else {
                conn.staged = Some(frame);
                break;
            }
        }
        if conn.out.is_empty() {
            return progress;
        }
        let (slices, n) = conn.out.slices();
        let io_slices = match slices.get(..n) {
            Some(s) => s,
            None => &slices,
        };
        let result = conn.io.poll_write(io_slices);
        match result {
            Ok(PollWrite::Wrote(k)) => {
                let delivered = conn.out.advance(k);
                conn.delivered += delivered;
                ctx.counters.predictions_sent.add(delivered);
                progress = true;
            }
            Ok(PollWrite::WouldBlock) => return progress,
            Err(_) => {
                conn.dead = true;
                return progress;
            }
        }
    }
    progress
}

/// One scheduling sweep over a connection: retry pending control
/// frames, write, read, then advance the lifecycle phase. Returns
/// `(progress, done)`; `done` means the slot can be dropped.
fn pump(conn: &mut Conn, ctx: &ReactorCtx, stopping: bool) -> (bool, bool) {
    let mut progress = false;
    if stopping && !conn.stop_seen {
        conn.stop_seen = true;
        match conn.phase {
            Phase::Hello { .. } => {
                ctx.counters.transport_timeouts.inc();
                conn.dead = true;
            }
            Phase::Active => close_now(conn, ctx),
            _ => {}
        }
    }
    if let Some(frame) = conn.pending.take() {
        match offer(&conn.outbound, frame) {
            None => progress = true,
            Some(frame) => conn.pending = Some(frame),
        }
    }
    if !conn.dead {
        progress |= pump_write(conn, ctx);
    }
    if !conn.dead && conn.pending.is_none() {
        progress |= pump_read(conn, ctx);
    }
    let now = Instant::now();
    match conn.phase {
        Phase::Hello { deadline } => {
            if conn.read_eof || now >= deadline {
                ctx.counters.transport_timeouts.inc();
                conn.dead = true;
            }
        }
        Phase::Active => {
            if conn.read_eof {
                close_now(conn, ctx);
            }
        }
        Phase::Draining {
            resolved,
            last_progress,
        } => {
            let queue_counters = conn
                .outbound
                .as_ref()
                .map(|q| q.counters())
                .unwrap_or_default();
            let now_resolved = conn.delivered + queue_counters.dropped + queue_counters.rejected;
            if now_resolved >= conn.ingested {
                let goodbye = Frame::Goodbye(Goodbye {
                    count: conn.delivered,
                });
                part(conn, ctx, goodbye);
            } else if now_resolved != resolved {
                conn.phase = Phase::Draining {
                    resolved: now_resolved,
                    last_progress: now,
                };
            } else if now.duration_since(last_progress) > ctx.config.drain_grace {
                let goodbye = Frame::Goodbye(Goodbye {
                    count: conn.delivered,
                });
                part(conn, ctx, goodbye);
            }
        }
        Phase::Parting { since } => {
            if conn.pending.is_none() {
                close_now(conn, ctx);
            } else if now.duration_since(since) > ctx.config.drain_grace {
                conn.pending = None;
                close_now(conn, ctx);
            }
        }
        Phase::Closing { since } => {
            let flushed = conn.out.is_empty()
                && conn.staged.is_none()
                && (conn.outbound.is_none() || conn.outbound_done);
            if conn.dead || flushed || now.duration_since(since) > ctx.config.drain_grace {
                finalize(conn, ctx);
                return (progress, true);
            }
        }
    }
    if conn.dead {
        finalize(conn, ctx);
        return (progress, true);
    }
    (progress, false)
}

/// Adaptive park: spin-yield while traffic is hot, back off to short
/// sleeps as the reactor idles.
fn park(idle_sweeps: u32) {
    if idle_sweeps < 32 {
        std::thread::yield_now();
    } else if idle_sweeps < 256 {
        std::thread::sleep(Duration::from_micros(50));
    } else {
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// The reactor body: adopt injected connections, sweep every live one,
/// contain panics per connection, park when idle. Exits once a stop is
/// requested and every connection has wound down.
pub(crate) fn reactor_loop(injector: Arc<Injector>, ctx: ReactorCtx) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut idle_sweeps: u32 = 0;
    loop {
        let stopping = ctx.stop.load(Ordering::SeqCst);
        for io in injector.drain() {
            conns.push(Conn::new(io, &ctx));
        }
        let mut progress = false;
        conns.retain_mut(|conn| {
            match catch_unwind(AssertUnwindSafe(|| pump(conn, &ctx, stopping))) {
                Ok((moved, done)) => {
                    progress |= moved;
                    !done
                }
                Err(_) => {
                    // The connection's own panic must not take down
                    // its siblings; containment itself is also fused.
                    let _ = catch_unwind(AssertUnwindSafe(|| contain_panic(conn, &ctx)));
                    false
                }
            }
        });
        if stopping && conns.is_empty() {
            break;
        }
        if progress {
            idle_sweeps = 0;
        } else {
            idle_sweeps = idle_sweeps.saturating_add(1);
        }
        park(idle_sweeps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Hello, PredictionFrame};
    use crate::frame::DEFAULT_MAX_PAYLOAD;

    fn frame_bytes(frame: &Frame) -> Vec<u8> {
        Encoder::default().encode(frame).expect("encode")
    }

    #[test]
    fn frame_buffer_grows_compacts_and_parses_across_fragments() {
        let hello = Frame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            sensor_id: "buffer-test".into(),
            tenant: String::new(),
        });
        let bytes = frame_bytes(&hello);
        let mut buf = FrameBuffer::new(1 << 16);

        // Feed the frame one byte at a time: peek must stay Ok(None)
        // until the last byte lands.
        for (i, b) in bytes.iter().enumerate() {
            assert!(
                buf.peek().expect("no error on prefix").is_none(),
                "byte {i}: incomplete frame must not parse"
            );
            let spare = buf.spare_mut();
            assert!(!spare.is_empty());
            if let Some(slot) = spare.first_mut() {
                *slot = *b;
            }
            buf.commit(1);
        }
        let (header, payload) = buf
            .peek()
            .expect("complete frame decodes")
            .expect("frame present");
        assert_eq!(header.frame_type, 1);
        assert_eq!(payload.len(), header.payload_len);
        let payload_len = header.payload_len;
        buf.consume(payload_len);
        assert!(buf.is_empty());

        // After consuming, the next write may reuse the front (reset /
        // compaction) — feed two frames back to back and drain both.
        let two: Vec<u8> = [bytes.as_slice(), bytes.as_slice()].concat();
        let mut fed = 0;
        while fed < two.len() {
            let spare = buf.spare_mut();
            let n = spare.len().min(two.len() - fed);
            assert!(n > 0, "buffer must always offer spare room under cap");
            if let Some(dst) = spare.get_mut(..n) {
                dst.copy_from_slice(&two[fed..fed + n]);
            }
            buf.commit(n);
            fed += n;
        }
        for _ in 0..2 {
            let (h, _) = buf.peek().expect("decodes").expect("present");
            let len = h.payload_len;
            buf.consume(len);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn frame_buffer_starts_small_and_caps_at_max_payload() {
        let mut buf = FrameBuffer::new(DEFAULT_MAX_PAYLOAD);
        // 10k idle connections must not cost 10 GB: the initial
        // allocation is a few KiB, not HEADER + max_payload.
        assert!(buf.spare_mut().len() <= INITIAL_RECV_BYTES);
        let tiny = FrameBuffer::new(8);
        assert!(tiny.max_payload == 8);
    }

    #[test]
    fn write_ring_wraps_and_counts_predictions_on_flush_boundary() {
        let mut encoder = Encoder::default();
        let pred = Frame::Prediction(PredictionFrame {
            seq: 1,
            timestamp_s: 2.0,
            occupied: 1,
            proba: 0.75,
            model_version: 1,
            latency_ns: 10,
        });
        let pred_len = frame_bytes(&pred).len();
        // Room for two predictions plus change, so the third push
        // wraps or refuses depending on drain progress.
        let mut ring = WriteRing::new(pred_len * 2 + 8);
        assert!(ring.push_frame(&mut encoder, &pred));
        assert!(ring.push_frame(&mut encoder, &pred));
        assert!(
            !ring.push_frame(&mut encoder, &pred),
            "a full ring must refuse, not overwrite"
        );

        // Partial flush: the first prediction only counts once its
        // *last* byte leaves.
        assert_eq!(ring.advance(pred_len - 1), 0);
        assert_eq!(ring.advance(1), 1);
        // Now there is room again — the refused frame fits (wrapped).
        assert!(ring.push_frame(&mut encoder, &pred));
        let (slices, n) = ring.slices();
        let queued: usize = slices.iter().take(n).map(|s| s.len()).sum();
        assert_eq!(queued, pred_len * 2);
        assert_eq!(ring.advance(queued), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn write_ring_drops_unencodable_frames_as_consumed() {
        let mut encoder = Encoder::default();
        let oversized = Frame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            sensor_id: "x".repeat(MAX_SENSOR_ID_BYTES_PLUS_ONE),
            tenant: String::new(),
        });
        let mut ring = WriteRing::new(1024);
        // Returning true (consumed) keeps the pump from re-staging a
        // frame that can never encode.
        assert!(ring.push_frame(&mut encoder, &oversized));
        assert!(ring.is_empty());
    }

    const MAX_SENSOR_ID_BYTES_PLUS_ONE: usize = crate::codec::MAX_SENSOR_ID_BYTES + 1;
}
