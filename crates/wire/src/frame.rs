//! The frame envelope: magic, version, length prefix and checksum
//! around every [`codec`](crate::codec) payload.
//!
//! Layout of the 20-byte header (all little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic            b"OCW1"
//!      4     1  version          PROTOCOL_VERSION (1)
//!      5     1  frame_type       1..=7, see codec::Frame::frame_type
//!      6     2  flags            reserved, must be 0 in v1
//!      8     4  payload_len      bytes of payload following the header
//!     12     8  checksum         FNV-1a-64 over frame_type ++ payload
//! ```
//!
//! The checksum covers the frame-type byte as well as the payload, so
//! a bit-flip that relabels a frame (turning a `Record` into a `Nack`
//! of the same length) is caught even when the payload happens to
//! parse under both types. FNV-1a is an error-*detection* hash here,
//! not authentication — the transport boundary is assumed to be a
//! trusted lab/edge network, exactly like the Nexmon sensor links of
//! the source paper.

use crate::codec::{self, DecodeError, EncodeError, Frame, PROTOCOL_VERSION};

/// The four magic bytes opening every frame ("OCcusense Wire v1").
pub const MAGIC: [u8; 4] = *b"OCW1";

/// Size of the fixed envelope header.
pub const HEADER_BYTES: usize = 20;

/// Default per-frame payload ceiling: comfortably above the largest
/// legal frame (a full 512-record batch is ~276 KiB) while bounding
/// what a broken peer can make a receiver buffer.
pub const DEFAULT_MAX_PAYLOAD: usize = 1 << 20;

/// The parsed fixed header of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame-type byte (validated against the known set only when the
    /// payload is decoded).
    pub frame_type: u8,
    /// Bytes of payload following the header.
    pub payload_len: usize,
    /// FNV-1a-64 over the frame-type byte and the payload.
    pub checksum: u64,
}

/// FNV-1a 64-bit over `bytes` — the workspace-wide shared hash
/// ([`occusense_core::hash`]), re-exported here so wire consumers keep
/// their historical import path.
pub use occusense_core::hash::fnv1a64 as fnv1a;

/// The envelope checksum of a frame: FNV-1a seeded with the frame-type
/// byte, then folded over the payload — expressed as two streaming
/// extends of the shared hash, so it stays bit-identical to hashing
/// the concatenation `frame_type ++ payload`.
pub fn checksum_of(frame_type: u8, payload: &[u8]) -> u64 {
    use occusense_core::hash::{fnv1a64_extend, FNV_OFFSET_BASIS};
    fnv1a64_extend(fnv1a64_extend(FNV_OFFSET_BASIS, &[frame_type]), payload)
}

/// Parses the fixed header at the start of `bytes`.
///
/// # Errors
///
/// [`DecodeError::Truncated`] when fewer than [`HEADER_BYTES`] are
/// available (the caller should read more and retry), plus the magic /
/// version / reserved-flags refusals.
pub fn decode_header(bytes: &[u8]) -> Result<FrameHeader, DecodeError> {
    if bytes.len() < HEADER_BYTES {
        return Err(DecodeError::Truncated {
            needed: HEADER_BYTES,
            have: bytes.len(),
        });
    }
    let field = |at: usize, n: usize| -> &[u8] {
        // In range by the length check above; `unwrap_or_default`
        // keeps the path panic-free regardless.
        bytes.get(at..at + n).unwrap_or_default()
    };
    let mut magic = [0u8; 4];
    magic.copy_from_slice(field(0, 4));
    if magic != MAGIC {
        return Err(DecodeError::BadMagic { found: magic });
    }
    let version = field(4, 1).first().copied().unwrap_or(0);
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version });
    }
    let frame_type = field(5, 1).first().copied().unwrap_or(0);
    let mut flags_raw = [0u8; 2];
    flags_raw.copy_from_slice(field(6, 2));
    let flags = u16::from_le_bytes(flags_raw);
    if flags != 0 {
        return Err(DecodeError::ReservedFlags { found: flags });
    }
    let mut len_raw = [0u8; 4];
    len_raw.copy_from_slice(field(8, 4));
    let payload_len = u32::from_le_bytes(len_raw) as usize;
    let mut sum_raw = [0u8; 8];
    sum_raw.copy_from_slice(field(12, 8));
    let checksum = u64::from_le_bytes(sum_raw);
    Ok(FrameHeader {
        frame_type,
        payload_len,
        checksum,
    })
}

/// Reusable frame encoder: owns a payload scratch buffer so steady-
/// state encoding performs no allocation beyond the caller's output
/// vector.
#[derive(Debug, Default)]
pub struct Encoder {
    payload: Vec<u8>,
}

impl Encoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the full wire image (header + payload) of `frame` to
    /// `out`.
    ///
    /// # Errors
    ///
    /// [`EncodeError`] when a payload field exceeds its protocol bound;
    /// `out` is untouched on error.
    pub fn encode_into(&mut self, frame: &Frame, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        self.payload.clear();
        codec::encode_payload(frame, &mut self.payload)?;
        let frame_type = frame.frame_type();
        out.extend_from_slice(&MAGIC);
        out.push(PROTOCOL_VERSION);
        out.push(frame_type);
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&checksum_of(frame_type, &self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        Ok(())
    }

    /// The full wire image of `frame` as a fresh vector.
    ///
    /// # Errors
    ///
    /// [`EncodeError`] when a payload field exceeds its protocol bound.
    pub fn encode(&mut self, frame: &Frame) -> Result<Vec<u8>, EncodeError> {
        let mut out = Vec::with_capacity(HEADER_BYTES + 64);
        self.encode_into(frame, &mut out)?;
        Ok(out)
    }
}

/// Decodes one complete frame from the start of `bytes`, returning it
/// together with the number of bytes consumed (header + payload).
///
/// # Errors
///
/// [`DecodeError::Truncated`] when the buffer holds less than a full
/// frame (read more and retry); [`DecodeError::Oversize`] when the
/// declared payload exceeds `max_payload`; checksum and payload errors
/// otherwise. Never panics.
pub fn decode_frame(bytes: &[u8], max_payload: usize) -> Result<(Frame, usize), DecodeError> {
    let header = decode_header(bytes)?;
    if header.payload_len > max_payload {
        return Err(DecodeError::Oversize {
            len: header.payload_len,
            max: max_payload,
        });
    }
    let total = HEADER_BYTES + header.payload_len;
    let payload = bytes
        .get(HEADER_BYTES..total)
        .ok_or(DecodeError::Truncated {
            needed: total,
            have: bytes.len(),
        })?;
    let computed = checksum_of(header.frame_type, payload);
    if computed != header.checksum {
        return Err(DecodeError::ChecksumMismatch {
            expected: header.checksum,
            computed,
        });
    }
    let frame = codec::decode_payload(header.frame_type, payload)?;
    Ok((frame, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Goodbye, NackFrame, NackReason};

    #[test]
    fn header_layout_is_exactly_twenty_bytes() {
        let bytes = Encoder::new()
            .encode(&Frame::Goodbye(Goodbye { count: 3 }))
            .unwrap();
        assert_eq!(bytes.len(), HEADER_BYTES + 8);
        let header = decode_header(&bytes).unwrap();
        assert_eq!(header.frame_type, 7);
        assert_eq!(header.payload_len, 8);
    }

    #[test]
    fn frames_round_trip_through_the_envelope() {
        let frame = Frame::Nack(NackFrame {
            seq: 77,
            reason: NackReason::Shutdown,
        });
        let bytes = Encoder::new().encode(&frame).unwrap();
        let (back, consumed) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = Frame::Goodbye(Goodbye { count: 123_456 });
        let clean = Encoder::new().encode(&frame).unwrap();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.clone();
                corrupt[byte] ^= 1 << bit;
                let outcome = decode_frame(&corrupt, DEFAULT_MAX_PAYLOAD);
                assert!(
                    outcome.is_err() || outcome == Ok((frame.clone(), clean.len())),
                    "flip {byte}:{bit} silently decoded to {outcome:?}"
                );
                // A flip in the payload or type byte specifically must
                // never produce a *different* accepted frame.
                if let Ok((decoded, _)) = outcome {
                    assert_eq!(decoded, frame);
                }
            }
        }
    }

    #[test]
    fn checksum_covers_the_frame_type() {
        // Relabel a Goodbye (type 7) as a Nack envelope (type 6) with
        // an otherwise consistent header: must fail the checksum, not
        // decode as a 9-byte-starved Nack.
        let frame = Frame::Goodbye(Goodbye { count: 0 });
        let mut bytes = Encoder::new().encode(&frame).unwrap();
        bytes[5] = 6;
        assert!(matches!(
            decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversize_and_truncation_are_typed() {
        let frame = Frame::Goodbye(Goodbye { count: 1 });
        let bytes = Encoder::new().encode(&frame).unwrap();
        assert!(matches!(
            decode_frame(&bytes, 4),
            Err(DecodeError::Oversize { len: 8, max: 4 })
        ));
        for cut in 0..bytes.len() {
            assert!(matches!(
                decode_frame(&bytes[..cut], DEFAULT_MAX_PAYLOAD),
                Err(DecodeError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn fnv1a_matches_the_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn checksum_of_is_bitwise_compatible_with_the_legacy_loop() {
        // The pre-dedup private implementation, verbatim: any frame
        // checksummed before the shared hash existed must still
        // validate, so the seeded construction is pinned against it.
        fn legacy(frame_type: u8, payload: &[u8]) -> u64 {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            hash ^= u64::from(frame_type);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            for b in payload {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash
        }
        for frame_type in [1u8, 3, 6, 7, 0, 255] {
            for payload in [&b""[..], b"x", b"record payload bytes", &[0u8; 64]] {
                assert_eq!(
                    checksum_of(frame_type, payload),
                    legacy(frame_type, payload),
                    "type {frame_type}, payload {payload:?}"
                );
            }
        }
    }
}
