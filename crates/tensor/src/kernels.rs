//! High-performance GEMM kernels: register-tiled, fused, and
//! optionally parallel — the hot-path engine behind [`Matrix`] matmul,
//! the dense-layer forward/backward passes, and the serving runtime's
//! batched forwards.
//!
//! # Design
//!
//! * **Register-tiled rank-1 micro-kernel.** The output is walked in
//!   `IT × JT` tiles whose accumulators live entirely in SIMD
//!   registers. Each step along the shared dimension broadcasts one
//!   element of `A` per tile row and performs a rank-1 update against a
//!   contiguous [`JT`]-wide slice of a `B` row. The inner loop is pure
//!   broadcast-FMA with **no reduction dependency**, so it
//!   auto-vectorises to the machine's FMA throughput instead of being
//!   serialised on a loop-carried accumulator chain.
//! * **Fused multiply-add, fixed order.** The accumulators update via
//!   [`f64::mul_add`] — the IEEE-754 `fusedMultiplyAdd`, a single
//!   correctly-rounded operation the optimiser maps to the hardware
//!   FMA instruction. Rust never contracts separate `a * b + c` into
//!   FMA on its own, so spelling it out roughly doubles multiply-add
//!   throughput. Every output element still owns a single accumulator
//!   filled in ascending order of the shared dimension, so results are
//!   **exactly reproducible** (bitwise across runs, shapes, batch
//!   sizes and thread counts); they differ from the naive mul-then-add
//!   triple loop only by the per-step rounding, which the property
//!   tests bound to tight tolerance. The naive loop survives as the
//!   reference oracle.
//! * **Unrolled dot kernel.** [`dot_unrolled`] carries sixteen
//!   positional accumulators (independent SIMD chains) combined
//!   through a fixed reduction tree. It serves [`gemv`], where the
//!   reduction dimension is contiguous on both operands and there is
//!   only one output column to amortise loads over.
//! * **Determinism contract.** Every output element is a *pure
//!   function of its own row of `A` and column of `B`* with a fixed
//!   summation order. Results are therefore bitwise identical across
//!   batch sizes, tile shapes, fused/unfused paths, and any thread
//!   count — the parallel kernels split output rows across threads
//!   (the persistent [`pool`](crate::pool) or the legacy scoped-spawn
//!   path) without changing any summation order. Parallelism is a
//!   pure throughput knob, never a numerics knob.
//! * **Scratch reuse.** All `*_into` entry points write into
//!   caller-owned buffers and carry their policy/accounting in a
//!   [`Scratch`], so steady-state callers (the trainer step loop, the
//!   serve worker's batched forward) perform zero heap allocations.
//!
//! [`Matrix`]: crate::Matrix
//! [`Matrix::matmul_naive`]: crate::Matrix::matmul_naive

use crate::pool;

/// Output columns per register tile. With [`IT`] rows the `8 × 8` tile
/// keeps 8 accumulator vectors + 1 `B`-row vector + 1 broadcast in
/// registers on both 256-bit (16 ymm) and 512-bit (32 zmm) files —
/// measured fastest on this generation of hardware; wider or taller
/// tiles spill accumulators to the stack and collapse throughput.
const JT: usize = 8;
/// Output rows per register tile (see [`JT`]) — also the packed-panel
/// height, and therefore the alignment of every parallel row-block
/// boundary (see [`pool`]).
pub(crate) const IT: usize = 8;
/// Column width of the single-row micro-kernel used for the final
/// `rows mod IT` tail rows and for tiny batches (the `m = 1`
/// per-record inference path): eight independent vector accumulators
/// hide FMA latency where a narrow single-row tile would serialise on
/// its own dependency chain. The `m = 1` path is bound by streaming
/// the weight matrix from cache, so wider or memory-resident strips
/// measure no better.
const JW: usize = 64;
/// Minimum `m · k · n` product before threads are spawned; below this
/// the spawn cost dominates. Correctness never depends on this value.
const PAR_MIN_FLOPS: usize = 1 << 16;

/// How much std-thread parallelism the kernels may use.
///
/// The parallel GEMM splits the *output rows* across threads; each
/// element is computed by exactly the same fixed-order accumulation as
/// the single-threaded kernel, so results are **bitwise identical for
/// every thread count** — parallelism is a pure throughput knob, never
/// a numerics knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Everything on the calling thread.
    #[default]
    Single,
    /// Up to `n` threads per kernel call, served by the persistent
    /// [`pool`] owned by the [`Scratch`] (the caller plus `n − 1`
    /// long-lived workers, engaged only when the matrix is large
    /// enough to amortise the dispatch). The budget is additionally
    /// clamped to the machine's core count — the pool never
    /// oversubscribes, and on a single core it degrades to the inline
    /// kernel. Results are bitwise identical regardless.
    Threads(usize),
    /// Up to `n` scoped threads spawned **and joined on every kernel
    /// call** — the legacy pre-pool path. Kept as the benchmark
    /// baseline and the oracle the pool's bitwise-identity tests
    /// compare against; prefer [`Parallelism::Threads`] everywhere
    /// else.
    SpawnThreads(usize),
}

impl Parallelism {
    /// The thread budget (`Single` ⇒ 1).
    pub fn threads(&self) -> usize {
        match self {
            Parallelism::Single => 1,
            Parallelism::Threads(n) | Parallelism::SpawnThreads(n) => (*n).max(1),
        }
    }
}

/// Reusable workspace for the packed kernels.
///
/// Owns the pack buffer (and the parallelism policy) so that repeated
/// kernel calls — a training step loop, a serve worker's batch loop —
/// allocate nothing once the buffer has grown to the largest shape in
/// play. [`Scratch::reallocs`] counts the growth events, which is what
/// the zero-allocation steady-state tests assert on.
#[derive(Debug)]
pub struct Scratch {
    packed: Vec<f64>,
    parallelism: Parallelism,
    reallocs: u64,
    /// The persistent worker pool behind [`Parallelism::Threads`],
    /// spawned lazily on the first parallel dispatch and dropped
    /// (workers joined) when the policy changes.
    pool: Option<pool::ComputePool>,
    /// Machine core count the pooled policy's thread budget is clamped
    /// to (probed once per process; see [`pool`] module docs). The
    /// legacy [`Parallelism::SpawnThreads`] baseline is deliberately
    /// *not* clamped — it reproduces the pre-pool behaviour exactly.
    cores: usize,
}

impl Default for Scratch {
    fn default() -> Self {
        Self {
            packed: Vec::new(),
            parallelism: Parallelism::default(),
            reallocs: 0,
            pool: None,
            cores: pool::machine_cores(),
        }
    }
}

impl Clone for Scratch {
    /// Clones the policy and accounting but **not** the pool: worker
    /// threads are owned, not shared, so each clone lazily spawns its
    /// own on first parallel use (and a clone on a different policy
    /// never steals the original's workers).
    fn clone(&self) -> Self {
        Self {
            packed: self.packed.clone(),
            parallelism: self.parallelism,
            reallocs: self.reallocs,
            pool: None,
            cores: self.cores,
        }
    }
}

impl Scratch {
    /// An empty scratch running single-threaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty scratch with the given parallelism policy.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        Self {
            parallelism,
            ..Self::default()
        }
    }

    /// The parallelism policy kernel calls through this scratch use.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Replaces the parallelism policy. Changing the policy drops any
    /// persistent pool (its workers shut down and join before this
    /// returns); the next parallel dispatch under a `Threads` policy
    /// lazily spawns a fresh, correctly-sized one.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        if parallelism != self.parallelism {
            self.pool = None;
        }
        self.parallelism = parallelism;
    }

    /// Number of live persistent pool workers, or `None` before the
    /// first parallel dispatch (the pool is lazy) and after a policy
    /// change (the pool is dropped). Test/diagnostic surface.
    pub fn pool_workers(&self) -> Option<usize> {
        self.pool.as_ref().map(pool::ComputePool::workers)
    }

    /// Overrides the probed machine core count. Test-only: lets the
    /// pool-protocol tests engage a full pool on small CI machines and
    /// the clamp tests simulate one. Scheduling-only, like the probe
    /// itself — results are bitwise identical either way.
    #[cfg(test)]
    pub(crate) fn set_machine_cores(&mut self, cores: usize) {
        self.cores = cores;
    }

    /// Number of times any tracked buffer had to grow. Constant across
    /// iterations ⇒ the steady state performs no heap allocations here.
    pub fn reallocs(&self) -> u64 {
        self.reallocs
    }

    /// Records a buffer growth that happened outside the scratch itself
    /// (e.g. an output [`Matrix`](crate::Matrix) handed to a `*_into`
    /// kernel had to grow), so a single counter covers a whole
    /// workspace: pass the `true` returns of
    /// [`Matrix::ensure_shape`](crate::Matrix::ensure_shape) here and
    /// assert [`Scratch::reallocs`] is flat in the steady state.
    pub fn note_grow(&mut self) {
        self.reallocs += 1;
    }

    /// Borrows a `len`-sized pack buffer, growing (and counting the
    /// growth) only when the current capacity is insufficient.
    // lint:allow-region(index, reason = "hot GEMM/GEMV kernels: every index is governed by the dimension asserts at each kernel's entry, and get()/checked forms defeat the autovectoriser this file exists for")
    fn pack_space(&mut self, len: usize) -> &mut [f64] {
        if len > self.packed.capacity() {
            self.reallocs += 1;
        }
        self.packed.resize(len, 0.0);
        &mut self.packed[..len]
    }
}

// Everything below (the kernels proper, down to the tests) must stay
// allocation-free: scratch growth is only legal inside
// Scratch::pack_space above, where it is counted by `reallocs`.
// lint:no_alloc

/// Scalar lanes per unrolled dot-product step. Sixteen positional
/// accumulators auto-vectorise into four independent 4-lane SIMD
/// chains, hiding FMA latency (a single vector accumulator would stall
/// on its own loop-carried dependency).
const DOT_LANES: usize = 16;

/// Fixed reduction tree over the sixteen lane accumulators — part of
/// the determinism contract: the combine order never varies.
#[inline]
fn reduce_lanes(acc: &[f64; DOT_LANES]) -> f64 {
    let q0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let q1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
    let q2 = (acc[8] + acc[9]) + (acc[10] + acc[11]);
    let q3 = (acc[12] + acc[13]) + (acc[14] + acc[15]);
    (q0 + q1) + (q2 + q3)
}

/// Dot product over sixteen positional accumulators (lane `l` sums the
/// elements at positions `≡ l (mod 16)`), combined through a fixed
/// reduction tree, plus an in-order scalar tail. The arithmetic order
/// depends only on the slice length, never on layout or blocking,
/// which is what makes the kernels built on it bitwise-reproducible.
///
/// # Panics
///
/// Panics (in debug builds) if the slices have different lengths.
#[inline]
pub fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot_unrolled: length mismatch");
    let blocks = a.len() / DOT_LANES;
    let (ab, a_tail) = a.split_at(blocks * DOT_LANES);
    let (bb, b_tail) = b.split_at(blocks * DOT_LANES);
    let mut acc = [0.0f64; DOT_LANES];
    for (ca, cb) in ab.chunks_exact(DOT_LANES).zip(bb.chunks_exact(DOT_LANES)) {
        for l in 0..DOT_LANES {
            acc[l] = ca[l].mul_add(cb[l], acc[l]);
        }
    }
    let mut tail = 0.0;
    for (x, y) in a_tail.iter().zip(b_tail) {
        tail = x.mul_add(*y, tail);
    }
    reduce_lanes(&acc) + tail
}

/// Packs the left operand of a rank-1-update product into panels: full
/// panels of [`IT`] rows are stored *step-major* (`panel[s·IT + r] =
/// lhs(p0 + r, s)`, so one contiguous [`IT`]-chunk per step feeds the
/// micro-kernel's broadcasts), and the final `rows mod IT` tail rows
/// are stored row-major for the single-row wide kernel. `lhs(r, s) =
/// lhs[r·lrs + s·lss]` — `(lrs, lss) = (k, 1)` packs the rows of a
/// row-major `A`, `(1, ca)` its columns (the implicit transpose of
/// [`gemm_tn`]). Packing is pure data movement: it never touches the
/// per-element accumulation order.
fn pack_panels(rows: usize, steps: usize, lhs: &[f64], lrs: usize, lss: usize, packed: &mut [f64]) {
    debug_assert_eq!(packed.len(), rows * steps);
    let full = rows - rows % IT;
    for p0 in (0..full).step_by(IT) {
        let dst = &mut packed[p0 * steps..(p0 + IT) * steps];
        for (s, chunk) in dst.chunks_exact_mut(IT).enumerate() {
            for (r, d) in chunk.iter_mut().enumerate() {
                *d = lhs[(p0 + r) * lrs + s * lss];
            }
        }
    }
    for i in full..rows {
        let dst = &mut packed[i * steps..(i + 1) * steps];
        for (s, d) in dst.iter_mut().enumerate() {
            *d = lhs[i * lrs + s * lss];
        }
    }
}

/// `IT × JT` register-tile micro-kernel: `acc[r][l] =
/// fma(panel(s, r), rhs[s·rss + j0 + l], acc[r][l])` over all `steps`,
/// with `panel` step-major as laid out by [`pack_panels`]. Every output
/// element owns a single accumulator filled in ascending `s` — the
/// determinism contract every caller relies on. The fixed-size
/// `try_into` reborrows give the optimiser check-free, fixed-width
/// inner loops, and returning the tile by value keeps the accumulators
/// in registers.
#[inline]
fn micro_panel(steps: usize, panel: &[f64], rhs: &[f64], rss: usize, j0: usize) -> [[f64; JT]; IT] {
    let mut acc = [[0.0f64; JT]; IT];
    for s in 0..steps {
        let rv: &[f64; JT] = rhs[s * rss + j0..s * rss + j0 + JT]
            .try_into()
            // lint:allow(panic, reason = "infallible: the slice is exactly JT long by construction; try_into is a free fixed-width reborrow")
            .expect("micro_panel: tile");
        let avs: &[f64; IT] = panel[s * IT..s * IT + IT]
            .try_into()
            // lint:allow(panic, reason = "infallible: the slice is exactly IT long by construction; try_into is a free fixed-width reborrow")
            .expect("micro_panel: panel");
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = avs[r];
            for l in 0..JT {
                acc_row[l] = av.mul_add(rv[l], acc_row[l]);
            }
        }
    }
    acc
}

/// Edge variant of [`micro_panel`] for a tile narrower than [`JT`]
/// (`jw` columns). The per-element accumulation order is identical —
/// only the lane count differs — so edge tiles keep the bitwise
/// contract.
#[inline]
fn micro_panel_edge(
    steps: usize,
    panel: &[f64],
    rhs: &[f64],
    rss: usize,
    j0: usize,
    jw: usize,
) -> [[f64; JT]; IT] {
    let mut acc = [[0.0f64; JT]; IT];
    for s in 0..steps {
        let rv = &rhs[s * rss + j0..s * rss + j0 + jw];
        let avs: &[f64; IT] = panel[s * IT..s * IT + IT]
            .try_into()
            // lint:allow(panic, reason = "infallible: the slice is exactly IT long by construction; try_into is a free fixed-width reborrow")
            .expect("micro_panel_edge: panel");
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = avs[r];
            for (lane, &x) in acc_row.iter_mut().zip(rv) {
                *lane = av.mul_add(x, *lane);
            }
        }
    }
    acc
}

/// `1 × JW` single-row micro-kernel for tail rows and tiny batches:
/// eight independent vector accumulators across [`JW`] columns hide
/// the FMA latency that a single narrow tile would serialise on. Same
/// per-element order as [`micro_panel`]: single accumulator, ascending
/// `s`.
#[inline]
fn micro_row(arow: &[f64], rhs: &[f64], rss: usize, j0: usize) -> [f64; JW] {
    let mut acc = [0.0f64; JW];
    for (&av, brow) in arow.iter().zip(rhs.chunks_exact(rss)) {
        // lint:allow(panic, reason = "infallible: the slice is exactly JW long by construction; try_into is a free fixed-width reborrow")
        let rv: &[f64; JW] = brow[j0..j0 + JW].try_into().expect("micro_row: tile");
        for l in 0..JW {
            acc[l] = av.mul_add(rv[l], acc[l]);
        }
    }
    acc
}

/// Edge variant of [`micro_row`] for fewer than [`JW`] remaining
/// columns; identical per-element accumulation order.
#[inline]
fn micro_row_edge(arow: &[f64], rhs: &[f64], rss: usize, j0: usize, jw: usize) -> [f64; JW] {
    let mut acc = [0.0f64; JW];
    for (&av, brow) in arow.iter().zip(rhs.chunks_exact(rss)) {
        let rv = &brow[j0..j0 + jw];
        for (lane, &x) in acc.iter_mut().zip(rv) {
            *lane = av.mul_add(x, *lane);
        }
    }
    acc
}

/// Walks a `rows × cols` output in register tiles over a packed left
/// operand (see [`pack_panels`]): full [`IT`]-row panels through the
/// `IT × JT` tile kernel (panel outermost, so the packed panel stays
/// L1-resident while `rhs` streams), tail rows through the `1 × JW`
/// wide kernel. Every finished row segment is handed to
/// `store(row, j0, values)`. `rhs` is the full right operand
/// (`steps × rss` row-major); `packed` holds exactly `rows · steps`
/// elements.
fn rank1_tiles<F: FnMut(usize, usize, &[f64])>(
    steps: usize,
    rows: usize,
    cols: usize,
    packed: &[f64],
    rhs: &[f64],
    rss: usize,
    mut store: F,
) {
    debug_assert_eq!(packed.len(), rows * steps);
    debug_assert_eq!(rhs.len(), steps * rss);
    let full = rows - rows % IT;
    for p0 in (0..full).step_by(IT) {
        let panel = &packed[p0 * steps..(p0 + IT) * steps];
        let mut j0 = 0;
        while j0 < cols {
            let jw = JT.min(cols - j0);
            let acc = if jw == JT {
                micro_panel(steps, panel, rhs, rss, j0)
            } else {
                micro_panel_edge(steps, panel, rhs, rss, j0, jw)
            };
            for (r, row_acc) in acc.iter().enumerate() {
                store(p0 + r, j0, &row_acc[..jw]);
            }
            j0 += jw;
        }
    }
    for i in full..rows {
        let arow = &packed[i * steps..(i + 1) * steps];
        let mut j0 = 0;
        while j0 < cols {
            let jw = JW.min(cols - j0);
            let acc = if jw == JW {
                micro_row(arow, rhs, rss, j0)
            } else {
                micro_row_edge(arow, rhs, rss, j0, jw)
            };
            store(i, j0, &acc[..jw]);
            j0 += jw;
        }
    }
}

/// The single-output row-block body shared by every dispatch path
/// (inline, persistent pool, scoped spawn): computes output rows
/// `first_row..first_row + rows` of `out = packed · rhs` into `chunk`.
/// `packed` is the **full** packed left operand (the block's panel is
/// sliced out here — block boundaries are [`IT`]-aligned, so the slice
/// always starts on a whole panel); `chunk` holds exactly the block.
/// Pure `rank1_tiles` on bit-identical inputs ⇒ the same rows produce
/// the same bits no matter which thread, or how many, computed them.
pub(crate) fn gemm_rows(
    steps: usize,
    row_len: usize,
    first_row: usize,
    rows: usize,
    packed: &[f64],
    rhs: &[f64],
    chunk: &mut [f64],
) {
    let panel = &packed[first_row * steps..(first_row + rows) * steps];
    rank1_tiles(steps, rows, row_len, panel, rhs, row_len, |r, j0, vals| {
        chunk[r * row_len + j0..r * row_len + j0 + vals.len()].copy_from_slice(vals);
    });
}

/// Fused-forward sibling of [`gemm_rows`]: the same row block of the
/// matmul term plus the bias broadcast and the activation, written to
/// `zc`/`ac` in one pass.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fused_rows(
    steps: usize,
    row_len: usize,
    first_row: usize,
    rows: usize,
    packed: &[f64],
    rhs: &[f64],
    bias: &[f64],
    act: fn(f64) -> f64,
    zc: &mut [f64],
    ac: &mut [f64],
) {
    let panel = &packed[first_row * steps..(first_row + rows) * steps];
    rank1_tiles(steps, rows, row_len, panel, rhs, row_len, |r, j0, vals| {
        let zrow = &mut zc[r * row_len + j0..r * row_len + j0 + vals.len()];
        let arow = &mut ac[r * row_len + j0..r * row_len + j0 + vals.len()];
        for (l, &v) in vals.iter().enumerate() {
            let vb = v + bias[j0 + l];
            zrow[l] = vb;
            arow[l] = act(vb);
        }
    });
}

/// Effective thread count for a kernel of `flops` multiply-adds: 1
/// below the dispatch threshold, otherwise the policy budget — which
/// the pooled policy additionally clamps to the machine's `cores` (an
/// oversubscribed pool would time-slice spinning workers against the
/// caller; on one core it degrades to the inline kernel). The legacy
/// [`Parallelism::SpawnThreads`] baseline keeps its historical,
/// unclamped behaviour. Scheduling-only either way: the kernels are
/// bitwise identical for every thread count.
fn thread_budget(parallelism: Parallelism, cores: usize, flops: usize) -> usize {
    if flops < PAR_MIN_FLOPS {
        1
    } else {
        match parallelism {
            Parallelism::Threads(_) => parallelism.threads().min(cores.max(1)),
            Parallelism::Single | Parallelism::SpawnThreads(_) => parallelism.threads(),
        }
    }
}

/// `out = A · B` — the register-tiled, optionally parallel GEMM. `a` is
/// `m × k`, `b` is `k × n`, `out` is `m × n` (fully overwritten).
/// Exactly reproducible: bitwise identical for every thread count and
/// batch size; matches
/// [`Matrix::matmul_naive`](crate::Matrix::matmul_naive) to tight
/// tolerance (the kernel accumulates with fused multiply-adds in the
/// naive loop's order; only the per-step rounding differs).
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
pub fn gemm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    scratch: &mut Scratch,
) {
    assert_eq!(a.len(), m * k, "gemm: lhs length");
    assert_eq!(b.len(), k * n, "gemm: rhs length");
    assert_eq!(out.len(), m * n, "gemm: out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let threads = thread_budget(scratch.parallelism, scratch.cores, m * k * n);
    {
        let packed = scratch.pack_space(m * k);
        pack_panels(m, k, a, k, 1, packed);
    }
    let Scratch {
        packed,
        parallelism,
        reallocs,
        pool,
        cores,
    } = scratch;
    *reallocs += pool::run_gemm(pool, *parallelism, threads, *cores, k, m, n, packed, b, out);
}

/// `out = A · B^T` without materialising the transpose: `a` is `m × k`,
/// `b` is `n × k` (row-major, so row `j` of `b` *is* column `j` of
/// `B^T` — the transposed panel a packing step would otherwise build),
/// `out` is `m × n`. This is `δ · W^T` in the dense backward pass — `W`
/// is stored `in × out`. The kernel transposes `b` into the reusable
/// [`Scratch`] (pure data movement, zero steady-state allocations) and
/// runs the same register-tiled rank-1 micro-kernel as [`gemm`], so
/// every element accumulates in ascending-`k` FMA order: exactly
/// reproducible for every thread count, and matching
/// `a.matmul_naive(&b.transpose())` to tight tolerance.
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
pub fn gemm_nt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    scratch: &mut Scratch,
) {
    assert_eq!(a.len(), m * k, "gemm_nt: lhs length");
    assert_eq!(b.len(), n * k, "gemm_nt: rhs length");
    assert_eq!(out.len(), m * n, "gemm_nt: out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let threads = thread_budget(scratch.parallelism, scratch.cores, m * k * n);
    {
        let space = scratch.pack_space(m * k + k * n);
        let (packed, bt) = space.split_at_mut(m * k);
        pack_panels(m, k, a, k, 1, packed);
        // Transpose `b` (n × k) into `bt` (k × n): sequential writes,
        // strided reads. Data movement only — no arithmetic order
        // changes.
        for (s, btrow) in bt.chunks_exact_mut(n).enumerate() {
            for (j, d) in btrow.iter_mut().enumerate() {
                *d = b[j * k + s];
            }
        }
    }
    let Scratch {
        packed,
        parallelism,
        reallocs,
        pool,
        cores,
    } = scratch;
    let (packed_a, bt) = packed.split_at(m * k);
    *reallocs += pool::run_gemm(
        pool,
        *parallelism,
        threads,
        *cores,
        k,
        m,
        n,
        packed_a,
        bt,
        out,
    );
}

/// `out = A^T · B` without materialising the transpose: `a` is
/// `m × ca`, `b` is `m × cb`, `out` is `ca × cb`. This is `x^T · δ` in
/// the dense backward pass. Runs on the same register-tiled rank-1
/// micro-kernel as [`gemm`] with the shared dimension being the rows of
/// both operands; every element accumulates in ascending row order with
/// fused multiply-adds, so the result is exactly reproducible and
/// matches `a.transpose().matmul_naive(&b)` to tight tolerance.
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
pub fn gemm_tn(
    m: usize,
    ca: usize,
    cb: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    scratch: &mut Scratch,
) {
    assert_eq!(a.len(), m * ca, "gemm_tn: lhs length");
    assert_eq!(b.len(), m * cb, "gemm_tn: rhs length");
    assert_eq!(out.len(), ca * cb, "gemm_tn: out length");
    if ca == 0 || cb == 0 {
        return;
    }
    if m == 0 {
        out.fill(0.0);
        return;
    }
    let threads = thread_budget(scratch.parallelism, scratch.cores, m * ca * cb);
    {
        let packed = scratch.pack_space(ca * m);
        pack_panels(ca, m, a, 1, ca, packed);
    }
    let Scratch {
        packed,
        parallelism,
        reallocs,
        pool,
        cores,
    } = scratch;
    *reallocs += pool::run_gemm(
        pool,
        *parallelism,
        threads,
        *cores,
        m,
        ca,
        cb,
        packed,
        b,
        out,
    );
}

/// Fused dense forward: `z = x · W + bias` (bias broadcast over rows)
/// and `act_out = act(z)`, both written in a single output pass. `x` is
/// `m × k`, `w` is `k × n` (the layer's `in × out` weights), `bias` has
/// length `n`, `z` and `act_out` are `m × n`.
///
/// The matmul term runs on the same micro-kernel as [`gemm`] and the
/// bias is added once after the full accumulation, so `z` is bitwise
/// identical to the unfused `gemm` + row-broadcast sequence — across
/// batch sizes and thread counts.
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias_act(
    m: usize,
    k: usize,
    n: usize,
    x: &[f64],
    w: &[f64],
    bias: &[f64],
    z: &mut [f64],
    act_out: &mut [f64],
    act: fn(f64) -> f64,
    scratch: &mut Scratch,
) {
    assert_eq!(x.len(), m * k, "gemm_bias_act: input length");
    assert_eq!(w.len(), k * n, "gemm_bias_act: weight length");
    assert_eq!(bias.len(), n, "gemm_bias_act: bias length");
    assert_eq!(z.len(), m * n, "gemm_bias_act: z length");
    assert_eq!(act_out.len(), m * n, "gemm_bias_act: act length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for (zrow, arow) in z.chunks_exact_mut(n).zip(act_out.chunks_exact_mut(n)) {
            for (j, (zv, av)) in zrow.iter_mut().zip(arow.iter_mut()).enumerate() {
                *zv = bias[j];
                *av = act(bias[j]);
            }
        }
        return;
    }
    let threads = thread_budget(scratch.parallelism, scratch.cores, m * k * n);
    {
        let packed = scratch.pack_space(m * k);
        pack_panels(m, k, x, k, 1, packed);
    }
    let Scratch {
        packed,
        parallelism,
        reallocs,
        pool,
        cores,
    } = scratch;
    *reallocs += pool::run_fused(
        pool,
        *parallelism,
        threads,
        *cores,
        k,
        m,
        n,
        packed,
        w,
        bias,
        act,
        z,
        act_out,
    );
}

/// Matrix–vector product through the unrolled dot kernel: `out[i] =
/// dot(row_i(a), v)`. `a` is `m × k`, `v` has length `k`, `out` length
/// `m` (fully overwritten).
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
pub fn gemv(m: usize, k: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemv: matrix length");
    assert_eq!(v.len(), k, "gemv: vector length");
    assert_eq!(out.len(), m, "gemv: out length");
    if k == 0 {
        out.fill(0.0);
        return;
    }
    for (o, arow) in out.iter_mut().zip(a.chunks_exact(k)) {
        *o = dot_unrolled(arow, v);
    }
}

// lint:end_no_alloc
// lint:end-region(index)

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn mat(r: usize, c: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill (no RNG dependency).
        Matrix::from_fn(r, c, |i, j| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((i * 131 + j * 7) as u64);
            ((h % 2000) as f64 - 1000.0) / 250.0
        })
    }

    #[test]
    fn dot_unrolled_matches_plain_sum_loosely_and_is_deterministic() {
        let a: Vec<f64> = (0..37).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64 * 0.11).cos()).collect();
        let plain: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = dot_unrolled(&a, &b);
        assert!((got - plain).abs() < 1e-12);
        assert_eq!(got.to_bits(), dot_unrolled(&a, &b).to_bits());
    }

    #[test]
    fn gemm_matches_naive_reference_tightly() {
        for (m, k, n) in [
            (1, 1, 1),
            (1, 66, 128),
            (2, 3, 4),
            (3, 17, 16),
            (5, 8, 1),
            (9, 5, 7),
            (33, 17, 65),
            (64, 66, 128),
        ] {
            let a = mat(m, k, 1);
            let b = mat(k, n, 2);
            let mut out = Matrix::zeros(m, n);
            let mut scratch = Scratch::new();
            gemm(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                out.as_mut_slice(),
                &mut scratch,
            );
            // FMA accumulation differs from the naive mul-then-add only
            // by per-step rounding: tight tolerance, and a repeat call
            // must reproduce the result bit-for-bit.
            let want = a.matmul_naive(&b);
            let tol = 1e-13 * (1.0 + k as f64 * 16.0);
            assert!((&out - &want).max_abs() <= tol, "({m},{k},{n})");
            let mut again = Matrix::zeros(m, n);
            gemm(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                again.as_mut_slice(),
                &mut scratch,
            );
            assert_eq!(out, again, "({m},{k},{n}) not reproducible");
        }
    }

    #[test]
    fn gemm_is_bitwise_identical_across_thread_counts() {
        let (m, k, n) = (65, 33, 47);
        let a = mat(m, k, 3);
        let b = mat(k, n, 4);
        let run = |par: Parallelism| {
            let mut out = Matrix::zeros(m, n);
            let mut scratch = Scratch::with_parallelism(par);
            gemm(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                out.as_mut_slice(),
                &mut scratch,
            );
            out
        };
        let single = run(Parallelism::Single);
        for t in [1, 2, 3, 4, 7] {
            assert_eq!(single, run(Parallelism::Threads(t)), "{t} pooled");
            assert_eq!(single, run(Parallelism::SpawnThreads(t)), "{t} spawned");
        }
    }

    #[test]
    fn gemm_tn_matches_naive_transpose_product_tightly() {
        for (m, ca, cb) in [(1, 1, 1), (5, 3, 2), (31, 9, 13), (70, 40, 3), (16, 20, 33)] {
            let a = mat(m, ca, 5);
            let b = mat(m, cb, 6);
            let mut out = Matrix::zeros(ca, cb);
            let mut scratch = Scratch::new();
            gemm_tn(
                m,
                ca,
                cb,
                a.as_slice(),
                b.as_slice(),
                out.as_mut_slice(),
                &mut scratch,
            );
            let want = a.transpose().matmul_naive(&b);
            let tol = 1e-13 * (1.0 + m as f64 * 16.0);
            assert!((&out - &want).max_abs() <= tol, "({m},{ca},{cb})");
        }
    }

    #[test]
    fn gemm_nt_matches_naive_transpose_product() {
        for (m, k, n) in [(1, 1, 1), (4, 6, 3), (20, 11, 9)] {
            let a = mat(m, k, 7);
            let b = mat(n, k, 8);
            let mut out = Matrix::zeros(m, n);
            let mut scratch = Scratch::new();
            gemm_nt(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                out.as_mut_slice(),
                &mut scratch,
            );
            let want = a.matmul_naive(&b.transpose());
            assert!((&out - &want).max_abs() < 1e-10, "({m},{k},{n})");
        }
    }

    #[test]
    fn fused_forward_matches_unfused() {
        let (m, k, n) = (19, 13, 11);
        let x = mat(m, k, 9);
        let w = mat(k, n, 10);
        let bias: Vec<f64> = (0..n).map(|j| j as f64 * 0.25 - 1.0).collect();
        let mut z = Matrix::zeros(m, n);
        let mut a = Matrix::zeros(m, n);
        let mut scratch = Scratch::new();
        gemm_bias_act(
            m,
            k,
            n,
            x.as_slice(),
            w.as_slice(),
            &bias,
            z.as_mut_slice(),
            a.as_mut_slice(),
            |v| v.max(0.0),
            &mut scratch,
        );
        let mut want_z = Matrix::zeros(m, n);
        gemm(
            m,
            k,
            n,
            x.as_slice(),
            w.as_slice(),
            want_z.as_mut_slice(),
            &mut scratch,
        );
        let want_z = want_z.add_row_broadcast(&bias);
        assert_eq!(z, want_z);
        assert_eq!(a, want_z.map(|v| v.max(0.0)));
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let mut scratch = Scratch::new();
        // k = 0: product is the zero matrix.
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut out = Matrix::filled(3, 2, 7.0);
        gemm(
            3,
            0,
            2,
            a.as_slice(),
            b.as_slice(),
            out.as_mut_slice(),
            &mut scratch,
        );
        assert_eq!(out, Matrix::zeros(3, 2));
        // m = 0: nothing to write.
        let mut empty: [f64; 0] = [];
        gemm(
            0,
            4,
            5,
            &[],
            &mat(4, 5, 1).into_vec(),
            &mut empty,
            &mut scratch,
        );
        // k = 0 in the fused kernel: z is the broadcast bias.
        let bias = [1.5, -0.5];
        let mut z = Matrix::filled(3, 2, 9.0);
        let mut act = Matrix::filled(3, 2, 9.0);
        gemm_bias_act(
            3,
            0,
            2,
            &[],
            &[],
            &bias,
            z.as_mut_slice(),
            act.as_mut_slice(),
            |v| v.max(0.0),
            &mut scratch,
        );
        assert_eq!(z, Matrix::from_fn(3, 2, |_, j| bias[j]));
        assert_eq!(act, Matrix::from_fn(3, 2, |_, j| bias[j].max(0.0)));
    }

    #[test]
    fn scratch_reuse_allocates_once() {
        let (m, k, n) = (32, 20, 24);
        let a = mat(m, k, 11);
        let b = mat(k, n, 12);
        let mut out = Matrix::zeros(m, n);
        let mut scratch = Scratch::new();
        gemm(
            m,
            k,
            n,
            a.as_slice(),
            b.as_slice(),
            out.as_mut_slice(),
            &mut scratch,
        );
        let after_warmup = scratch.reallocs();
        for _ in 0..10 {
            gemm(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                out.as_mut_slice(),
                &mut scratch,
            );
        }
        assert_eq!(scratch.reallocs(), after_warmup, "steady state reallocated");
    }

    #[test]
    fn gemv_matches_matvec_semantics() {
        let a = mat(6, 9, 13);
        let v: Vec<f64> = (0..9).map(|i| i as f64 - 4.0).collect();
        let mut out = vec![0.0; 6];
        gemv(6, 9, a.as_slice(), &v, &mut out);
        for (i, o) in out.iter().enumerate() {
            let want = dot_unrolled(a.row(i), &v);
            assert_eq!(o.to_bits(), want.to_bits());
        }
    }
}
