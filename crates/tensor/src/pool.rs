//! Persistent deterministic compute pool — the threading engine behind
//! the parallel GEMM kernels.
//!
//! The original parallel kernels spawned and joined fresh scoped OS
//! threads on *every* call (`thread::scope` inside the row-block
//! splitters). That is correct and simple, but the spawn+join cost
//! (~tens of microseconds per call) dominates exactly where training
//! spends its time: the GRU's many small packed-gate GEMMs per
//! timestep, each barely above the parallelism threshold. This module
//! replaces spawn-per-call with a pool of long-lived workers parked on
//! a condvar behind a bounded spin, woken by an atomic epoch bump —
//! a dispatch costs a few microseconds instead of a few dozen.
//!
//! # Architecture
//!
//! * **One pool per [`Scratch`](crate::kernels::Scratch)**, lazily
//!   created on the first parallel dispatch and sized to
//!   `Parallelism::Threads(n) ⇒ min(n, cores) − 1` workers (the caller
//!   is the last thread). The clamp to the probed machine core count
//!   ([`machine_cores`]) is what a persistent pool buys over
//!   spawn-per-call: it never oversubscribes, because spinning workers
//!   on a smaller machine would time-slice against the caller. On a
//!   single core the pooled policy degrades to the inline kernel.
//!   Changing the policy drops the pool (workers join) and the next
//!   dispatch respawns it — nothing is global, nothing leaks past the
//!   owning scratch.
//! * **Copy-in / copy-back.** `unsafe` is banned workspace-wide, so the
//!   pool cannot hand caller-borrowed slices to `'static` worker
//!   threads. Instead the caller copies the packed panels and the right
//!   operand into pool-owned input buffers, workers compute their row
//!   blocks into per-worker staging buffers, and the caller copies the
//!   staging back into its output. The copies are pure `f64` moves —
//!   `memcpy` preserves every bit — and cost `O(kn + mn)` against the
//!   `O(mkn / threads)` compute the dispatch threshold guarantees.
//! * **Wakeup protocol.** The caller publishes a [`JobDesc`] under the
//!   control mutex, bumps the job epoch (mirrored in an atomic), and
//!   notifies. Workers spin briefly on the atomic epoch, then park on
//!   the condvar; on wakeup each computes row block `index + 1`
//!   (block 0 runs inline on the caller, straight into the caller's
//!   output buffer) and decrements the remaining-counter; the last one
//!   takes the control mutex (so the caller is either not yet waiting
//!   or already parked — no lost wakeups) and signals completion.
//! * **Determinism.** Row blocks are `n_rows.div_ceil(threads)` rounded
//!   up to the packing panel height [`IT`] — the *exact* partition the
//!   scoped-spawn path used, kept aligned to the panel boundaries of
//!   `pack_panels` so every block starts on a whole packed panel. Each
//!   block runs the same `rank1_tiles` walk on bit-identical inputs,
//!   so pooled, spawned and inline outputs are **bitwise identical**
//!   for every thread count. The spawn-per-call path survives as
//!   [`Parallelism::SpawnThreads`] — the benchmark baseline and the
//!   determinism oracle the property tests compare against.
//!
//! [`IT`]: crate::kernels — the register-tile height (8 rows).

use crate::kernels::{fused_rows, gemm_rows, Parallelism, IT};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::thread;

/// Iterations a worker spins on the epoch atomic before parking on the
/// condvar, and the caller spins on the remaining-counter before doing
/// the same. Long enough to catch the common back-to-back-GEMM cadence
/// of a training step, short enough not to burn a core while idle.
const SPIN_LIMIT: u32 = 1 << 14;

/// Machine core count, probed once per process. The pooled policy
/// clamps its thread budget to this (see
/// [`Scratch`](crate::kernels::Scratch)): spinning workers on an
/// oversubscribed machine time-slice against the caller, turning every
/// dispatch into lost scheduler quanta — the persistent pool can
/// afford to know the machine, where the legacy spawn-per-call path
/// never could. The probe steers scheduling only: the kernels are
/// bitwise identical for every thread count, so no score ever depends
/// on the value read here.
pub(crate) fn machine_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        // lint:allow(determinism, reason = "core-count probe steers pool scheduling only; kernel results are bitwise identical for every thread count (see the pool proptests)")
        thread::available_parallelism().map_or(1, usize::from)
    })
}

/// Stable worker count for the pooled policy on this machine: the
/// policy budget clamped to `cores`, minus the caller (who computes
/// block 0 inline). Deliberately independent of any per-call row
/// count, so the pool never churns (shutdown + respawn) between
/// differently-shaped dispatches.
fn pool_size(parallelism: Parallelism, cores: usize) -> usize {
    parallelism.threads().min(cores.max(1)).saturating_sub(1)
}

/// What one dispatch computes.
#[derive(Clone, Copy)]
enum JobKind {
    /// `out = packed · rhs` — the shared shape of `gemm`, `gemm_nt`
    /// (rhs pre-transposed by the caller) and `gemm_tn` (lhs packed
    /// column-major by the caller).
    Gemm,
    /// The fused dense forward: `z = packed · rhs + bias` row-broadcast
    /// and `a = act(z)`, both written in one pass.
    Fused {
        /// The activation applied element-wise to `z`.
        act: fn(f64) -> f64,
    },
}

/// One round of work, published under the control mutex.
#[derive(Clone, Copy)]
struct JobDesc {
    kind: JobKind,
    /// Shared (accumulation) dimension.
    steps: usize,
    /// Total output rows.
    n_rows: usize,
    /// Output row length (= rhs row stride).
    row_len: usize,
    /// Rows per block — the scoped-spawn partition, aligned to [`IT`].
    rows_per: usize,
    /// Number of non-empty row blocks (`≤ workers + 1`).
    n_blocks: usize,
}

impl JobDesc {
    /// Rows of block `block` (the final block may be short).
    fn block_rows(&self, block: usize) -> usize {
        self.rows_per.min(self.n_rows - block * self.rows_per)
    }
}

/// Pool-owned copies of the caller's operands for the current round.
#[derive(Default)]
struct Inputs {
    /// The packed left operand (`n_rows × steps`, panel layout).
    packed: Vec<f64>,
    /// The right operand (`steps × row_len`, row-major).
    rhs: Vec<f64>,
    /// The bias row for fused jobs (`row_len`), empty otherwise.
    bias: Vec<f64>,
}

/// Per-worker output staging for the current round.
#[derive(Default)]
struct Staging {
    z: Vec<f64>,
    a: Vec<f64>,
}

/// Dispatch/completion state, guarded by [`PoolShared::ctrl`].
struct Ctrl {
    epoch: u64,
    job: Option<JobDesc>,
    shutdown: bool,
}

/// State shared between the owning scratch and the workers.
struct PoolShared {
    ctrl: Mutex<Ctrl>,
    work_ready: Condvar,
    work_done: Condvar,
    /// Mirror of `ctrl.epoch` for the workers' lock-free spin phase.
    epoch: AtomicU64,
    /// Workers yet to acknowledge the current round.
    remaining: AtomicUsize,
    inputs: RwLock<Inputs>,
    staging: Vec<Mutex<Staging>>,
}

/// Recovers the guard from a poisoned lock. Workers hold these locks
/// only around plain `f64` arithmetic and copies, which cannot panic
/// mid-update in a way that leaves torn state a retry could observe —
/// and propagating the poison would turn one contained panic into a
/// poisoned-forever pool.
fn claim<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

impl PoolShared {
    fn lock_ctrl(&self) -> MutexGuard<'_, Ctrl> {
        claim(self.ctrl.lock())
    }
}

/// A persistent pool of GEMM workers (see the module docs). Owned by a
/// [`Scratch`](crate::kernels::Scratch); dropping it shuts the workers
/// down and joins them.
pub struct ComputePool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl ComputePool {
    /// Spawns a pool of `workers` parked worker threads. Returns `None`
    /// if the OS refuses a thread (the caller falls back to the scoped
    /// spawn path, which is the pre-pool status quo).
    fn with_workers(workers: usize) -> Option<Self> {
        let shared = Arc::new(PoolShared {
            ctrl: Mutex::new(Ctrl {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            epoch: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            inputs: RwLock::new(Inputs::default()),
            staging: (0..workers)
                .map(|_| Mutex::new(Staging::default()))
                .collect(),
        });
        let mut pool = Self {
            shared,
            handles: Vec::with_capacity(workers),
            workers,
        };
        for index in 0..workers {
            let shared = Arc::clone(&pool.shared);
            let spawned = thread::Builder::new()
                .name(format!("occusense-pool-{index}"))
                .spawn(move || worker_loop(&shared, index));
            match spawned {
                Ok(handle) => pool.handles.push(handle),
                Err(_) => {
                    // Partial spawn: shut down what exists and report
                    // failure — the dispatcher falls back to scoped
                    // spawning, never to a half-sized pool.
                    pool.shutdown();
                    return None;
                }
            }
        }
        Some(pool)
    }

    /// Number of worker threads (the caller is one more).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Lazily (re)builds the pool in `slot` for `workers` workers.
    fn ensure(slot: &mut Option<ComputePool>, workers: usize) -> Option<&ComputePool> {
        let stale = slot.as_ref().is_none_or(|p| p.workers != workers);
        if stale {
            // Drop (join) any old pool before spawning the new one.
            *slot = None;
            *slot = ComputePool::with_workers(workers);
        }
        slot.as_ref()
    }

    fn shutdown(&mut self) {
        {
            let mut ctrl = self.shared.lock_ctrl();
            ctrl.shutdown = true;
            ctrl.epoch += 1;
            self.shared.epoch.store(ctrl.epoch, Ordering::Release);
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// Runs one job: copies the operands in, publishes the round,
    /// computes block 0 inline into the caller's output, waits for the
    /// workers, and copies their staging blocks back. Returns the
    /// number of pool-buffer growth events (for the scratch's
    /// steady-state accounting).
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        job: JobDesc,
        packed: &[f64],
        rhs: &[f64],
        bias: &[f64],
        out_z: &mut [f64],
        mut out_a: Option<&mut [f64]>,
    ) -> u64 {
        let fused = matches!(job.kind, JobKind::Fused { .. });
        let mut grows = 0u64;
        {
            let mut inputs = claim(self.shared.inputs.write());
            grows += fill_from(&mut inputs.packed, packed);
            grows += fill_from(&mut inputs.rhs, rhs);
            grows += fill_from(&mut inputs.bias, bias);
        }
        // Size every worker's staging while the pool is quiescent, so
        // all growth happens here, on the caller, where it is counted.
        for (index, slot) in self.shared.staging.iter().enumerate() {
            let block = index + 1;
            if block >= job.n_blocks {
                break;
            }
            let len = job.block_rows(block) * job.row_len;
            let mut staging = claim(slot.lock());
            grows += ensure_len(&mut staging.z, len);
            if fused {
                grows += ensure_len(&mut staging.a, len);
            }
        }
        {
            let mut ctrl = self.shared.lock_ctrl();
            ctrl.job = Some(job);
            ctrl.epoch += 1;
            self.shared.remaining.store(self.workers, Ordering::Release);
            self.shared.epoch.store(ctrl.epoch, Ordering::Release);
        }
        self.shared.work_ready.notify_all();

        // Block 0 inline — written straight into the caller's buffers,
        // no staging round-trip.
        compute_block(&job, 0, packed, rhs, bias, out_z, &mut out_a);

        // Completion wait: spin (the workers' blocks take about as long
        // as our own block 0 just did), then park on the condvar.
        let mut spins = 0u32;
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins >= SPIN_LIMIT {
                let mut ctrl = self.shared.lock_ctrl();
                while self.shared.remaining.load(Ordering::Acquire) != 0 {
                    ctrl = claim(self.shared.work_done.wait(ctrl));
                }
                break;
            }
            std::hint::spin_loop();
        }

        // Copy the workers' blocks back into the caller's output.
        copy_back(&self.shared.staging, &job, out_z, out_a);
        grows
    }
}

impl Drop for ComputePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Grows-and-fills `dst` from `src`, returning 1 if capacity grew.
fn fill_from(dst: &mut Vec<f64>, src: &[f64]) -> u64 {
    let grew = u64::from(src.len() > dst.capacity());
    dst.clear();
    dst.extend_from_slice(src);
    grew
}

/// Resizes `v` to exactly `len`, returning 1 if capacity grew.
fn ensure_len(v: &mut Vec<f64>, len: usize) -> u64 {
    let grew = u64::from(len > v.capacity());
    v.resize(len, 0.0);
    grew
}

// The block kernels and the copy-back below are the pool's hot path:
// bounds are governed by the JobDesc invariants (every block slice is
// `block_rows · row_len` long inside buffers sized from the same
// JobDesc), and the dispatcher must stay allocation-free outside the
// counted growth helpers above.
// lint:allow-region(index, reason = "block offsets are products of JobDesc fields validated at dispatch; checked forms defeat the copy/kernel vectorisation")
// lint:no_alloc

/// Computes row block `block` of `job` into `z` (and `a` for fused
/// jobs). `z`/`a` hold exactly the block (staging) or the whole output
/// with the block at its offset (the caller's inline block 0).
fn compute_block(
    job: &JobDesc,
    block: usize,
    packed: &[f64],
    rhs: &[f64],
    bias: &[f64],
    z: &mut [f64],
    a: &mut Option<&mut [f64]>,
) {
    let first_row = block * job.rows_per;
    let rows = job.block_rows(block);
    match job.kind {
        JobKind::Gemm => {
            let chunk = &mut z[..rows * job.row_len];
            gemm_rows(job.steps, job.row_len, first_row, rows, packed, rhs, chunk);
        }
        JobKind::Fused { act } => {
            if let Some(a) = a.as_deref_mut() {
                let zc = &mut z[..rows * job.row_len];
                let ac = &mut a[..rows * job.row_len];
                fused_rows(
                    job.steps,
                    job.row_len,
                    first_row,
                    rows,
                    packed,
                    rhs,
                    bias,
                    act,
                    zc,
                    ac,
                );
            }
        }
    }
}

/// Copies every worker-computed block from staging into the caller's
/// output buffers.
fn copy_back(
    staging: &[Mutex<Staging>],
    job: &JobDesc,
    out_z: &mut [f64],
    mut out_a: Option<&mut [f64]>,
) {
    for (index, slot) in staging.iter().enumerate() {
        let block = index + 1;
        if block >= job.n_blocks {
            break;
        }
        let offset = block * job.rows_per * job.row_len;
        let len = job.block_rows(block) * job.row_len;
        let st = claim(slot.lock());
        out_z[offset..offset + len].copy_from_slice(&st.z[..len]);
        if let Some(a) = out_a.as_deref_mut() {
            a[offset..offset + len].copy_from_slice(&st.a[..len]);
        }
    }
}

/// The worker body: spin on the epoch atomic, park on the condvar,
/// compute block `index + 1` of the published job into this worker's
/// staging, acknowledge.
fn worker_loop(shared: &PoolShared, index: usize) {
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        while shared.epoch.load(Ordering::Acquire) == seen && spins < SPIN_LIMIT {
            spins += 1;
            std::hint::spin_loop();
        }
        let (epoch, job, shutdown) = {
            let mut ctrl = shared.lock_ctrl();
            while ctrl.epoch == seen && !ctrl.shutdown {
                ctrl = claim(shared.work_ready.wait(ctrl));
            }
            (ctrl.epoch, ctrl.job, ctrl.shutdown)
        };
        if shutdown {
            return;
        }
        seen = epoch;
        if let Some(job) = job {
            run_worker_block(shared, index, &job);
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last acknowledgement: take the control mutex so the
            // caller is either not yet waiting (and will observe the
            // zero) or already parked (and will be notified) — never
            // in between. This is the lost-wakeup guard.
            drop(shared.lock_ctrl());
            shared.work_done.notify_all();
        }
    }
}

/// Computes this worker's block (if the job has one for it) into its
/// staging buffers.
fn run_worker_block(shared: &PoolShared, index: usize, job: &JobDesc) {
    let block = index + 1;
    if block >= job.n_blocks {
        return;
    }
    let inputs = claim(shared.inputs.read());
    if let Some(slot) = shared.staging.get(index) {
        let mut staging = claim(slot.lock());
        let Staging { z, a } = &mut *staging;
        let mut a_opt = match job.kind {
            JobKind::Fused { .. } => Some(a.as_mut_slice()),
            JobKind::Gemm => None,
        };
        compute_block(
            job,
            block,
            &inputs.packed,
            &inputs.rhs,
            &inputs.bias,
            z,
            &mut a_opt,
        );
    }
}

/// The scoped-spawn legacy splitter: one fresh thread per row block,
/// joined before returning. Preserved as [`Parallelism::SpawnThreads`]
/// — the pre-pool baseline the benches and the bitwise-identity
/// property tests compare the pool against.
fn spawn_row_blocks<F>(out: &mut [f64], row_len: usize, rows_per: usize, body: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    thread::scope(|s| {
        for (t, chunk) in out.chunks_mut(rows_per * row_len).enumerate() {
            let body = &body;
            s.spawn(move || body(t * rows_per, chunk));
        }
    });
}

/// Two-output variant of [`spawn_row_blocks`] for the fused forward.
fn spawn_row_blocks2<F>(z: &mut [f64], a: &mut [f64], row_len: usize, rows_per: usize, body: F)
where
    F: Fn(usize, &mut [f64], &mut [f64]) + Sync,
{
    thread::scope(|s| {
        for (t, (zc, ac)) in z
            .chunks_mut(rows_per * row_len)
            .zip(a.chunks_mut(rows_per * row_len))
            .enumerate()
        {
            let body = &body;
            s.spawn(move || body(t * rows_per, zc, ac));
        }
    });
}

/// The scoped-spawn partition: rows per block for `threads` blocks,
/// rounded up to the packing panel height so block boundaries coincide
/// with packed-panel boundaries. The pooled path uses the *same*
/// arithmetic — this is the heart of the bitwise-identity argument.
fn partition_rows(n_rows: usize, threads: usize) -> usize {
    n_rows.div_ceil(threads).next_multiple_of(IT)
}

/// Runs a single-output row-block job (`out = packed · rhs`) on the
/// path selected by `parallelism` and the budgeted `threads`:
/// inline (`threads ≤ 1`), scoped spawn-per-call
/// ([`Parallelism::SpawnThreads`] or a pool that failed to spawn), or
/// the persistent pool, sized by the policy budget clamped to `cores`.
/// All three are bitwise identical. Returns the pool-buffer growth
/// events to be added to the scratch counter.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_gemm(
    pool: &mut Option<ComputePool>,
    parallelism: Parallelism,
    threads: usize,
    cores: usize,
    steps: usize,
    n_rows: usize,
    row_len: usize,
    packed: &[f64],
    rhs: &[f64],
    out: &mut [f64],
) -> u64 {
    if n_rows == 0 || row_len == 0 {
        return 0;
    }
    let threads = threads.min(n_rows);
    if threads <= 1 {
        gemm_rows(steps, row_len, 0, n_rows, packed, rhs, out);
        return 0;
    }
    let rows_per = partition_rows(n_rows, threads);
    let n_blocks = n_rows.div_ceil(rows_per);
    let spawn = |out: &mut [f64]| {
        spawn_row_blocks(out, row_len, rows_per, |first_row, chunk| {
            let rows = chunk.len() / row_len;
            gemm_rows(steps, row_len, first_row, rows, packed, rhs, chunk);
        });
    };
    if matches!(parallelism, Parallelism::SpawnThreads(_)) {
        spawn(out);
        return 0;
    }
    match ComputePool::ensure(pool, pool_size(parallelism, cores)) {
        Some(p) => p.run(
            JobDesc {
                kind: JobKind::Gemm,
                steps,
                n_rows,
                row_len,
                rows_per,
                n_blocks,
            },
            packed,
            rhs,
            &[],
            out,
            None,
        ),
        None => {
            spawn(out);
            0
        }
    }
}

/// Two-output (fused forward) variant of [`run_gemm`]: `z = packed ·
/// rhs + bias`, `a = act(z)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_fused(
    pool: &mut Option<ComputePool>,
    parallelism: Parallelism,
    threads: usize,
    cores: usize,
    steps: usize,
    n_rows: usize,
    row_len: usize,
    packed: &[f64],
    rhs: &[f64],
    bias: &[f64],
    act: fn(f64) -> f64,
    z: &mut [f64],
    a: &mut [f64],
) -> u64 {
    if n_rows == 0 || row_len == 0 {
        return 0;
    }
    let threads = threads.min(n_rows);
    if threads <= 1 {
        fused_rows(steps, row_len, 0, n_rows, packed, rhs, bias, act, z, a);
        return 0;
    }
    let rows_per = partition_rows(n_rows, threads);
    let n_blocks = n_rows.div_ceil(rows_per);
    let spawn = |z: &mut [f64], a: &mut [f64]| {
        spawn_row_blocks2(z, a, row_len, rows_per, |first_row, zc, ac| {
            let rows = zc.len() / row_len;
            fused_rows(
                steps, row_len, first_row, rows, packed, rhs, bias, act, zc, ac,
            );
        });
    };
    if matches!(parallelism, Parallelism::SpawnThreads(_)) {
        spawn(z, a);
        return 0;
    }
    match ComputePool::ensure(pool, pool_size(parallelism, cores)) {
        Some(p) => p.run(
            JobDesc {
                kind: JobKind::Fused { act },
                steps,
                n_rows,
                row_len,
                rows_per,
                n_blocks,
            },
            packed,
            rhs,
            bias,
            z,
            Some(a),
        ),
        None => {
            spawn(z, a);
            0
        }
    }
}

// lint:end_no_alloc
// lint:end-region(index)

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gemm, gemm_bias_act, Scratch};
    use crate::Matrix;

    fn mat(r: usize, c: usize, seed: u64) -> Matrix {
        Matrix::from_fn(r, c, |i, j| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((i * 131 + j * 7) as u64);
            ((h % 2000) as f64 - 1000.0) / 250.0
        })
    }

    /// A scratch that believes the machine has plenty of cores, so the
    /// pool protocol is exercised even on small CI runners (the clamp
    /// itself is tested separately).
    fn unclamped(par: Parallelism) -> Scratch {
        let mut scratch = Scratch::with_parallelism(par);
        scratch.set_machine_cores(16);
        scratch
    }

    fn run_gemm_with(par: Parallelism, m: usize, k: usize, n: usize) -> Matrix {
        let a = mat(m, k, 21);
        let b = mat(k, n, 22);
        let mut out = Matrix::zeros(m, n);
        let mut scratch = unclamped(par);
        gemm(
            m,
            k,
            n,
            a.as_slice(),
            b.as_slice(),
            out.as_mut_slice(),
            &mut scratch,
        );
        out
    }

    #[test]
    fn pooled_gemm_is_bitwise_identical_to_inline_and_spawn() {
        // Shapes straddling the parallelism threshold and the IT/JT
        // tile edges.
        for (m, k, n) in [(64, 32, 32), (65, 33, 47), (128, 66, 128), (40, 40, 41)] {
            let inline = run_gemm_with(Parallelism::Single, m, k, n);
            for t in 1..=8 {
                let spawned = run_gemm_with(Parallelism::SpawnThreads(t), m, k, n);
                let pooled = run_gemm_with(Parallelism::Threads(t), m, k, n);
                assert_eq!(inline, spawned, "spawn {t} threads ({m},{k},{n})");
                assert_eq!(inline, pooled, "pool {t} threads ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn pooled_fused_forward_is_bitwise_identical_to_inline_and_spawn() {
        let (m, k, n) = (72, 40, 48);
        let x = mat(m, k, 31);
        let w = mat(k, n, 32);
        let bias: Vec<f64> = (0..n).map(|j| (j as f64 * 0.3).sin()).collect();
        let run = |par: Parallelism| {
            let mut z = Matrix::zeros(m, n);
            let mut a = Matrix::zeros(m, n);
            let mut scratch = unclamped(par);
            gemm_bias_act(
                m,
                k,
                n,
                x.as_slice(),
                w.as_slice(),
                &bias,
                z.as_mut_slice(),
                a.as_mut_slice(),
                |v| v.max(0.0),
                &mut scratch,
            );
            (z, a)
        };
        let inline = run(Parallelism::Single);
        for t in [2, 3, 5, 8] {
            assert_eq!(inline, run(Parallelism::SpawnThreads(t)), "spawn {t}");
            assert_eq!(inline, run(Parallelism::Threads(t)), "pool {t}");
        }
    }

    #[test]
    fn pool_is_lazy_and_sized_to_the_policy() {
        let mut scratch = unclamped(Parallelism::Threads(4));
        assert_eq!(scratch.pool_workers(), None, "pool must be lazy");
        // Below the flops threshold: still no pool.
        let a = mat(4, 4, 1);
        let b = mat(4, 4, 2);
        let mut out = Matrix::zeros(4, 4);
        gemm(
            4,
            4,
            4,
            a.as_slice(),
            b.as_slice(),
            out.as_mut_slice(),
            &mut scratch,
        );
        assert_eq!(scratch.pool_workers(), None, "tiny GEMM spawned a pool");
        // Above it: 3 workers for Threads(4).
        let _ = run_in(&mut scratch);
        assert_eq!(scratch.pool_workers(), Some(3));
    }

    fn run_in(scratch: &mut Scratch) -> Matrix {
        let (m, k, n) = (96, 48, 48);
        let a = mat(m, k, 3);
        let b = mat(k, n, 4);
        let mut out = Matrix::zeros(m, n);
        gemm(
            m,
            k,
            n,
            a.as_slice(),
            b.as_slice(),
            out.as_mut_slice(),
            scratch,
        );
        out
    }

    #[test]
    fn pooled_budget_clamps_to_machine_cores() {
        // On a one-core machine the pooled policy must not spawn
        // workers at all — every dispatch runs inline.
        let mut scratch = Scratch::with_parallelism(Parallelism::Threads(4));
        scratch.set_machine_cores(1);
        let one_core = run_in(&mut scratch);
        assert_eq!(
            scratch.pool_workers(),
            None,
            "an oversubscribed pool must not spawn"
        );
        // Two cores: caller plus exactly one worker, whatever the
        // policy asks for.
        scratch.set_machine_cores(2);
        let two_cores = run_in(&mut scratch);
        assert_eq!(scratch.pool_workers(), Some(1));
        // A roomy machine grants the full budget (ensure() resizes the
        // undersized pool in place).
        scratch.set_machine_cores(16);
        let full = run_in(&mut scratch);
        assert_eq!(scratch.pool_workers(), Some(3));
        // The clamp steers scheduling only — never the bits.
        assert_eq!(one_core, two_cores);
        assert_eq!(one_core, full);
        // The legacy spawn baseline is never clamped: it reproduces
        // the pre-pool behaviour bit for bit, workers or not.
        let mut spawn = Scratch::with_parallelism(Parallelism::SpawnThreads(4));
        spawn.set_machine_cores(1);
        assert_eq!(one_core, run_in(&mut spawn));
        assert_eq!(spawn.pool_workers(), None);
    }

    #[test]
    fn pool_shuts_down_and_reinitialises_across_policy_changes() {
        let mut scratch = unclamped(Parallelism::Threads(4));
        let with4 = run_in(&mut scratch);
        assert_eq!(scratch.pool_workers(), Some(3));
        // Shrinking the policy drops the old pool (workers join) and
        // lazily respawns a smaller one.
        scratch.set_parallelism(Parallelism::Threads(2));
        assert_eq!(
            scratch.pool_workers(),
            None,
            "policy change must drop the pool"
        );
        let with2 = run_in(&mut scratch);
        assert_eq!(scratch.pool_workers(), Some(1));
        assert_eq!(with4, with2, "thread count changed the bits");
        // Going single-threaded parks nothing: the pool is gone.
        scratch.set_parallelism(Parallelism::Single);
        assert_eq!(scratch.pool_workers(), None);
        let single = run_in(&mut scratch);
        assert_eq!(scratch.pool_workers(), None);
        assert_eq!(with4, single);
        // And back up again.
        scratch.set_parallelism(Parallelism::Threads(3));
        scratch.set_machine_cores(16);
        let with3 = run_in(&mut scratch);
        assert_eq!(scratch.pool_workers(), Some(2));
        assert_eq!(with4, with3);
    }

    #[test]
    fn cloned_scratch_does_not_share_or_steal_the_pool() {
        let mut scratch = unclamped(Parallelism::Threads(4));
        let base = run_in(&mut scratch);
        assert_eq!(scratch.pool_workers(), Some(3));
        let mut cloned = scratch.clone();
        assert_eq!(cloned.pool_workers(), None, "clones start pool-less");
        let from_clone = run_in(&mut cloned);
        assert_eq!(base, from_clone);
        // The original still owns its original pool.
        assert_eq!(scratch.pool_workers(), Some(3));
    }

    #[test]
    fn pooled_steady_state_is_allocation_free() {
        let mut scratch = unclamped(Parallelism::Threads(4));
        let _ = run_in(&mut scratch);
        let warm = scratch.reallocs();
        assert!(warm > 0, "warm-up should have grown pool buffers");
        for _ in 0..10 {
            let _ = run_in(&mut scratch);
        }
        assert_eq!(
            scratch.reallocs(),
            warm,
            "pooled steady state grew a buffer"
        );
    }

    #[test]
    fn many_rounds_through_one_pool_stay_correct() {
        // Alternating shapes and job kinds through the same pool: the
        // epoch protocol must never cross wires between rounds.
        let mut scratch = unclamped(Parallelism::Threads(3));
        let mut single = Scratch::new();
        for round in 0..25 {
            let (m, k, n) = if round % 2 == 0 {
                (64, 32, 40)
            } else {
                (96, 48, 24)
            };
            let a = mat(m, k, round);
            let b = mat(k, n, round + 100);
            let mut out = Matrix::zeros(m, n);
            let mut want = Matrix::zeros(m, n);
            gemm(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                out.as_mut_slice(),
                &mut scratch,
            );
            gemm(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                want.as_mut_slice(),
                &mut single,
            );
            assert_eq!(out, want, "round {round}");
        }
    }
}
