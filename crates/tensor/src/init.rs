//! Seeded random matrix initialisers.
//!
//! Every stochastic component in the workspace takes an explicit seed so
//! that experiments are bit-for-bit reproducible; these helpers are the
//! single place where random matrices are created (network weights, random
//! projections in tests).

use crate::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Draws every element from `U(lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
///
/// # Example
///
/// ```
/// use occusense_tensor::init;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let m = init::uniform(2, 3, -1.0, 1.0, &mut rng);
/// assert!(m.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
/// ```
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Matrix {
    assert!(lo < hi, "uniform: lo {lo} must be < hi {hi}");
    let dist = Uniform::new(lo, hi);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| dist.sample(rng)).collect(),
    )
}

/// Draws every element from `N(mean, std^2)` using the Box–Muller transform.
///
/// # Panics
///
/// Panics if `std < 0`.
pub fn gaussian(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut impl Rng) -> Matrix {
    assert!(std >= 0.0, "gaussian: std must be non-negative, got {std}");
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| mean + std * standard_normal(rng))
            .collect(),
    )
}

/// Draws a single standard-normal sample using the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid u1 == 0 which would give ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suits sigmoid/tanh output layers.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    uniform(fan_in, fan_out, -a, a, rng)
}

/// Kaiming/He Gaussian initialisation: `N(0, 2 / fan_in)`. Suits ReLU
/// hidden layers, which is what the paper's MLP uses.
pub fn kaiming_gaussian(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    gaussian(fan_in, fan_out, 0.0, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(20, 20, -0.5, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        let b = uniform(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        let c = uniform(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = gaussian(100, 100, 3.0, 2.0, &mut rng);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / m.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn gaussian_zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = gaussian(3, 3, 5.0, 0.0, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x == 5.0));
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(9);
        let small = xavier_uniform(4, 4, &mut rng);
        let big = xavier_uniform(1000, 1000, &mut rng);
        assert!(small.max_abs() > big.max_abs());
        assert!(big.max_abs() <= (6.0f64 / 2000.0).sqrt());
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = kaiming_gaussian(200, 50, &mut rng);
        let std = (m.as_slice().iter().map(|x| x * x).sum::<f64>() / m.len() as f64).sqrt();
        let expected = (2.0f64 / 200.0).sqrt();
        assert!(
            (std - expected).abs() / expected < 0.15,
            "std {std} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn uniform_rejects_inverted_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = uniform(1, 1, 1.0, 0.0, &mut rng);
    }
}
