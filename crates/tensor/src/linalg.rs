//! Dense decompositions: Householder QR and least squares.
//!
//! Used by the OLS baseline (`occusense-baselines`) and by the ADF test
//! regressions (`occusense-stats`), both of which solve overdetermined
//! systems `min ||A x - b||` with potentially ill-conditioned design
//! matrices, so we use QR rather than normal equations.

use crate::{Matrix, ShapeError};
use std::error::Error;
use std::fmt;

/// Error returned by [`least_squares`] when the design matrix is rank
/// deficient (some diagonal element of `R` is numerically zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankDeficientError {
    col: usize,
}

impl RankDeficientError {
    /// Index of the first column at which the factorisation lost rank.
    pub fn col(&self) -> usize {
        self.col
    }
}

impl fmt::Display for RankDeficientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is rank deficient at column {}", self.col)
    }
}

impl Error for RankDeficientError {}

/// Result of a thin Householder QR factorisation `A = Q R` with
/// `A: m x n (m >= n)`, `Q: m x n` orthonormal, `R: n x n` upper triangular.
#[derive(Debug, Clone, PartialEq)]
pub struct Qr {
    /// Orthonormal factor (thin, `m x n`).
    pub q: Matrix,
    /// Upper-triangular factor (`n x n`).
    pub r: Matrix,
}

/// Computes the thin QR decomposition of `a` using Householder reflections.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a` has fewer rows than columns.
///
/// # Example
///
/// ```
/// use occusense_tensor::{Matrix, linalg};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let qr = linalg::qr(&a)?;
/// let back = qr.q.matmul(&qr.r);
/// assert!((&back - &a).max_abs() < 1e-12);
/// # Ok::<(), occusense_tensor::ShapeError>(())
/// ```
pub fn qr(a: &Matrix) -> Result<Qr, ShapeError> {
    let (m, n) = a.shape();
    if m < n {
        return Err(ShapeError::new("qr", a.shape(), a.shape()));
    }
    // Work on a copy of A; accumulate the reflectors into an m x m Q lazily
    // by applying them to the identity restricted to the first n columns.
    let mut r = a.clone();
    // Store reflector vectors to build Q afterwards.
    let mut reflectors: Vec<Vec<f64>> = Vec::with_capacity(n);

    for k in 0..n {
        // Build the Householder vector for column k, rows k..m.
        let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        let alpha = -v[0].signum() * crate::vecops::norm(&v);
        if alpha.abs() > 0.0 {
            v[0] -= alpha;
        }
        let vnorm = crate::vecops::norm(&v);
        if vnorm > 0.0 {
            for x in &mut v {
                *x /= vnorm;
            }
            // Apply H = I - 2 v v^T to R[k.., k..].
            for j in k..n {
                let mut s = 0.0;
                for (i, vi) in v.iter().enumerate() {
                    s += vi * r[(k + i, j)];
                }
                s *= 2.0;
                for (i, vi) in v.iter().enumerate() {
                    r[(k + i, j)] -= s * vi;
                }
            }
        }
        reflectors.push(v);
    }

    // Build thin Q by applying the reflectors in reverse order to the first
    // n columns of the identity.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        q[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &reflectors[k];
        if crate::vecops::norm(v) == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut s = 0.0;
            for (i, vi) in v.iter().enumerate() {
                s += vi * q[(k + i, j)];
            }
            s *= 2.0;
            for (i, vi) in v.iter().enumerate() {
                q[(k + i, j)] -= s * vi;
            }
        }
    }

    // Zero the strictly-lower part of the top n x n block of R for a clean
    // upper-triangular factor.
    let mut r_out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_out[(i, j)] = r[(i, j)];
        }
    }

    Ok(Qr { q, r: r_out })
}

/// Solves the upper-triangular system `R x = b` by back substitution.
///
/// # Errors
///
/// Returns [`RankDeficientError`] if a diagonal entry is numerically zero
/// relative to the largest diagonal entry.
///
/// # Panics
///
/// Panics if `r` is not square or `b.len() != r.rows()`.
pub fn solve_upper_triangular(r: &Matrix, b: &[f64]) -> Result<Vec<f64>, RankDeficientError> {
    let n = r.rows();
    assert_eq!(r.cols(), n, "solve_upper_triangular: R must be square");
    assert_eq!(b.len(), n, "solve_upper_triangular: dimension mismatch");
    let diag_max = (0..n).map(|i| r[(i, i)].abs()).fold(0.0f64, f64::max);
    let tol = diag_max * 1e-12;
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in i + 1..n {
            s -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d.abs() <= tol {
            return Err(RankDeficientError { col: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves the least-squares problem `min_x ||A x - b||_2` via QR.
///
/// # Errors
///
/// Returns [`LeastSquaresError`] if `A` has fewer rows than columns, if
/// `b.len() != A.rows()`, or if `A` is rank deficient.
///
/// # Example
///
/// ```
/// use occusense_tensor::{Matrix, linalg};
///
/// // Fit y = 2x + 1 exactly through three points.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let x = linalg::least_squares(&a, &[1.0, 3.0, 5.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-10);
/// assert!((x[1] - 2.0).abs() < 1e-10);
/// # Ok::<(), occusense_tensor::linalg::LeastSquaresError>(())
/// ```
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LeastSquaresError> {
    if b.len() != a.rows() {
        return Err(LeastSquaresError::Shape(ShapeError::new(
            "least_squares",
            a.shape(),
            (b.len(), 1),
        )));
    }
    let qr = qr(a).map_err(LeastSquaresError::Shape)?;
    // x solves R x = Q^T b.
    let qtb = qr.q.transpose().matvec(b);
    solve_upper_triangular(&qr.r, &qtb).map_err(LeastSquaresError::RankDeficient)
}

/// Error returned by [`least_squares`].
#[derive(Debug, Clone, PartialEq)]
pub enum LeastSquaresError {
    /// The system shape is invalid (underdetermined or mismatched lengths).
    Shape(ShapeError),
    /// The design matrix is rank deficient.
    RankDeficient(RankDeficientError),
}

impl fmt::Display for LeastSquaresError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeastSquaresError::Shape(e) => write!(f, "least squares: {e}"),
            LeastSquaresError::RankDeficient(e) => write!(f, "least squares: {e}"),
        }
    }
}

impl Error for LeastSquaresError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LeastSquaresError::Shape(e) => Some(e),
            LeastSquaresError::RankDeficient(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.0, 3.5, 1.0],
            &[-1.0, 0.2, 2.0],
            &[4.0, 1.0, -0.5],
        ]);
        let f = qr(&a).expect("m >= n");
        let back = f.q.matmul(&f.r);
        assert!((&back - &a).max_abs() < 1e-10);
    }

    #[test]
    fn qr_q_is_orthonormal() {
        let a = Matrix::from_fn(6, 3, |r, c| {
            ((r * 3 + c) as f64).sin() + 2.0 * (r == c) as u8 as f64
        });
        let f = qr(&a).expect("m >= n");
        let qtq = f.q.transpose().matmul(&f.q);
        let diff = &qtq - &Matrix::identity(3);
        assert!(diff.max_abs() < 1e-10);
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let a = Matrix::from_fn(5, 4, |r, c| ((r + 2 * c) as f64).cos());
        let f = qr(&a).expect("m >= n");
        for i in 1..4 {
            for j in 0..i {
                assert_eq!(f.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_rejects_underdetermined() {
        assert!(qr(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn least_squares_exact_fit() {
        // y = 3 - 2x
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [3.0, 1.0, -1.0, -3.0];
        let x = least_squares(&a, &b).expect("full rank");
        approx(x[0], 3.0, 1e-10);
        approx(x[1], -2.0, 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        // Residual must be orthogonal to the column space: check normal eqs.
        let a = Matrix::from_rows(&[
            &[1.0, 0.1],
            &[1.0, 1.2],
            &[1.0, 1.9],
            &[1.0, 3.1],
            &[1.0, 4.0],
        ]);
        let b = [0.9, 3.2, 4.9, 7.1, 9.2];
        let x = least_squares(&a, &b).expect("full rank");
        let pred = a.matvec(&x);
        let resid: Vec<f64> = b.iter().zip(&pred).map(|(y, p)| y - p).collect();
        let at_r = a.transpose().matvec(&resid);
        assert!(crate::vecops::norm(&at_r) < 1e-9);
    }

    #[test]
    fn least_squares_detects_rank_deficiency() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let err = least_squares(&a, &[1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(err, LeastSquaresError::RankDeficient(_)));
    }

    #[test]
    fn least_squares_rejects_bad_rhs_length() {
        let a = Matrix::zeros(3, 2);
        let err = least_squares(&a, &[1.0]).unwrap_err();
        assert!(matches!(err, LeastSquaresError::Shape(_)));
    }

    #[test]
    fn solve_upper_triangular_known_system() {
        let r = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let x = solve_upper_triangular(&r, &[5.0, 8.0]).expect("full rank");
        approx(x[1], 2.0, 1e-12);
        approx(x[0], 1.5, 1e-12);
    }

    #[test]
    fn solve_upper_triangular_zero_diag_errors() {
        let r = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        let err = solve_upper_triangular(&r, &[1.0, 1.0]).unwrap_err();
        assert_eq!(err.col(), 1);
    }

    #[test]
    fn errors_display() {
        let e = RankDeficientError { col: 3 };
        assert!(e.to_string().contains("column 3"));
        let ls = LeastSquaresError::RankDeficient(e);
        assert!(ls.to_string().contains("rank deficient"));
    }
}
