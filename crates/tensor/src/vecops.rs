//! Slice-level numeric helpers shared across the workspace.
//!
//! These free functions operate on `&[f64]` so that callers (the statistics
//! crate, the channel model, the metrics code) do not need to wrap plain
//! buffers in [`crate::Matrix`] just to compute a mean or a dot product.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use occusense_tensor::vecops::dot;
/// assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance (divides by `n`); `0.0` for slices shorter than 1.
pub fn variance(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Sample variance (divides by `n - 1`); `0.0` for slices shorter than 2.
pub fn sample_variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Minimum value; `f64::NAN` for an empty slice.
pub fn min(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum value; `f64::NAN` for an empty slice.
pub fn max(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::NAN, f64::max)
}

/// Covariance of two equal-length slices (population, divides by `n`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn covariance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "covariance: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    if a.is_empty() {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / a.len() as f64
}

/// In-place elementwise `a += k * b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: &mut [f64], k: f64, b: &[f64]) {
    assert_eq!(
        a.len(),
        b.len(),
        "axpy: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    for (x, &y) in a.iter_mut().zip(b) {
        *x += k * y;
    }
}

/// First difference `a[t] - a[t-1]`; empty for slices shorter than 2.
pub fn diff(a: &[f64]) -> Vec<f64> {
    a.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Numerically stable logistic sigmoid `1 / (1 + e^-x)`.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn dot_and_norm() {
        approx(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        approx(norm(&[3.0, 4.0]), 5.0);
        approx(norm(&[]), 0.0);
    }

    #[test]
    fn mean_variance_std() {
        approx(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        approx(variance(&[1.0, 2.0, 3.0, 4.0]), 1.25);
        approx(sample_variance(&[1.0, 2.0, 3.0, 4.0]), 5.0 / 3.0);
        approx(std_dev(&[2.0, 2.0]), 0.0);
        approx(mean(&[]), 0.0);
        approx(variance(&[5.0]), 0.0);
        approx(sample_variance(&[5.0]), 0.0);
    }

    #[test]
    fn min_max_values() {
        approx(min(&[3.0, -1.0, 2.0]), -1.0);
        approx(max(&[3.0, -1.0, 2.0]), 3.0);
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
    }

    #[test]
    fn covariance_known_value() {
        // cov(x, x) == var(x)
        let x = [1.0, 2.0, 3.0, 4.0];
        approx(covariance(&x, &x), variance(&x));
        // Perfectly anti-correlated.
        let y = [4.0, 3.0, 2.0, 1.0];
        approx(covariance(&x, &y), -variance(&x));
        approx(covariance(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = [1.0, 1.0];
        axpy(&mut a, 2.0, &[10.0, 20.0]);
        assert_eq!(a, [21.0, 41.0]);
    }

    #[test]
    fn diff_first_difference() {
        assert_eq!(diff(&[1.0, 4.0, 9.0]), vec![3.0, 5.0]);
        assert!(diff(&[1.0]).is_empty());
        assert!(diff(&[]).is_empty());
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        approx(sigmoid(0.0), 0.5);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        approx(sigmoid(3.0) + sigmoid(-3.0), 1.0);
    }
}
