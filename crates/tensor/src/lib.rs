//! # occusense-tensor
//!
//! A small, dependency-light dense linear-algebra kernel used by every other
//! crate in the `occusense` workspace (the Rust reproduction of *Towards Deep
//! Learning-based Occupancy Detection Via WiFi Sensing in Unconstrained
//! Environments*, DATE 2023).
//!
//! The crate deliberately implements only what the reproduction needs, but
//! implements it properly:
//!
//! * [`Matrix`] — row-major dense `f64` matrix with elementwise arithmetic,
//!   matrix multiplication, transposition and reductions.
//! * [`linalg`] — Householder QR decomposition and least-squares solving
//!   (used by the OLS baseline and the ADF test regressions).
//! * [`init`] — seeded random matrix initialisers (uniform, Gaussian,
//!   Xavier/Glorot and Kaiming/He), used for reproducible network weights.
//! * [`vecops`] — slice-level numeric helpers (dot products, norms, means,
//!   variances) shared by the statistics crate.
//! * [`kernels`] — cache-blocked, packed, optionally std-thread-parallel
//!   GEMM kernels with a reusable [`kernels::Scratch`] workspace; the
//!   engine behind [`Matrix::matmul`] and the zero-allocation `*_into`
//!   entry points used by the training and serving hot paths.
//!
//! # Example
//!
//! ```
//! use occusense_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod matrix;

pub mod init;
pub mod kernels;
pub mod linalg;
pub mod pool;
pub mod vecops;

pub use error::ShapeError;
pub use kernels::{Parallelism, Scratch};
pub use matrix::Matrix;
