use std::error::Error;
use std::fmt;

/// Error returned when two operands have incompatible shapes, or when a
/// decomposition receives a matrix it cannot handle.
///
/// # Example
///
/// ```
/// use occusense_tensor::{Matrix, ShapeError};
///
/// let tall = Matrix::zeros(3, 2);
/// let wide = Matrix::zeros(2, 5);
/// let err: ShapeError = tall.try_add(&wide).unwrap_err();
/// assert!(err.to_string().contains("3x2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    lhs: (usize, usize),
    rhs: (usize, usize),
}

impl ShapeError {
    pub(crate) fn new(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self { op, lhs, rhs }
    }

    /// The operation that failed (e.g. `"add"`, `"matmul"`).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Shape of the left-hand operand as `(rows, cols)`.
    pub fn lhs(&self) -> (usize, usize) {
        self.lhs
    }

    /// Shape of the right-hand operand as `(rows, cols)`.
    pub fn rhs(&self) -> (usize, usize) {
        self.rhs
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible shapes for {}: {}x{} vs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_shapes() {
        let e = ShapeError::new("matmul", (2, 3), (4, 5));
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn accessors_round_trip() {
        let e = ShapeError::new("add", (1, 2), (3, 4));
        assert_eq!(e.op(), "add");
        assert_eq!(e.lhs(), (1, 2));
        assert_eq!(e.rhs(), (3, 4));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
