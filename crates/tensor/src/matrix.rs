use std::cell::RefCell;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::kernels::{self, Scratch};
use crate::ShapeError;

thread_local! {
    /// Pack buffer reused by the convenience (allocating-output) matmul
    /// entry points so repeated calls don't re-allocate panel space.
    /// Always single-threaded; callers wanting parallel kernels go
    /// through the `*_into` APIs with their own [`Scratch`].
    static LOCAL_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Dense, row-major `f64` matrix.
///
/// This is the workhorse type of the workspace: network weights, activation
/// batches, design matrices for OLS and the ADF test are all `Matrix` values.
///
/// Elementwise arithmetic is available both as panicking operators
/// (`&a + &b`) and as fallible `try_*` methods returning [`ShapeError`].
///
/// # Example
///
/// ```
/// use occusense_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(a.shape(), (2, 3));
/// assert_eq!(a[(1, 2)], 6.0);
/// let t = a.transpose();
/// assert_eq!(t.shape(), (3, 2));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_tensor::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.sum(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows x cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} but row 0 has length {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_tensor::Matrix;
    /// let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
    /// assert_eq!(m[(1, 1)], 11.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Builds a single-column matrix from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns element `(r, c)` if in bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose of `self` into `out`, reshaping it as
    /// needed (allocation-free once `out` has enough capacity).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.ensure_shape(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Reshapes the matrix to `rows x cols`, reusing the existing
    /// allocation when the capacity suffices. Element values after the
    /// call are unspecified — callers are expected to overwrite them.
    ///
    /// Returns `true` if the underlying buffer had to grow (i.e. the
    /// call heap-allocated); steady-state workspace code asserts this
    /// stays `false` after warm-up.
    pub fn ensure_shape(&mut self, rows: usize, cols: usize) -> bool {
        let needed = rows * cols;
        let grew = needed > self.data.capacity();
        self.data.resize(needed, 0.0);
        self.rows = rows;
        self.cols = cols;
        grew
    }

    /// Matrix product `self * rhs`.
    ///
    /// Runs on the register-tiled FMA kernel in [`crate::kernels`]:
    /// exactly reproducible (bitwise across batch sizes and thread
    /// counts) and verified to tight tolerance against
    /// [`Matrix::matmul_naive`] — the original triple loop, kept as the
    /// reference oracle the kernels are property-tested against.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs)
            .unwrap_or_else(|e| panic!("matmul: {e}"))
    }

    /// Fallible matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the inner dimensions disagree.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        LOCAL_SCRATCH.with(|s| {
            kernels::gemm(
                self.rows,
                self.cols,
                rhs.cols,
                &self.data,
                &rhs.data,
                &mut out.data,
                &mut s.borrow_mut(),
            );
        });
        Ok(out)
    }

    /// Reference matrix product: the original i-k-j triple loop with a
    /// strictly ascending `k` accumulation per element. Kept as the
    /// oracle that every tiled/fused/parallel kernel is verified
    /// against to tight tolerance (the kernels accumulate in the same
    /// order but with fused multiply-adds, so only the per-step
    /// rounding differs). Not used on any hot path.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_naive: inner dimensions {} vs {}",
            self.cols, rhs.rows
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner accesses sequential for row-major data.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * rhs` written into `out` (reshaped as needed) through
    /// `scratch` — the zero-allocation steady-state entry point.
    /// Bitwise identical to [`Matrix::matmul`] for every batch size and
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix, scratch: &mut Scratch) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_into: inner dimensions {} vs {}",
            self.cols, rhs.rows
        );
        if out.ensure_shape(self.rows, rhs.cols) {
            scratch.note_grow();
        }
        kernels::gemm(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
            scratch,
        );
    }

    /// `self * rhs^T` without the caller materialising the transpose
    /// (the kernel transposes `rhs` into its reusable scratch and runs
    /// the register-tiled FMA micro-kernel). This is the `δ · W^T`
    /// step of the dense backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        LOCAL_SCRATCH.with(|s| self.matmul_nt_into(rhs, &mut out, &mut s.borrow_mut()));
        out
    }

    /// [`Matrix::matmul_nt`] into a caller-owned output via `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix, scratch: &mut Scratch) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: inner dimensions {} vs {}",
            self.cols, rhs.cols
        );
        if out.ensure_shape(self.rows, rhs.rows) {
            scratch.note_grow();
        }
        kernels::gemm_nt(
            self.rows,
            self.cols,
            rhs.rows,
            &self.data,
            &rhs.data,
            &mut out.data,
            scratch,
        );
    }

    /// `self^T * rhs` without materialising the transpose. This is the
    /// `x^T · δ` weight-gradient step of the dense backward pass;
    /// matches `self.transpose().matmul_naive(rhs)` to tight tolerance
    /// (same summation order, FMA rounding) and is exactly
    /// reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        LOCAL_SCRATCH.with(|s| self.matmul_tn_into(rhs, &mut out, &mut s.borrow_mut()));
        out
    }

    /// [`Matrix::matmul_tn`] into a caller-owned output via `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix, scratch: &mut Scratch) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: shared dimensions {} vs {}",
            self.rows, rhs.rows
        );
        if out.ensure_shape(self.cols, rhs.cols) {
            scratch.note_grow();
        }
        kernels::gemm_tn(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
            scratch,
        );
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Runs on the unrolled dot kernel ([`kernels::gemv`]); see
    /// [`Matrix::matvec_into`] for the allocation-free variant used by
    /// the per-record serving path.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out);
        out
    }

    /// Matrix-vector product written into `out` (resized as needed;
    /// allocation-free once its capacity suffices).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(
            v.len(),
            self.cols,
            "matvec: vector length {} vs cols {}",
            v.len(),
            self.cols
        );
        out.resize(self.rows, 0.0);
        kernels::gemv(self.rows, self.cols, &self.data, v, out);
    }

    /// Elementwise sum, fallible.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn try_add(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.try_zip_map(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference, fallible.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn try_sub(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.try_zip_map(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, fallible.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn try_hadamard(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.try_zip_map(rhs, "hadamard", |a, b| a * b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.try_hadamard(rhs)
            .unwrap_or_else(|e| panic!("hadamard: {e}"))
    }

    /// Applies `f` to each element, producing a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to each element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two equal-shaped matrices elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn try_zip_map(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new(op, self.shape(), rhs.shape()));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// Adds `row` (a 1 x cols slice) to every row; used for bias broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_row_broadcast(&self, row: &[f64]) -> Matrix {
        assert_eq!(
            row.len(),
            self.cols,
            "broadcast row length {} vs cols {}",
            row.len(),
            self.cols
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(row) {
                *o += b;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Column-wise sums as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        self.col_sums_into(&mut sums);
        sums
    }

    /// Column-wise sums written into `out` (resized as needed;
    /// allocation-free once its capacity suffices).
    pub fn col_sums_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for row in self.rows_iter() {
            for (s, &x) in out.iter_mut().zip(row) {
                *s += x;
            }
        }
    }

    /// Column-wise means as a vector of length `cols`.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        self.col_sums()
            .into_iter()
            .map(|s| s / self.rows as f64)
            .collect()
    }

    /// Maximum absolute element; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Extracts the sub-matrix of the given rows (copying).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Copies the given rows into `out` (reshaped as needed;
    /// allocation-free once its capacity suffices). Used by the
    /// trainer's mini-batch gather so the step loop stops allocating.
    /// Returns `true` if `out` had to grow, like
    /// [`Matrix::ensure_shape`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) -> bool {
        let grew = out.ensure_shape(indices.len(), self.cols);
        for (dst, &i) in out.data.chunks_exact_mut(self.cols.max(1)).zip(indices) {
            dst.copy_from_slice(self.row(i));
        }
        grew
    }

    /// Extracts the sub-matrix of the given columns (copying).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        for &c in indices {
            assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        }
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (d, &c) in dst.iter_mut().zip(indices) {
                *d = src[c];
            }
        }
        out
    }

    /// Horizontally concatenates `self` and `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if row counts differ.
    pub fn try_hstack(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != rhs.rows {
            return Err(ShapeError::new("hstack", self.shape(), rhs.shape()));
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(rhs.row(r));
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.try_add(rhs).unwrap_or_else(|e| panic!("add: {e}"))
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.try_sub(rhs).unwrap_or_else(|e| panic!("sub: {e}"))
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, k: f64) -> Matrix {
        self.scale(k)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.rows_iter().enumerate() {
            if i >= max_rows {
                writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
                break;
            }
            write!(f, "  [")?;
            for (j, x) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                if j >= 8 {
                    write!(f, "...")?;
                    break;
                }
                write!(f, "{x:.4}")?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn zeros_ones_filled() {
        assert_eq!(Matrix::zeros(2, 3).sum(), 0.0);
        assert_eq!(Matrix::ones(2, 3).sum(), 6.0);
        assert_eq!(Matrix::filled(2, 2, 2.5).sum(), 10.0);
    }

    #[test]
    fn identity_is_neutral_for_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        approx(c[(0, 0)], 58.0);
        approx(c[(0, 1)], 64.0);
        approx(c[(1, 0)], 139.0);
        approx(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.try_matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 7 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (5, 3));
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = [5.0, 6.0];
        let got = a.matvec(&v);
        let want = a.matmul(&Matrix::col_vector(&v));
        assert_eq!(got, want.col(0));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        assert_eq!((&a + &b)[(1, 1)], 44.0);
        assert_eq!((&b - &a)[(0, 0)], 9.0);
        assert_eq!(a.hadamard(&b)[(0, 1)], 40.0);
        assert_eq!((&a * 2.0)[(1, 0)], 6.0);
        assert_eq!((-&a)[(0, 0)], -1.0);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::filled(2, 2, 3.0);
        a += &b;
        assert_eq!(a.sum(), 16.0);
        a -= &b;
        assert_eq!(a.sum(), 4.0);
    }

    #[test]
    fn broadcasting_bias_row() {
        let a = Matrix::zeros(3, 2);
        let out = a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(out.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[&[1.0, -5.0], &[2.0, 2.0]]);
        approx(a.sum(), 0.0);
        approx(a.mean(), 0.0);
        approx(a.max_abs(), 5.0);
        approx(a.frobenius_norm(), (1.0f64 + 25.0 + 4.0 + 4.0).sqrt());
        assert_eq!(a.col_means(), vec![1.5, -1.5]);
    }

    #[test]
    fn row_col_accessors() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(a.col(2), vec![2.0, 6.0, 10.0]);
        assert_eq!(a.get(2, 3), Some(11.0));
        assert_eq!(a.get(3, 0), None);
        assert_eq!(a.get(0, 4), None);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let rows = a.select_rows(&[0, 2]);
        assert_eq!(rows.shape(), (2, 3));
        assert_eq!(rows.row(1), &[6.0, 7.0, 8.0]);
        let cols = a.select_cols(&[2, 0]);
        assert_eq!(cols.shape(), (4, 2));
        assert_eq!(cols.row(1), &[5.0, 3.0]);
    }

    #[test]
    fn hstack_concatenates() {
        let a = Matrix::ones(2, 2);
        let b = Matrix::zeros(2, 1);
        let c = a.try_hstack(&b).expect("compatible");
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 1.0, 0.0]);
        assert!(a.try_hstack(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn map_and_map_inplace() {
        let a = Matrix::from_rows(&[&[1.0, 4.0]]);
        assert_eq!(a.map(f64::sqrt).row(0), &[1.0, 2.0]);
        let mut b = a.clone();
        b.map_inplace(|x| x + 1.0);
        assert_eq!(b.row(0), &[2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn debug_format_is_not_empty() {
        let a = Matrix::from_fn(10, 10, |r, c| (r + c) as f64);
        let s = format!("{a:?}");
        assert!(s.contains("Matrix 10x10"));
        assert!(s.contains("more rows"));
    }

    #[test]
    fn rows_iter_on_empty_matrix() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(a.rows_iter().count(), 0);
        assert!(a.is_empty());
        assert_eq!(a.mean(), 0.0);
    }
}
