//! Property-based tests for the tensor kernel.

use occusense_tensor::kernels::{self, Parallelism, Scratch};
use occusense_tensor::{linalg, vecops, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with bounded shape and bounded finite values.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: two matrices of identical shape.
fn matrix_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        let a = prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data));
        let b = prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data));
        (a, b)
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix_strategy(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn addition_commutes((a, b) in matrix_pair(10)) {
        let ab = a.try_add(&b).unwrap();
        let ba = b.try_add(&a).unwrap();
        prop_assert!((&ab - &ba).max_abs() < 1e-9);
    }

    #[test]
    fn subtraction_is_inverse_of_addition((a, b) in matrix_pair(10)) {
        let back = a.try_add(&b).unwrap().try_sub(&b).unwrap();
        prop_assert!((&back - &a).max_abs() < 1e-9);
    }

    #[test]
    fn scale_distributes_over_add((a, b) in matrix_pair(8), k in -10.0f64..10.0) {
        let lhs = a.try_add(&b).unwrap().scale(k);
        let rhs = a.scale(k).try_add(&b.scale(k)).unwrap();
        prop_assert!((&lhs - &rhs).max_abs() < 1e-8);
    }

    #[test]
    fn matmul_transpose_identity(m in matrix_strategy(8)) {
        // (A^T A) is symmetric.
        let ata = m.transpose().matmul(&m);
        let diff = &ata - &ata.transpose();
        prop_assert!(diff.max_abs() < 1e-9);
    }

    #[test]
    fn matvec_agrees_with_matmul(m in matrix_strategy(8)) {
        let v: Vec<f64> = (0..m.cols()).map(|i| i as f64 - 2.0).collect();
        let got = m.matvec(&v);
        let want = m.matmul(&Matrix::col_vector(&v)).col(0);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn hadamard_commutes((a, b) in matrix_pair(10)) {
        let ab = a.try_hadamard(&b).unwrap();
        let ba = b.try_hadamard(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn qr_reconstruction(m in matrix_strategy(8)) {
        // Only tall/square matrices are factorisable.
        prop_assume!(m.rows() >= m.cols());
        let f = linalg::qr(&m).unwrap();
        let back = f.q.matmul(&f.r);
        prop_assert!((&back - &m).max_abs() < 1e-8);
    }

    #[test]
    fn qr_q_orthonormal(m in matrix_strategy(8)) {
        prop_assume!(m.rows() >= m.cols());
        let f = linalg::qr(&m).unwrap();
        let qtq = f.q.transpose().matmul(&f.q);
        let diff = &qtq - &Matrix::identity(m.cols());
        prop_assert!(diff.max_abs() < 1e-8);
    }

    #[test]
    fn dot_is_symmetric(v in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let w: Vec<f64> = v.iter().rev().copied().collect();
        prop_assert!((vecops::dot(&v, &w) - vecops::dot(&w, &v)).abs() < 1e-9);
    }

    #[test]
    fn variance_is_nonnegative(v in prop::collection::vec(-1e3f64..1e3, 0..100)) {
        prop_assert!(vecops::variance(&v) >= 0.0);
        prop_assert!(vecops::sample_variance(&v) >= 0.0);
    }

    #[test]
    fn variance_shift_invariant(v in prop::collection::vec(-100.0f64..100.0, 2..50), shift in -50.0f64..50.0) {
        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        prop_assert!((vecops::variance(&v) - vecops::variance(&shifted)).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_within_unit_interval(x in -1e6f64..1e6) {
        let s = vecops::sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn diff_length(v in prop::collection::vec(-10.0f64..10.0, 0..50)) {
        let d = vecops::diff(&v);
        prop_assert_eq!(d.len(), v.len().saturating_sub(1));
    }

    #[test]
    fn least_squares_residual_orthogonality(
        rows in 4usize..12,
        seedish in 0u64..1000,
    ) {
        // Build a well-conditioned design: intercept + ramp + alternation.
        let a = Matrix::from_fn(rows, 3, |r, c| match c {
            0 => 1.0,
            1 => r as f64,
            _ => if r % 2 == 0 { 1.0 } else { -1.0 },
        });
        let b: Vec<f64> = (0..rows)
            .map(|r| ((r as f64) * 0.7 + (seedish as f64) * 0.01).sin() * 5.0)
            .collect();
        let x = linalg::least_squares(&a, &b).unwrap();
        let pred = a.matvec(&x);
        let resid: Vec<f64> = b.iter().zip(&pred).map(|(y, p)| y - p).collect();
        let at_r = a.transpose().matvec(&resid);
        prop_assert!(vecops::norm(&at_r) < 1e-7);
    }
}

/// Strategy: a multiplicable `(m×k, k×n)` pair whose shapes span every
/// kernel path — empty (`m`, `k` or `n` zero), 1×1, tall, wide, below
/// and above the packing threshold, and non-multiples of the block
/// sizes.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (0usize..=40, 0usize..=20, 0usize..=70).prop_flat_map(|(m, k, n)| {
        let a = prop::collection::vec(-100.0f64..100.0, m * k)
            .prop_map(move |data| Matrix::from_vec(m, k, data));
        let b = prop::collection::vec(-100.0f64..100.0, k * n)
            .prop_map(move |data| Matrix::from_vec(k, n, data));
        (a, b)
    })
}

proptest! {
    // ---- kernel layer: tiled / fused / parallel vs the naive oracle ----

    #[test]
    fn tiled_matmul_matches_naive_reference_tightly((a, b) in matmul_pair()) {
        // The register-tiled kernel accumulates every output element in
        // ascending-k order with a single accumulator — the naive
        // triple loop's operation order — but through fused
        // multiply-adds, so the match is tight-tolerance (one rounding
        // per step, bounded by the worst-case partial sum), not
        // bitwise. The kernel itself is exactly reproducible: a repeat
        // call must match bit-for-bit.
        let got = a.matmul(&b);
        let want = a.matmul_naive(&b);
        let tol = 1e-12 * (1.0 + a.cols() as f64 * 100.0 * 100.0);
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((x - y).abs() <= tol, "tiled {} vs naive {}", x, y);
        }
        prop_assert_eq!(a.matmul(&b), got);
    }

    #[test]
    fn parallel_gemm_is_bitwise_deterministic((a, b) in matmul_pair()) {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut single = vec![0.0; m * n];
        let mut scratch = Scratch::new();
        kernels::gemm(m, k, n, a.as_slice(), b.as_slice(), &mut single, &mut scratch);
        for threads in [1usize, 2, 4] {
            let mut out = vec![1.0; m * n]; // poisoned: every element must be written
            let mut scratch = Scratch::with_parallelism(Parallelism::Threads(threads));
            kernels::gemm(m, k, n, a.as_slice(), b.as_slice(), &mut out, &mut scratch);
            prop_assert_eq!(&out, &single, "thread count {} changed bits", threads);
        }
    }

    #[test]
    fn pooled_gemm_matches_inline_and_scoped_spawn_bitwise(
        (a, b) in matmul_pair(),
        threads in 1usize..=8,
    ) {
        // The persistent pool (Threads), the legacy spawn-per-call path
        // (SpawnThreads) and the inline kernel must agree bit-for-bit
        // on every shape and thread count — the pool's core contract.
        let (m, k) = a.shape();
        let n = b.cols();
        let mut inline = vec![0.0; m * n];
        let mut scratch = Scratch::new();
        kernels::gemm(m, k, n, a.as_slice(), b.as_slice(), &mut inline, &mut scratch);
        let mut spawned = vec![1.0; m * n]; // poisoned: every element must be written
        let mut scratch = Scratch::with_parallelism(Parallelism::SpawnThreads(threads));
        kernels::gemm(m, k, n, a.as_slice(), b.as_slice(), &mut spawned, &mut scratch);
        prop_assert_eq!(&spawned, &inline, "spawn path changed bits at {} threads", threads);
        let mut pooled = vec![1.0; m * n];
        let mut scratch = Scratch::with_parallelism(Parallelism::Threads(threads));
        // Two rounds through the same pool: the second must reuse the
        // warm workers and still reproduce the first exactly.
        for round in 0..2 {
            pooled.fill(1.0);
            kernels::gemm(m, k, n, a.as_slice(), b.as_slice(), &mut pooled, &mut scratch);
            prop_assert_eq!(
                &pooled, &inline,
                "pool changed bits at {} threads (round {})", threads, round
            );
        }
    }

    #[test]
    fn pooled_fused_forward_matches_inline_and_scoped_spawn_bitwise(
        (x, w) in matmul_pair(),
        threads in 1usize..=8,
    ) {
        let (m, k) = x.shape();
        let n = w.cols();
        let bias: Vec<f64> = (0..n).map(|j| (j as f64 * 0.125).cos()).collect();
        let act = |v: f64| v.max(0.0);
        let run = |par: Parallelism| {
            let mut z = vec![1.0; m * n];
            let mut a = vec![1.0; m * n];
            let mut scratch = Scratch::with_parallelism(par);
            kernels::gemm_bias_act(
                m, k, n, x.as_slice(), w.as_slice(), &bias, &mut z, &mut a, act, &mut scratch,
            );
            (z, a)
        };
        let inline = run(Parallelism::Single);
        let spawned = run(Parallelism::SpawnThreads(threads));
        prop_assert_eq!(&spawned, &inline, "fused spawn path changed bits at {} threads", threads);
        let pooled = run(Parallelism::Threads(threads));
        prop_assert_eq!(&pooled, &inline, "fused pool changed bits at {} threads", threads);
    }

    #[test]
    fn fused_forward_matches_unfused_bitwise((x, w) in matmul_pair()) {
        let (m, k) = x.shape();
        let n = w.cols();
        let bias: Vec<f64> = (0..n).map(|j| j as f64 * 0.25 - 1.0).collect();
        let act = |v: f64| v.max(0.0);
        let mut z = vec![0.0; m * n];
        let mut a = vec![0.0; m * n];
        let mut scratch = Scratch::new();
        kernels::gemm_bias_act(
            m, k, n, x.as_slice(), w.as_slice(), &bias, &mut z, &mut a, act, &mut scratch,
        );
        // The fused pass must be bitwise identical to matmul followed
        // by a broadcast bias add and activation.
        let mut z_ref = x.matmul(&w);
        for row in 0..m {
            for (v, bv) in z_ref.row_mut(row).iter_mut().zip(&bias) {
                *v += bv;
            }
        }
        prop_assert_eq!(&z, z_ref.as_slice());
        let a_ref: Vec<f64> = z_ref.as_slice().iter().map(|&v| act(v)).collect();
        prop_assert_eq!(&a, &a_ref);
    }

    #[test]
    fn gemm_tn_matches_materialised_transpose((a, b) in matmul_pair()) {
        // x^T · δ without materialising x^T (Dense::backward's weight
        // gradient): rank-1 FMA accumulation in ascending row order —
        // the naive transpose product's summation order with one
        // rounding per step, so tight tolerance plus exact
        // reproducibility on a repeat call.
        let got = a.matmul_tn(&a);
        let want = a.transpose().matmul_naive(&a);
        let tol = 1e-12 * (1.0 + a.rows() as f64 * 100.0 * 100.0);
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((x - y).abs() <= tol, "tn {} vs naive {}", x, y);
        }
        prop_assert_eq!(a.matmul_tn(&a), got);
        let _ = b;
    }

    #[test]
    fn gemm_nt_matches_materialised_transpose((a, b) in matmul_pair()) {
        // δ · W^T without the caller materialising W^T
        // (Dense::backward's input gradient): the kernel transposes B
        // into its reusable scratch and runs the rank-1 FMA
        // micro-kernel, so the comparison against the naive product is
        // tight-tolerance (FMA rounds once per step), not bitwise.
        // Determinism of the nt path itself is still exact: a repeat
        // call must match bitwise.
        let bt = b.transpose();
        let got = a.matmul_nt(&bt);
        let want = a.matmul(&b);
        let tol = 1e-12 * (1.0 + a.cols() as f64 * 100.0 * 100.0);
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((x - y).abs() <= tol, "nt {} vs naive {}", x, y);
        }
        prop_assert_eq!(a.matmul_nt(&bt), got);
    }

    #[test]
    fn matvec_matches_single_column_matmul(m in matrix_strategy(12)) {
        let v: Vec<f64> = (0..m.cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        // matvec runs on the unrolled dot kernel (different summation
        // order from the naive-order matmul), so tolerance here —
        // but matvec_into must be bitwise equal to matvec.
        let got = m.matvec(&v);
        let want = m.matmul(&Matrix::col_vector(&v)).col(0);
        let tol = 1e-12 * (1.0 + m.cols() as f64);
        for (x, y) in got.iter().zip(&want) {
            prop_assert!((x - y).abs() <= tol, "matvec {} vs matmul {}", x, y);
        }
        let mut out = Vec::new();
        m.matvec_into(&v, &mut out);
        prop_assert_eq!(out, got);
    }

    #[test]
    fn batch_size_never_changes_a_row((a, b) in matmul_pair()) {
        // Scoring a row alone (the serve per-record path) is bitwise
        // identical to scoring it inside any batch — every output
        // element is a pure function of its own A-row and B-column,
        // the contract the serving runtime relies on.
        prop_assume!(a.rows() > 0);
        let full = a.matmul(&b);
        let row = Matrix::row_vector(a.row(a.rows() / 2));
        prop_assert_eq!(row.matmul(&b).as_slice(), full.row(a.rows() / 2));
    }
}
