//! Property-based tests for the tensor kernel.

use occusense_tensor::{linalg, vecops, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with bounded shape and bounded finite values.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: two matrices of identical shape.
fn matrix_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        let a = prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data));
        let b = prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data));
        (a, b)
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix_strategy(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn addition_commutes((a, b) in matrix_pair(10)) {
        let ab = a.try_add(&b).unwrap();
        let ba = b.try_add(&a).unwrap();
        prop_assert!((&ab - &ba).max_abs() < 1e-9);
    }

    #[test]
    fn subtraction_is_inverse_of_addition((a, b) in matrix_pair(10)) {
        let back = a.try_add(&b).unwrap().try_sub(&b).unwrap();
        prop_assert!((&back - &a).max_abs() < 1e-9);
    }

    #[test]
    fn scale_distributes_over_add((a, b) in matrix_pair(8), k in -10.0f64..10.0) {
        let lhs = a.try_add(&b).unwrap().scale(k);
        let rhs = a.scale(k).try_add(&b.scale(k)).unwrap();
        prop_assert!((&lhs - &rhs).max_abs() < 1e-8);
    }

    #[test]
    fn matmul_transpose_identity(m in matrix_strategy(8)) {
        // (A^T A) is symmetric.
        let ata = m.transpose().matmul(&m);
        let diff = &ata - &ata.transpose();
        prop_assert!(diff.max_abs() < 1e-9);
    }

    #[test]
    fn matvec_agrees_with_matmul(m in matrix_strategy(8)) {
        let v: Vec<f64> = (0..m.cols()).map(|i| i as f64 - 2.0).collect();
        let got = m.matvec(&v);
        let want = m.matmul(&Matrix::col_vector(&v)).col(0);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn hadamard_commutes((a, b) in matrix_pair(10)) {
        let ab = a.try_hadamard(&b).unwrap();
        let ba = b.try_hadamard(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn qr_reconstruction(m in matrix_strategy(8)) {
        // Only tall/square matrices are factorisable.
        prop_assume!(m.rows() >= m.cols());
        let f = linalg::qr(&m).unwrap();
        let back = f.q.matmul(&f.r);
        prop_assert!((&back - &m).max_abs() < 1e-8);
    }

    #[test]
    fn qr_q_orthonormal(m in matrix_strategy(8)) {
        prop_assume!(m.rows() >= m.cols());
        let f = linalg::qr(&m).unwrap();
        let qtq = f.q.transpose().matmul(&f.q);
        let diff = &qtq - &Matrix::identity(m.cols());
        prop_assert!(diff.max_abs() < 1e-8);
    }

    #[test]
    fn dot_is_symmetric(v in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let w: Vec<f64> = v.iter().rev().copied().collect();
        prop_assert!((vecops::dot(&v, &w) - vecops::dot(&w, &v)).abs() < 1e-9);
    }

    #[test]
    fn variance_is_nonnegative(v in prop::collection::vec(-1e3f64..1e3, 0..100)) {
        prop_assert!(vecops::variance(&v) >= 0.0);
        prop_assert!(vecops::sample_variance(&v) >= 0.0);
    }

    #[test]
    fn variance_shift_invariant(v in prop::collection::vec(-100.0f64..100.0, 2..50), shift in -50.0f64..50.0) {
        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        prop_assert!((vecops::variance(&v) - vecops::variance(&shifted)).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_within_unit_interval(x in -1e6f64..1e6) {
        let s = vecops::sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn diff_length(v in prop::collection::vec(-10.0f64..10.0, 0..50)) {
        let d = vecops::diff(&v);
        prop_assert_eq!(d.len(), v.len().saturating_sub(1));
    }

    #[test]
    fn least_squares_residual_orthogonality(
        rows in 4usize..12,
        seedish in 0u64..1000,
    ) {
        // Build a well-conditioned design: intercept + ramp + alternation.
        let a = Matrix::from_fn(rows, 3, |r, c| match c {
            0 => 1.0,
            1 => r as f64,
            _ => if r % 2 == 0 { 1.0 } else { -1.0 },
        });
        let b: Vec<f64> = (0..rows)
            .map(|r| ((r as f64) * 0.7 + (seedish as f64) * 0.01).sin() * 5.0)
            .collect();
        let x = linalg::least_squares(&a, &b).unwrap();
        let pred = a.matvec(&x);
        let resid: Vec<f64> = b.iter().zip(&pred).map(|(y, p)| y - p).collect();
        let at_r = a.transpose().matvec(&resid);
        prop_assert!(vecops::norm(&at_r) < 1e-7);
    }
}
