//! Plain-text model persistence.
//!
//! Format (line-oriented, whitespace-separated):
//!
//! ```text
//! occusense-mlp v1
//! layers <L>
//! layer <in> <out> <activation>
//! <out floats>            # bias
//! <out floats> × in lines # weight rows
//! ...
//! ```

use crate::activation::Activation;
use crate::layer::Dense;
use crate::mlp::Mlp;
use occusense_tensor::Matrix;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Error returned by [`load`].
#[derive(Debug)]
pub enum LoadModelError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed model file.
    Parse(String),
}

impl fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadModelError::Io(e) => write!(f, "model load: {e}"),
            LoadModelError::Parse(msg) => write!(f, "model parse error: {msg}"),
        }
    }
}

impl Error for LoadModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadModelError::Io(e) => Some(e),
            LoadModelError::Parse(_) => None,
        }
    }
}

impl From<io::Error> for LoadModelError {
    fn from(e: io::Error) -> Self {
        LoadModelError::Io(e)
    }
}

/// Saves a model. A `&mut` writer can be passed as well as an owned one.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use occusense_nn::Mlp;
/// use occusense_nn::serialize::{save, load};
///
/// let mlp = Mlp::new(&[4, 8, 1], 3);
/// let mut buf = Vec::new();
/// save(&mut buf, &mlp)?;
/// let back = load(&buf[..])?;
/// assert_eq!(back, mlp);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn save<W: Write>(mut w: W, mlp: &Mlp) -> io::Result<()> {
    writeln!(w, "occusense-mlp v1")?;
    writeln!(w, "layers {}", mlp.layers().len())?;
    for layer in mlp.layers() {
        writeln!(
            w,
            "layer {} {} {}",
            layer.in_dim(),
            layer.out_dim(),
            layer.activation.name()
        )?;
        write_floats(&mut w, &layer.bias)?;
        for r in 0..layer.in_dim() {
            write_floats(&mut w, layer.weights.row(r))?;
        }
    }
    Ok(())
}

fn write_floats<W: Write>(w: &mut W, values: &[f64]) -> io::Result<()> {
    let mut first = true;
    for v in values {
        if !first {
            write!(w, " ")?;
        }
        // {:e} keeps full f64 precision in a compact, locale-free form.
        write!(w, "{v:e}")?;
        first = false;
    }
    writeln!(w)
}

/// Loads a model saved by [`save`].
///
/// # Errors
///
/// Returns [`LoadModelError`] for I/O failures or malformed content.
pub fn load<R: Read>(r: R) -> Result<Mlp, LoadModelError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let mut next_line = |what: &str| -> Result<String, LoadModelError> {
        lines
            .next()
            .ok_or_else(|| {
                LoadModelError::Parse(format!("unexpected end of file, expected {what}"))
            })?
            .map_err(LoadModelError::from)
    };

    let magic = next_line("header")?;
    if magic.trim() != "occusense-mlp v1" {
        return Err(LoadModelError::Parse(format!("bad header '{magic}'")));
    }
    let layers_line = next_line("layer count")?;
    let n_layers: usize = layers_line
        .strip_prefix("layers ")
        .ok_or_else(|| LoadModelError::Parse(format!("bad layer-count line '{layers_line}'")))?
        .trim()
        .parse()
        .map_err(|e| LoadModelError::Parse(format!("bad layer count: {e}")))?;

    let mut layers = Vec::with_capacity(n_layers);
    for li in 0..n_layers {
        let header = next_line("layer header")?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "layer" {
            return Err(LoadModelError::Parse(format!(
                "bad layer header '{header}' (layer {li})"
            )));
        }
        let in_dim: usize = parts[1]
            .parse()
            .map_err(|e| LoadModelError::Parse(format!("bad in_dim: {e}")))?;
        let out_dim: usize = parts[2]
            .parse()
            .map_err(|e| LoadModelError::Parse(format!("bad out_dim: {e}")))?;
        let activation = Activation::from_name(parts[3])
            .ok_or_else(|| LoadModelError::Parse(format!("unknown activation '{}'", parts[3])))?;

        let bias = parse_floats(&next_line("bias")?, out_dim, li, "bias")?;
        let mut weights = Matrix::zeros(in_dim, out_dim);
        for r in 0..in_dim {
            let row = parse_floats(&next_line("weight row")?, out_dim, li, "weights")?;
            weights.row_mut(r).copy_from_slice(&row);
        }
        layers.push(Dense {
            weights,
            bias,
            activation,
        });
    }
    if layers.is_empty() {
        return Err(LoadModelError::Parse("model has no layers".into()));
    }
    Ok(Mlp::from_layers(layers))
}

fn parse_floats(
    line: &str,
    expected: usize,
    layer: usize,
    what: &str,
) -> Result<Vec<f64>, LoadModelError> {
    let values: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse).collect();
    let values = values.map_err(|e| LoadModelError::Parse(format!("layer {layer} {what}: {e}")))?;
    if values.iter().any(|v: &f64| !v.is_finite()) {
        // A NaN/inf weight silently poisons every forward pass; a
        // corrupt or diverged checkpoint must fail loudly at load time.
        return Err(LoadModelError::Parse(format!(
            "layer {layer} {what}: non-finite value"
        )));
    }
    if values.len() != expected {
        return Err(LoadModelError::Parse(format!(
            "layer {layer} {what}: expected {expected} values, got {}",
            values.len()
        )));
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_model_exactly() {
        let mlp = Mlp::new(&[5, 16, 8, 2], 42);
        let mut buf = Vec::new();
        save(&mut buf, &mlp).unwrap();
        let back = load(&buf[..]).unwrap();
        assert_eq!(back, mlp);
    }

    #[test]
    fn round_trip_preserves_predictions_bitwise() {
        let mlp = Mlp::new(&[3, 8, 1], 7);
        let mut buf = Vec::new();
        save(&mut buf, &mlp).unwrap();
        let back = load(&buf[..]).unwrap();
        let x = Matrix::from_fn(10, 3, |r, c| ((r * 3 + c) as f64).sin());
        assert_eq!(mlp.predict(&x), back.predict(&x));
    }

    #[test]
    fn load_rejects_bad_header() {
        let err = load(&b"not a model\n"[..]).unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn load_rejects_truncated_file() {
        let mlp = Mlp::new(&[2, 3, 1], 1);
        let mut buf = Vec::new();
        save(&mut buf, &mlp).unwrap();
        let cut = buf.len() / 2;
        let err = load(&buf[..cut]).unwrap_err();
        assert!(matches!(err, LoadModelError::Parse(_)));
    }

    #[test]
    fn load_rejects_wrong_value_count() {
        let text = "occusense-mlp v1\nlayers 1\nlayer 2 1 relu\n0.0\n1.0 2.0\n1.0\n";
        // Weight row has 2 values for out_dim 1? First row parses 2 values
        // where 1 is expected.
        let err = load(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 1 values"));
    }

    #[test]
    fn load_rejects_non_finite_weights() {
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!("occusense-mlp v1\nlayers 1\nlayer 1 1 relu\n0.0\n{bad}\n");
            let err = load(text.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{bad}: {err}");
        }
    }

    #[test]
    fn load_rejects_unknown_activation() {
        let text = "occusense-mlp v1\nlayers 1\nlayer 1 1 swish\n0.0\n1.0\n";
        let err = load(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown activation"));
    }
}
