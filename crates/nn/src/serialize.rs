//! Plain-text model persistence.
//!
//! Format (line-oriented, whitespace-separated):
//!
//! ```text
//! occusense-mlp v1
//! layers <L>
//! layer <in> <out> <activation>
//! <out floats>            # bias
//! <out floats> × in lines # weight rows
//! ...
//! ```

use crate::activation::Activation;
use crate::gru::Gru;
use crate::layer::Dense;
use crate::mlp::Mlp;
use occusense_tensor::Matrix;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Error returned by [`load`].
#[derive(Debug)]
pub enum LoadModelError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed model file.
    Parse(String),
}

impl fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadModelError::Io(e) => write!(f, "model load: {e}"),
            LoadModelError::Parse(msg) => write!(f, "model parse error: {msg}"),
        }
    }
}

impl Error for LoadModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadModelError::Io(e) => Some(e),
            LoadModelError::Parse(_) => None,
        }
    }
}

impl From<io::Error> for LoadModelError {
    fn from(e: io::Error) -> Self {
        LoadModelError::Io(e)
    }
}

/// Saves a model. A `&mut` writer can be passed as well as an owned one.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use occusense_nn::Mlp;
/// use occusense_nn::serialize::{save, load};
///
/// let mlp = Mlp::new(&[4, 8, 1], 3);
/// let mut buf = Vec::new();
/// save(&mut buf, &mlp)?;
/// let back = load(&buf[..])?;
/// assert_eq!(back, mlp);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn save<W: Write>(mut w: W, mlp: &Mlp) -> io::Result<()> {
    writeln!(w, "occusense-mlp v1")?;
    writeln!(w, "layers {}", mlp.layers().len())?;
    for layer in mlp.layers() {
        writeln!(
            w,
            "layer {} {} {}",
            layer.in_dim(),
            layer.out_dim(),
            layer.activation.name()
        )?;
        write_floats(&mut w, &layer.bias)?;
        for r in 0..layer.in_dim() {
            write_floats(&mut w, layer.weights.row(r))?;
        }
    }
    Ok(())
}

fn write_floats<W: Write>(w: &mut W, values: &[f64]) -> io::Result<()> {
    let mut first = true;
    for v in values {
        if !first {
            write!(w, " ")?;
        }
        // {:e} keeps full f64 precision in a compact, locale-free form.
        write!(w, "{v:e}")?;
        first = false;
    }
    writeln!(w)
}

/// Loads a model saved by [`save`].
///
/// # Errors
///
/// Returns [`LoadModelError`] for I/O failures or malformed content.
pub fn load<R: Read>(r: R) -> Result<Mlp, LoadModelError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let mut next_line = |what: &str| -> Result<String, LoadModelError> {
        lines
            .next()
            .ok_or_else(|| {
                LoadModelError::Parse(format!("unexpected end of file, expected {what}"))
            })?
            .map_err(LoadModelError::from)
    };

    let magic = next_line("header")?;
    if magic.trim() != "occusense-mlp v1" {
        return Err(LoadModelError::Parse(format!("bad header '{magic}'")));
    }
    let layers_line = next_line("layer count")?;
    let n_layers: usize = layers_line
        .strip_prefix("layers ")
        .ok_or_else(|| LoadModelError::Parse(format!("bad layer-count line '{layers_line}'")))?
        .trim()
        .parse()
        .map_err(|e| LoadModelError::Parse(format!("bad layer count: {e}")))?;

    let mut layers = Vec::with_capacity(n_layers);
    for li in 0..n_layers {
        let header = next_line("layer header")?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "layer" {
            return Err(LoadModelError::Parse(format!(
                "bad layer header '{header}' (layer {li})"
            )));
        }
        let in_dim: usize = parts[1]
            .parse()
            .map_err(|e| LoadModelError::Parse(format!("bad in_dim: {e}")))?;
        let out_dim: usize = parts[2]
            .parse()
            .map_err(|e| LoadModelError::Parse(format!("bad out_dim: {e}")))?;
        let activation = Activation::from_name(parts[3])
            .ok_or_else(|| LoadModelError::Parse(format!("unknown activation '{}'", parts[3])))?;

        let bias = parse_floats(&next_line("bias")?, out_dim, li, "bias")?;
        let mut weights = Matrix::zeros(in_dim, out_dim);
        for r in 0..in_dim {
            let row = parse_floats(&next_line("weight row")?, out_dim, li, "weights")?;
            weights.row_mut(r).copy_from_slice(&row);
        }
        layers.push(Dense {
            weights,
            bias,
            activation,
        });
    }
    if layers.is_empty() {
        return Err(LoadModelError::Parse("model has no layers".into()));
    }
    Ok(Mlp::from_layers(layers))
}

fn parse_floats(
    line: &str,
    expected: usize,
    layer: usize,
    what: &str,
) -> Result<Vec<f64>, LoadModelError> {
    let values: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse).collect();
    let values = values.map_err(|e| LoadModelError::Parse(format!("layer {layer} {what}: {e}")))?;
    if values.iter().any(|v: &f64| !v.is_finite()) {
        // A NaN/inf weight silently poisons every forward pass; a
        // corrupt or diverged checkpoint must fail loudly at load time.
        return Err(LoadModelError::Parse(format!(
            "layer {layer} {what}: non-finite value"
        )));
    }
    if values.len() != expected {
        return Err(LoadModelError::Parse(format!(
            "layer {layer} {what}: expected {expected} values, got {}",
            values.len()
        )));
    }
    Ok(values)
}

/// Saves a GRU layer. Same conventions as [`save`]: line-oriented,
/// `{:e}` floats, biases first then the six weight matrices in the
/// fixed order `W_z W_r W_n U_z U_r U_n`, one row per line.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_gru<W: Write>(mut w: W, gru: &Gru) -> io::Result<()> {
    writeln!(w, "occusense-gru v1")?;
    writeln!(w, "dims {} {}", gru.in_dim(), gru.hidden_dim())?;
    write_floats(&mut w, &gru.b_z)?;
    write_floats(&mut w, &gru.b_r)?;
    write_floats(&mut w, &gru.b_n)?;
    for m in [&gru.w_z, &gru.w_r, &gru.w_n, &gru.u_z, &gru.u_r, &gru.u_n] {
        for r in 0..m.rows() {
            write_floats(&mut w, m.row(r))?;
        }
    }
    Ok(())
}

/// Loads a GRU saved by [`save_gru`]. Rejects non-finite values,
/// truncated files and dimension mismatches like [`load`] does.
///
/// # Errors
///
/// Returns [`LoadModelError`] for I/O failures or malformed content.
pub fn load_gru<R: Read>(r: R) -> Result<Gru, LoadModelError> {
    load_gru_from(BufReader::new(r))
}

/// [`load_gru`] over an existing buffered reader, consuming exactly the
/// GRU payload and nothing past it. Use this when the GRU is embedded
/// in a larger stream (e.g. a temporal-detector checkpoint) and another
/// payload follows: wrapping the stream in a second `BufReader` would
/// read ahead and swallow the follower's bytes.
///
/// # Errors
///
/// Returns [`LoadModelError`] for I/O failures or malformed content.
pub fn load_gru_from<R: BufRead>(reader: R) -> Result<Gru, LoadModelError> {
    let mut lines = reader.lines();
    let mut next_line = |what: &str| -> Result<String, LoadModelError> {
        lines
            .next()
            .ok_or_else(|| {
                LoadModelError::Parse(format!("unexpected end of file, expected {what}"))
            })?
            .map_err(LoadModelError::from)
    };

    let magic = next_line("header")?;
    if magic.trim() != "occusense-gru v1" {
        return Err(LoadModelError::Parse(format!("bad gru header '{magic}'")));
    }
    let dims_line = next_line("dims")?;
    let dims: Vec<&str> = dims_line.split_whitespace().collect();
    if dims.len() != 3 || dims[0] != "dims" {
        return Err(LoadModelError::Parse(format!(
            "bad dims line '{dims_line}'"
        )));
    }
    let in_dim: usize = dims[1]
        .parse()
        .map_err(|e| LoadModelError::Parse(format!("bad in_dim: {e}")))?;
    let hidden: usize = dims[2]
        .parse()
        .map_err(|e| LoadModelError::Parse(format!("bad hidden dim: {e}")))?;
    if in_dim == 0 || hidden == 0 {
        return Err(LoadModelError::Parse(format!(
            "gru dims must be positive, got {in_dim}x{hidden}"
        )));
    }

    let b_z = parse_floats(&next_line("b_z")?, hidden, 0, "b_z")?;
    let b_r = parse_floats(&next_line("b_r")?, hidden, 0, "b_r")?;
    let b_n = parse_floats(&next_line("b_n")?, hidden, 0, "b_n")?;
    let mut read_matrix = |rows: usize, what: &'static str| -> Result<Matrix, LoadModelError> {
        let mut m = Matrix::zeros(rows, hidden);
        for r in 0..rows {
            let row = parse_floats(&next_line(what)?, hidden, 0, what)?;
            m.row_mut(r).copy_from_slice(&row);
        }
        Ok(m)
    };
    let w_z = read_matrix(in_dim, "w_z")?;
    let w_r = read_matrix(in_dim, "w_r")?;
    let w_n = read_matrix(in_dim, "w_n")?;
    let u_z = read_matrix(hidden, "u_z")?;
    let u_r = read_matrix(hidden, "u_r")?;
    let u_n = read_matrix(hidden, "u_n")?;
    Ok(Gru {
        w_z,
        w_r,
        w_n,
        u_z,
        u_r,
        u_n,
        b_z,
        b_r,
        b_n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_model_exactly() {
        let mlp = Mlp::new(&[5, 16, 8, 2], 42);
        let mut buf = Vec::new();
        save(&mut buf, &mlp).unwrap();
        let back = load(&buf[..]).unwrap();
        assert_eq!(back, mlp);
    }

    #[test]
    fn round_trip_preserves_predictions_bitwise() {
        let mlp = Mlp::new(&[3, 8, 1], 7);
        let mut buf = Vec::new();
        save(&mut buf, &mlp).unwrap();
        let back = load(&buf[..]).unwrap();
        let x = Matrix::from_fn(10, 3, |r, c| ((r * 3 + c) as f64).sin());
        assert_eq!(mlp.predict(&x), back.predict(&x));
    }

    #[test]
    fn load_rejects_bad_header() {
        let err = load(&b"not a model\n"[..]).unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn load_rejects_truncated_file() {
        let mlp = Mlp::new(&[2, 3, 1], 1);
        let mut buf = Vec::new();
        save(&mut buf, &mlp).unwrap();
        let cut = buf.len() / 2;
        let err = load(&buf[..cut]).unwrap_err();
        assert!(matches!(err, LoadModelError::Parse(_)));
    }

    #[test]
    fn load_rejects_wrong_value_count() {
        let text = "occusense-mlp v1\nlayers 1\nlayer 2 1 relu\n0.0\n1.0 2.0\n1.0\n";
        // Weight row has 2 values for out_dim 1? First row parses 2 values
        // where 1 is expected.
        let err = load(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 1 values"));
    }

    #[test]
    fn load_rejects_non_finite_weights() {
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!("occusense-mlp v1\nlayers 1\nlayer 1 1 relu\n0.0\n{bad}\n");
            let err = load(text.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{bad}: {err}");
        }
    }

    #[test]
    fn load_rejects_unknown_activation() {
        let text = "occusense-mlp v1\nlayers 1\nlayer 1 1 swish\n0.0\n1.0\n";
        let err = load(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown activation"));
    }

    #[test]
    fn gru_round_trip_preserves_model_exactly() {
        let mut rng = StdRng::seed_from_u64(9);
        let gru = Gru::new(5, 8, &mut rng);
        let mut buf = Vec::new();
        save_gru(&mut buf, &gru).unwrap();
        let back = load_gru(&buf[..]).unwrap();
        assert_eq!(back, gru);
    }

    #[test]
    fn gru_round_trip_preserves_states_bitwise() {
        use crate::gru::GruWorkspace;
        let mut rng = StdRng::seed_from_u64(10);
        let gru = Gru::new(4, 6, &mut rng);
        let mut buf = Vec::new();
        save_gru(&mut buf, &gru).unwrap();
        let back = load_gru(&buf[..]).unwrap();
        let xs: Vec<Matrix> = (0..5)
            .map(|t| Matrix::from_fn(3, 4, |r, c| (((t * 3 + r) * 4 + c) as f64 * 0.31).sin()))
            .collect();
        let h0 = Matrix::zeros(3, 6);
        let run = |g: &Gru| {
            let mut ws = GruWorkspace::new();
            g.forward_seq(&xs, &h0, &mut ws);
            ws.h_last().clone()
        };
        assert_eq!(run(&gru), run(&back));
    }

    #[test]
    fn gru_load_rejects_bad_header_and_truncation() {
        let err = load_gru(&b"not a gru\n"[..]).unwrap_err();
        assert!(err.to_string().contains("bad gru header"));
        let mut rng = StdRng::seed_from_u64(11);
        let gru = Gru::new(2, 3, &mut rng);
        let mut buf = Vec::new();
        save_gru(&mut buf, &gru).unwrap();
        let err = load_gru(&buf[..buf.len() / 2]).unwrap_err();
        assert!(matches!(err, LoadModelError::Parse(_)));
    }

    #[test]
    fn gru_load_rejects_non_finite_values() {
        let text = "occusense-gru v1\ndims 1 1\nNaN\n0.0\n0.0\n1.0\n1.0\n1.0\n1.0\n1.0\n1.0\n";
        let err = load_gru(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }
}
