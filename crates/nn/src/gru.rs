//! Gated recurrent unit with hand-derived BPTT gradients.
//!
//! The cell follows Cho et al.'s original formulation with the reset
//! gate applied *before* the recurrent matmul of the candidate:
//!
//! ```text
//! z_t = σ(x_t W_z + h_{t-1} U_z + b_z)          (update gate)
//! r_t = σ(x_t W_r + h_{t-1} U_r + b_r)          (reset gate)
//! n_t = tanh(x_t W_n + (r_t ⊙ h_{t-1}) U_n + b_n)  (candidate)
//! h_t = (1 − z_t) ⊙ n_t + z_t ⊙ h_{t-1}
//! ```
//!
//! Every matrix product runs on the packed GEMM kernels
//! ([`kernels::gemm`] forward, [`kernels::gemm_tn`]/[`kernels::gemm_nt`]
//! backward), and every gate combination is a fixed-order elementwise
//! pass, so a step is **bitwise identical across thread counts** and —
//! because the kernels compute each output row independently — across
//! batch compositions: scoring a sensor inside a 64-row batched step
//! equals scoring it alone, bit for bit. That row independence is what
//! the stateful serve path relies on.
//!
//! [`GruWorkspace`] mirrors [`crate::MlpWorkspace`]: it owns every
//! intermediate (gate caches per timestep, BPTT temporaries, parameter
//! gradient accumulators) plus the GEMM pack [`Scratch`], so the
//! steady-state [`Gru::step`]/[`Gru::forward_seq`]/[`Gru::backward_seq`]
//! loop performs no heap allocations once warm — asserted via
//! [`GruWorkspace::reallocs`] exactly like the MLP path.

use occusense_tensor::kernels::{self, Parallelism, Scratch};
use occusense_tensor::vecops::sigmoid;
use occusense_tensor::{init, Matrix};
use rand::Rng;

/// A single GRU layer. Input-side weights are `in_dim × hidden`,
/// recurrent weights `hidden × hidden`, biases length `hidden` — the
/// same storage orientation as [`crate::layer::Dense`], so a batch of
/// streams is a `n × in_dim` matrix and every product is row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Gru {
    /// Update-gate input weights, `in_dim × hidden`.
    pub w_z: Matrix,
    /// Reset-gate input weights, `in_dim × hidden`.
    pub w_r: Matrix,
    /// Candidate input weights, `in_dim × hidden`.
    pub w_n: Matrix,
    /// Update-gate recurrent weights, `hidden × hidden`.
    pub u_z: Matrix,
    /// Reset-gate recurrent weights, `hidden × hidden`.
    pub u_r: Matrix,
    /// Candidate recurrent weights, `hidden × hidden`.
    pub u_n: Matrix,
    /// Update-gate bias, length `hidden`.
    pub b_z: Vec<f64>,
    /// Reset-gate bias, length `hidden`.
    pub b_r: Vec<f64>,
    /// Candidate bias, length `hidden`.
    pub b_n: Vec<f64>,
}

impl Gru {
    /// Creates a GRU with Xavier-initialised weights (sigmoid/tanh
    /// gates saturate; Kaiming would push them there) and zero biases.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        assert!(in_dim > 0 && hidden > 0, "gru: dimensions must be positive");
        Self {
            w_z: init::xavier_uniform(in_dim, hidden, rng),
            w_r: init::xavier_uniform(in_dim, hidden, rng),
            w_n: init::xavier_uniform(in_dim, hidden, rng),
            u_z: init::xavier_uniform(hidden, hidden, rng),
            u_r: init::xavier_uniform(hidden, hidden, rng),
            u_n: init::xavier_uniform(hidden, hidden, rng),
            b_z: vec![0.0; hidden],
            b_r: vec![0.0; hidden],
            b_n: vec![0.0; hidden],
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.w_z.rows()
    }

    /// Hidden-state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.w_z.cols()
    }

    /// Number of trainable parameters: `3·(in·h + h² + h)`.
    pub fn n_parameters(&self) -> usize {
        3 * (self.w_z.len() + self.u_z.len() + self.b_z.len())
    }

    /// True when every weight and bias is finite — the same guard the
    /// persistence layer applies before writing a checkpoint.
    pub fn is_finite(&self) -> bool {
        [
            &self.w_z, &self.w_r, &self.w_n, &self.u_z, &self.u_r, &self.u_n,
        ]
        .iter()
        .all(|m| m.as_slice().iter().all(|v| v.is_finite()))
            && [&self.b_z, &self.b_r, &self.b_n]
                .iter()
                .all(|b| b.iter().all(|v| v.is_finite()))
    }

    // The steady-state sequence loop: no allocation once the workspace
    // has capacity (spine growth happens in `GruWorkspace::prepare` and
    // `prepare_grads`, below, where the realloc counter records it).
    // lint:no_alloc

    /// One timestep for a batch of independent streams: `x` is
    /// `n × in_dim`, `h_prev` is `n × hidden`, and the new hidden state
    /// lands in `h_out` (`n × hidden`). Each row advances its own
    /// stream — this is the serve-side primitive that steps many
    /// sensors' states in a single batched call. Gate caches are kept
    /// in `ws` but only until the next step.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `h_prev` have mismatched shapes.
    pub fn step(&self, x: &Matrix, h_prev: &Matrix, h_out: &mut Matrix, ws: &mut GruWorkspace) {
        let GruWorkspace {
            scratch,
            gx_z,
            gx_r,
            gx_n,
            gh,
            step_z,
            step_r,
            step_n,
            step_rh,
            ..
        } = ws;
        step_core(
            self, x, h_prev, step_z, step_r, step_n, step_rh, h_out, gx_z, gx_r, gx_n, gh, scratch,
        );
    }

    /// Forward pass over a whole sequence: `xs[t]` is the `n × in_dim`
    /// batch at timestep `t`, `h0` the initial hidden state
    /// (`n × hidden`). All hidden states and gate values are cached in
    /// `ws` for a following [`Gru::backward_seq`]; the final state is
    /// [`GruWorkspace::h_last`].
    ///
    /// Feeding a sequence in chunks with the carried state (or stepping
    /// it one timestep at a time via [`Gru::step`]) produces bitwise
    /// identical hidden states — the chunking only changes which buffer
    /// holds the intermediate.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any batch shape is inconsistent.
    pub fn forward_seq(&self, xs: &[Matrix], h0: &Matrix, ws: &mut GruWorkspace) {
        assert!(!xs.is_empty(), "forward_seq: empty sequence");
        ws.prepare(xs.len());
        let GruWorkspace {
            scratch,
            gx_z,
            gx_r,
            gx_n,
            gh,
            hs,
            zs,
            rs,
            ns,
            rhs,
            ..
        } = ws;
        if hs[0].ensure_shape(h0.rows(), h0.cols()) {
            scratch.note_grow();
        }
        hs[0].as_mut_slice().copy_from_slice(h0.as_slice());
        for (t, x) in xs.iter().enumerate() {
            let (before, after) = hs.split_at_mut(t + 1);
            step_core(
                self,
                x,
                &before[t],
                &mut zs[t],
                &mut rs[t],
                &mut ns[t],
                &mut rhs[t],
                &mut after[0],
                gx_z,
                gx_r,
                gx_n,
                gh,
                scratch,
            );
        }
    }

    /// Backward pass through time. Requires a preceding
    /// [`Gru::forward_seq`] over the same `xs` on the same workspace;
    /// `grad_h_last` is `∂L/∂h_T` (`n × hidden`) — for a classifier
    /// reading only the final hidden state this is the head's input
    /// gradient, and the per-timestep loss terms are zero.
    ///
    /// Parameter gradients accumulate over timesteps in fixed reverse
    /// order (`t = T−1 … 0`) into the workspace accumulators
    /// ([`GruWorkspace::grad_w_z`] …), so the result is exactly
    /// reproducible for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if the workspace was not filled by a matching forward
    /// pass or `grad_h_last` has the wrong shape.
    pub fn backward_seq(&self, xs: &[Matrix], grad_h_last: &Matrix, ws: &mut GruWorkspace) {
        let t_len = xs.len();
        assert_eq!(
            ws.zs.len(),
            t_len,
            "backward_seq: workspace not filled by forward_seq"
        );
        let (in_dim, hd) = (self.in_dim(), self.hidden_dim());
        ws.prepare_grads(in_dim, hd);
        let GruWorkspace {
            scratch,
            hs,
            zs,
            rs,
            ns,
            rhs,
            dh,
            dh_prev,
            daz,
            dar,
            dan,
            drh,
            tmp_h,
            tmp_w,
            tmp_b,
            gw_z,
            gw_r,
            gw_n,
            gu_z,
            gu_r,
            gu_n,
            gb_z,
            gb_r,
            gb_n,
            ..
        } = ws;
        let last = hs.last().expect("forward_seq has run");
        assert_eq!(
            grad_h_last.shape(),
            last.shape(),
            "backward_seq: grad shape"
        );
        if dh.ensure_shape(grad_h_last.rows(), grad_h_last.cols()) {
            scratch.note_grow();
        }
        dh.as_mut_slice().copy_from_slice(grad_h_last.as_slice());

        for t in (0..t_len).rev() {
            let (x, h_prev) = (&xs[t], &hs[t]);
            let (z, r, n, rh) = (&zs[t], &rs[t], &ns[t], &rhs[t]);
            let m = x.rows();
            for buf in [
                &mut *daz,
                &mut *dar,
                &mut *dan,
                &mut *drh,
                &mut *dh_prev,
                &mut *tmp_h,
            ] {
                if buf.ensure_shape(m, hd) {
                    scratch.note_grow();
                }
            }

            // ∂L/∂n = dh ⊙ (1−z); through tanh: dan = ∂L/∂n ⊙ (1−n²).
            for (((d, &g), &zv), &nv) in dan
                .as_mut_slice()
                .iter_mut()
                .zip(dh.as_slice())
                .zip(z.as_slice())
                .zip(n.as_slice())
            {
                *d = g * (1.0 - zv) * (1.0 - nv * nv);
            }
            // ∂L/∂z = dh ⊙ (h_prev − n); through σ: daz = ∂L/∂z ⊙ z(1−z).
            for ((((d, &g), &zv), &nv), &hp) in daz
                .as_mut_slice()
                .iter_mut()
                .zip(dh.as_slice())
                .zip(z.as_slice())
                .zip(n.as_slice())
                .zip(h_prev.as_slice())
            {
                *d = g * (hp - nv) * zv * (1.0 - zv);
            }
            // ∂L/∂(r⊙h_prev) = dan · U_nᵀ.
            kernels::gemm_nt(
                m,
                hd,
                hd,
                dan.as_slice(),
                self.u_n.as_slice(),
                drh.as_mut_slice(),
                scratch,
            );
            // ∂L/∂r = drh ⊙ h_prev; through σ: dar = ∂L/∂r ⊙ r(1−r).
            for (((d, &dr), &hp), &rv) in dar
                .as_mut_slice()
                .iter_mut()
                .zip(drh.as_slice())
                .zip(h_prev.as_slice())
                .zip(r.as_slice())
            {
                *d = dr * hp * rv * (1.0 - rv);
            }

            // Parameter gradients, accumulated in fixed timestep order.
            accumulate_tn(x, daz, gw_z, tmp_w, scratch);
            accumulate_tn(x, dar, gw_r, tmp_w, scratch);
            accumulate_tn(x, dan, gw_n, tmp_w, scratch);
            accumulate_tn(h_prev, daz, gu_z, tmp_w, scratch);
            accumulate_tn(h_prev, dar, gu_r, tmp_w, scratch);
            accumulate_tn(rh, dan, gu_n, tmp_w, scratch);
            if tmp_b.capacity() < hd {
                scratch.note_grow();
            }
            daz.col_sums_into(tmp_b);
            for (g, &v) in gb_z.iter_mut().zip(tmp_b.iter()) {
                *g += v;
            }
            dar.col_sums_into(tmp_b);
            for (g, &v) in gb_r.iter_mut().zip(tmp_b.iter()) {
                *g += v;
            }
            dan.col_sums_into(tmp_b);
            for (g, &v) in gb_n.iter_mut().zip(tmp_b.iter()) {
                *g += v;
            }

            // ∂L/∂h_prev = dh⊙z + drh⊙r + daz·U_zᵀ + dar·U_rᵀ.
            for ((((d, &g), &zv), &dr), &rv) in dh_prev
                .as_mut_slice()
                .iter_mut()
                .zip(dh.as_slice())
                .zip(z.as_slice())
                .zip(drh.as_slice())
                .zip(r.as_slice())
            {
                *d = g * zv + dr * rv;
            }
            kernels::gemm_nt(
                m,
                hd,
                hd,
                daz.as_slice(),
                self.u_z.as_slice(),
                tmp_h.as_mut_slice(),
                scratch,
            );
            for (d, &v) in dh_prev.as_mut_slice().iter_mut().zip(tmp_h.as_slice()) {
                *d += v;
            }
            kernels::gemm_nt(
                m,
                hd,
                hd,
                dar.as_slice(),
                self.u_r.as_slice(),
                tmp_h.as_mut_slice(),
                scratch,
            );
            for (d, &v) in dh_prev.as_mut_slice().iter_mut().zip(tmp_h.as_slice()) {
                *d += v;
            }
            std::mem::swap(dh, dh_prev);
        }
    }
    // lint:end_no_alloc
}

/// The shared step computation behind [`Gru::step`] and
/// [`Gru::forward_seq`] — one code path, so chunked and one-shot
/// scoring cannot diverge.
// lint:no_alloc
#[allow(clippy::too_many_arguments)]
fn step_core(
    gru: &Gru,
    x: &Matrix,
    h_prev: &Matrix,
    z: &mut Matrix,
    r: &mut Matrix,
    n: &mut Matrix,
    rh: &mut Matrix,
    h_out: &mut Matrix,
    gx_z: &mut Matrix,
    gx_r: &mut Matrix,
    gx_n: &mut Matrix,
    gh: &mut Matrix,
    scratch: &mut Scratch,
) {
    let (m, in_dim, hd) = (x.rows(), gru.in_dim(), gru.hidden_dim());
    assert_eq!(x.cols(), in_dim, "gru step: input width");
    assert_eq!(h_prev.shape(), (m, hd), "gru step: hidden shape");
    for buf in [
        &mut *z,
        &mut *r,
        &mut *n,
        &mut *rh,
        &mut *h_out,
        &mut *gx_z,
        &mut *gx_r,
        &mut *gx_n,
        &mut *gh,
    ] {
        if buf.ensure_shape(m, hd) {
            scratch.note_grow();
        }
    }

    // Input-side products for all three gates.
    kernels::gemm(
        m,
        in_dim,
        hd,
        x.as_slice(),
        gru.w_z.as_slice(),
        gx_z.as_mut_slice(),
        scratch,
    );
    kernels::gemm(
        m,
        in_dim,
        hd,
        x.as_slice(),
        gru.w_r.as_slice(),
        gx_r.as_mut_slice(),
        scratch,
    );
    kernels::gemm(
        m,
        in_dim,
        hd,
        x.as_slice(),
        gru.w_n.as_slice(),
        gx_n.as_mut_slice(),
        scratch,
    );

    // Update gate: z = σ(x W_z + h_prev U_z + b_z).
    kernels::gemm(
        m,
        hd,
        hd,
        h_prev.as_slice(),
        gru.u_z.as_slice(),
        gh.as_mut_slice(),
        scratch,
    );
    gate_combine(z, gx_z, gh, &gru.b_z, sigmoid);
    // Reset gate: r = σ(x W_r + h_prev U_r + b_r).
    kernels::gemm(
        m,
        hd,
        hd,
        h_prev.as_slice(),
        gru.u_r.as_slice(),
        gh.as_mut_slice(),
        scratch,
    );
    gate_combine(r, gx_r, gh, &gru.b_r, sigmoid);
    // rh = r ⊙ h_prev (cached: the candidate's recurrent input and
    // the `gU_n` accumulation operand in BPTT).
    for ((d, &rv), &hv) in rh
        .as_mut_slice()
        .iter_mut()
        .zip(r.as_slice())
        .zip(h_prev.as_slice())
    {
        *d = rv * hv;
    }
    // Candidate: n = tanh(x W_n + rh U_n + b_n).
    kernels::gemm(
        m,
        hd,
        hd,
        rh.as_slice(),
        gru.u_n.as_slice(),
        gh.as_mut_slice(),
        scratch,
    );
    gate_combine(n, gx_n, gh, &gru.b_n, f64::tanh);
    // h = (1 − z) ⊙ n + z ⊙ h_prev.
    for (((d, &zv), &nv), &hp) in h_out
        .as_mut_slice()
        .iter_mut()
        .zip(z.as_slice())
        .zip(n.as_slice())
        .zip(h_prev.as_slice())
    {
        *d = (1.0 - zv) * nv + zv * hp;
    }
}

/// `out[i,j] = f(gx[i,j] + gh[i,j] + bias[j])` — a single fixed-order
/// elementwise pass, so the gate is deterministic by construction.
fn gate_combine(out: &mut Matrix, gx: &Matrix, gh: &Matrix, bias: &[f64], f: fn(f64) -> f64) {
    let hd = bias.len();
    for ((orow, gxrow), ghrow) in out
        .as_mut_slice()
        .chunks_exact_mut(hd)
        .zip(gx.as_slice().chunks_exact(hd))
        .zip(gh.as_slice().chunks_exact(hd))
    {
        for (j, o) in orow.iter_mut().enumerate() {
            *o = f(gxrow[j] + ghrow[j] + bias[j]);
        }
    }
}

/// `acc += aᵀ · b` via [`kernels::gemm_tn`] into a reusable temporary
/// (the kernel overwrites its output, so accumulation is an explicit
/// fixed-order elementwise add).
fn accumulate_tn(
    a: &Matrix,
    b: &Matrix,
    acc: &mut Matrix,
    tmp: &mut Matrix,
    scratch: &mut Scratch,
) {
    let (m, ca, cb) = (a.rows(), a.cols(), b.cols());
    debug_assert_eq!(acc.shape(), (ca, cb), "accumulate_tn: accumulator shape");
    if tmp.ensure_shape(ca, cb) {
        scratch.note_grow();
    }
    kernels::gemm_tn(
        m,
        ca,
        cb,
        a.as_slice(),
        b.as_slice(),
        tmp.as_mut_slice(),
        scratch,
    );
    for (d, &v) in acc.as_mut_slice().iter_mut().zip(tmp.as_slice()) {
        *d += v;
    }
}
// lint:end_no_alloc

/// Caller-owned buffers for repeated GRU steps and BPTT passes — the
/// recurrent analogue of [`crate::MlpWorkspace`].
#[derive(Debug, Clone, Default)]
pub struct GruWorkspace {
    pub(crate) scratch: Scratch,
    // Per-step GEMM outputs (overwritten every step).
    gx_z: Matrix,
    gx_r: Matrix,
    gx_n: Matrix,
    gh: Matrix,
    // Gate caches for the stateful single-step path.
    step_z: Matrix,
    step_r: Matrix,
    step_n: Matrix,
    step_rh: Matrix,
    /// `hs[0]` is the initial state copy; `hs[t+1]` the state after
    /// consuming `xs[t]`.
    hs: Vec<Matrix>,
    zs: Vec<Matrix>,
    rs: Vec<Matrix>,
    ns: Vec<Matrix>,
    rhs: Vec<Matrix>,
    // BPTT temporaries.
    dh: Matrix,
    dh_prev: Matrix,
    daz: Matrix,
    dar: Matrix,
    dan: Matrix,
    drh: Matrix,
    tmp_h: Matrix,
    tmp_w: Matrix,
    tmp_b: Vec<f64>,
    // Parameter gradient accumulators.
    gw_z: Matrix,
    gw_r: Matrix,
    gw_n: Matrix,
    gu_z: Matrix,
    gu_r: Matrix,
    gu_n: Matrix,
    gb_z: Vec<f64>,
    gb_r: Vec<f64>,
    gb_n: Vec<f64>,
}

impl GruWorkspace {
    /// An empty workspace running the kernels single-threaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace with the given kernel parallelism.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        Self {
            scratch: Scratch::with_parallelism(parallelism),
            ..Self::default()
        }
    }

    /// Replaces the kernel parallelism policy.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.scratch.set_parallelism(parallelism);
    }

    /// Number of buffer-growth events since creation. Flat across
    /// iterations ⇒ the steady state is allocation-free.
    pub fn reallocs(&self) -> u64 {
        self.scratch.reallocs()
    }

    /// The GEMM scratch, for callers composing their own kernel calls
    /// with this workspace's buffers.
    pub fn scratch_mut(&mut self) -> &mut Scratch {
        &mut self.scratch
    }

    /// The final hidden state of the last [`Gru::forward_seq`] call.
    ///
    /// # Panics
    ///
    /// Panics if no sequence forward pass has run yet.
    pub fn h_last(&self) -> &Matrix {
        self.hs.last().expect("forward_seq has run")
    }

    /// The cached hidden state after `t` timesteps (`t = 0` is the
    /// initial state copy).
    pub fn hidden(&self, t: usize) -> &Matrix {
        &self.hs[t]
    }

    /// `∂L/∂W_z` from the last [`Gru::backward_seq`].
    pub fn grad_w_z(&self) -> &Matrix {
        &self.gw_z
    }

    /// `∂L/∂W_r` from the last [`Gru::backward_seq`].
    pub fn grad_w_r(&self) -> &Matrix {
        &self.gw_r
    }

    /// `∂L/∂W_n` from the last [`Gru::backward_seq`].
    pub fn grad_w_n(&self) -> &Matrix {
        &self.gw_n
    }

    /// `∂L/∂U_z` from the last [`Gru::backward_seq`].
    pub fn grad_u_z(&self) -> &Matrix {
        &self.gu_z
    }

    /// `∂L/∂U_r` from the last [`Gru::backward_seq`].
    pub fn grad_u_r(&self) -> &Matrix {
        &self.gu_r
    }

    /// `∂L/∂U_n` from the last [`Gru::backward_seq`].
    pub fn grad_u_n(&self) -> &Matrix {
        &self.gu_n
    }

    /// `∂L/∂b_z` from the last [`Gru::backward_seq`].
    pub fn grad_b_z(&self) -> &[f64] {
        &self.gb_z
    }

    /// `∂L/∂b_r` from the last [`Gru::backward_seq`].
    pub fn grad_b_r(&self) -> &[f64] {
        &self.gb_r
    }

    /// `∂L/∂b_n` from the last [`Gru::backward_seq`].
    pub fn grad_b_n(&self) -> &[f64] {
        &self.gb_n
    }

    /// Sizes the per-timestep cache vectors (spine growth only happens
    /// on first use or when the sequence gets longer).
    fn prepare(&mut self, t_len: usize) {
        if self.hs.capacity() < t_len + 1 {
            self.scratch.note_grow();
        }
        self.hs.resize_with(t_len + 1, Matrix::default);
        self.zs.resize_with(t_len, Matrix::default);
        self.rs.resize_with(t_len, Matrix::default);
        self.ns.resize_with(t_len, Matrix::default);
        self.rhs.resize_with(t_len, Matrix::default);
    }

    /// Shapes and zeroes the parameter-gradient accumulators.
    fn prepare_grads(&mut self, in_dim: usize, hd: usize) {
        for m in [&mut self.gw_z, &mut self.gw_r, &mut self.gw_n] {
            if m.ensure_shape(in_dim, hd) {
                self.scratch.note_grow();
            }
            m.as_mut_slice().fill(0.0);
        }
        for m in [&mut self.gu_z, &mut self.gu_r, &mut self.gu_n] {
            if m.ensure_shape(hd, hd) {
                self.scratch.note_grow();
            }
            m.as_mut_slice().fill(0.0);
        }
        for b in [&mut self.gb_z, &mut self.gb_r, &mut self.gb_n] {
            if b.capacity() < hd {
                self.scratch.note_grow();
            }
            b.clear();
            b.resize(hd, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_seq(t_len: usize, rows: usize, cols: usize) -> Vec<Matrix> {
        (0..t_len)
            .map(|t| {
                Matrix::from_fn(rows, cols, |r, c| {
                    (((t * rows + r) * cols + c) as f64 * 0.41).sin()
                })
            })
            .collect()
    }

    fn sum_h_last(gru: &Gru, xs: &[Matrix], h0: &Matrix) -> f64 {
        let mut ws = GruWorkspace::new();
        gru.forward_seq(xs, h0, &mut ws);
        ws.h_last().sum()
    }

    #[test]
    fn shapes_and_parameter_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let gru = Gru::new(5, 7, &mut rng);
        assert_eq!(gru.in_dim(), 5);
        assert_eq!(gru.hidden_dim(), 7);
        assert_eq!(gru.n_parameters(), 3 * (35 + 49 + 7));
        assert!(gru.is_finite());
        let xs = toy_seq(4, 3, 5);
        let mut ws = GruWorkspace::new();
        gru.forward_seq(&xs, &Matrix::zeros(3, 7), &mut ws);
        assert_eq!(ws.h_last().shape(), (3, 7));
    }

    #[test]
    fn zero_update_gate_bias_keeps_state_bounded() {
        // tanh candidate ⇒ |h| stays within [-1, 1] from h0 = 0.
        let mut rng = StdRng::seed_from_u64(2);
        let gru = Gru::new(4, 6, &mut rng);
        let xs = toy_seq(50, 2, 4);
        let mut ws = GruWorkspace::new();
        gru.forward_seq(&xs, &Matrix::zeros(2, 6), &mut ws);
        assert!(ws.h_last().as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn backward_matches_finite_differences_on_every_parameter() {
        // Scalar loss L = sum(h_T); central differences on all nine
        // parameter tensors, BPTT through 3 timesteps.
        let mut rng = StdRng::seed_from_u64(3);
        let gru = Gru::new(3, 4, &mut rng);
        let xs = toy_seq(3, 2, 3);
        let h0 = Matrix::zeros(2, 4);
        let mut ws = GruWorkspace::new();
        gru.forward_seq(&xs, &h0, &mut ws);
        gru.backward_seq(&xs, &Matrix::ones(2, 4), &mut ws);
        let eps = 1e-6;

        #[allow(clippy::type_complexity)]
        let mats: [(&str, fn(&mut Gru) -> &mut Matrix, &Matrix); 6] = [
            ("w_z", |g| &mut g.w_z, ws.grad_w_z()),
            ("w_r", |g| &mut g.w_r, ws.grad_w_r()),
            ("w_n", |g| &mut g.w_n, ws.grad_w_n()),
            ("u_z", |g| &mut g.u_z, ws.grad_u_z()),
            ("u_r", |g| &mut g.u_r, ws.grad_u_r()),
            ("u_n", |g| &mut g.u_n, ws.grad_u_n()),
        ];
        for (name, field, grad) in mats {
            let (rows, cols) = grad.shape();
            for rr in 0..rows {
                for cc in 0..cols {
                    let mut gp = gru.clone();
                    field(&mut gp)[(rr, cc)] += eps;
                    let mut gm = gru.clone();
                    field(&mut gm)[(rr, cc)] -= eps;
                    let numeric =
                        (sum_h_last(&gp, &xs, &h0) - sum_h_last(&gm, &xs, &h0)) / (2.0 * eps);
                    let analytic = grad[(rr, cc)];
                    assert!(
                        (numeric - analytic).abs() < 1e-5,
                        "d{name}[{rr},{cc}]: {numeric} vs {analytic}"
                    );
                }
            }
        }
        #[allow(clippy::type_complexity)]
        let biases: [(&str, fn(&mut Gru) -> &mut Vec<f64>, &[f64]); 3] = [
            ("b_z", |g| &mut g.b_z, ws.grad_b_z()),
            ("b_r", |g| &mut g.b_r, ws.grad_b_r()),
            ("b_n", |g| &mut g.b_n, ws.grad_b_n()),
        ];
        for (name, field, grad) in biases {
            for (i, &analytic) in grad.iter().enumerate() {
                let mut gp = gru.clone();
                field(&mut gp)[i] += eps;
                let mut gm = gru.clone();
                field(&mut gm)[i] -= eps;
                let numeric = (sum_h_last(&gp, &xs, &h0) - sum_h_last(&gm, &xs, &h0)) / (2.0 * eps);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "d{name}[{i}]: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn stepped_scoring_is_bitwise_equal_to_forward_seq() {
        let mut rng = StdRng::seed_from_u64(4);
        let gru = Gru::new(6, 5, &mut rng);
        let xs = toy_seq(9, 4, 6);
        let h0 = Matrix::zeros(4, 5);
        let mut ws = GruWorkspace::new();
        gru.forward_seq(&xs, &h0, &mut ws);
        let expected: Vec<Matrix> = (1..=xs.len()).map(|t| ws.hidden(t).clone()).collect();

        let mut step_ws = GruWorkspace::new();
        let mut h = h0.clone();
        let mut h_next = Matrix::default();
        for (t, x) in xs.iter().enumerate() {
            gru.step(x, &h, &mut h_next, &mut step_ws);
            assert_eq!(h_next, expected[t], "timestep {t}");
            std::mem::swap(&mut h, &mut h_next);
        }
    }

    #[test]
    fn chunked_forward_equals_one_shot() {
        let mut rng = StdRng::seed_from_u64(5);
        let gru = Gru::new(4, 8, &mut rng);
        let xs = toy_seq(10, 3, 4);
        let h0 = Matrix::zeros(3, 8);
        let mut ws = GruWorkspace::new();
        gru.forward_seq(&xs, &h0, &mut ws);
        let one_shot = ws.h_last().clone();

        for split in [1, 4, 7, 9] {
            let mut ws2 = GruWorkspace::new();
            gru.forward_seq(&xs[..split], &h0, &mut ws2);
            let carried = ws2.h_last().clone();
            gru.forward_seq(&xs[split..], &carried, &mut ws2);
            assert_eq!(ws2.h_last(), &one_shot, "split at {split}");
        }
    }

    #[test]
    fn batched_step_rows_equal_solo_steps() {
        // The serve contract: a sensor scored inside a batched step
        // gets the bit-identical hidden state it would get alone.
        let mut rng = StdRng::seed_from_u64(6);
        let gru = Gru::new(5, 6, &mut rng);
        let x = Matrix::from_fn(7, 5, |r, c| ((r * 5 + c) as f64 * 0.29).cos());
        let h_prev = Matrix::from_fn(7, 6, |r, c| ((r * 6 + c) as f64 * 0.17).sin());
        let mut ws = GruWorkspace::new();
        let mut h_batch = Matrix::default();
        gru.step(&x, &h_prev, &mut h_batch, &mut ws);
        for row in 0..7 {
            let xr = Matrix::from_fn(1, 5, |_, c| x[(row, c)]);
            let hr = Matrix::from_fn(1, 6, |_, c| h_prev[(row, c)]);
            let mut h_solo = Matrix::default();
            gru.step(&xr, &hr, &mut h_solo, &mut ws);
            assert_eq!(h_solo.row(0), h_batch.row(row), "row {row}");
        }
    }

    #[test]
    fn thread_count_is_bitwise_invisible() {
        let mut rng = StdRng::seed_from_u64(7);
        let gru = Gru::new(16, 24, &mut rng);
        let xs = toy_seq(6, 32, 16);
        let h0 = Matrix::zeros(32, 24);
        let run = |par: Parallelism| {
            let mut ws = GruWorkspace::with_parallelism(par);
            gru.forward_seq(&xs, &h0, &mut ws);
            gru.backward_seq(&xs, &Matrix::ones(32, 24), &mut ws);
            (
                ws.h_last().clone(),
                ws.grad_w_z().clone(),
                ws.grad_u_n().clone(),
                ws.grad_b_r().to_vec(),
            )
        };
        let single = run(Parallelism::Single);
        for t in [2, 4] {
            assert_eq!(single, run(Parallelism::Threads(t)), "{t} threads");
        }
    }

    #[test]
    fn steady_state_passes_do_not_reallocate() {
        let mut rng = StdRng::seed_from_u64(8);
        let gru = Gru::new(6, 10, &mut rng);
        let xs = toy_seq(5, 8, 6);
        let h0 = Matrix::zeros(8, 10);
        let mut ws = GruWorkspace::new();
        gru.forward_seq(&xs, &h0, &mut ws);
        gru.backward_seq(&xs, &Matrix::ones(8, 10), &mut ws);
        let warm = ws.reallocs();
        for _ in 0..20 {
            gru.forward_seq(&xs, &h0, &mut ws);
            gru.backward_seq(&xs, &Matrix::ones(8, 10), &mut ws);
        }
        assert_eq!(ws.reallocs(), warm, "steady-state pass reallocated");

        // The stateful single-step path must be allocation-free too.
        let mut h = h0.clone();
        let mut h_next = Matrix::default();
        gru.step(&xs[0], &h, &mut h_next, &mut ws);
        std::mem::swap(&mut h, &mut h_next);
        let warm_step = ws.reallocs();
        for x in xs.iter().cycle().take(40) {
            gru.step(x, &h, &mut h_next, &mut ws);
            std::mem::swap(&mut h, &mut h_next);
        }
        assert_eq!(ws.reallocs(), warm_step, "steady-state step reallocated");
    }
}
