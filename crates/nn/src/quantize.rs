//! Post-training int8 quantisation — the embedded-deployment extension.
//!
//! §IV-B positions the MLP for "resource-constrained devices (e.g.
//! Nucleo-L432KC)" and quotes a 15.18 KiB model. An f32 copy of the
//! paper's architecture is ~290 KiB, so a Nucleo-class deployment
//! implies aggressive weight compression; this module provides symmetric
//! per-tensor int8 quantisation (weights 1 byte each, biases kept f32)
//! and the accuracy-vs-size trade-off experiment.

use crate::activation::Activation;
use crate::mlp::Mlp;
use occusense_tensor::Matrix;

/// One quantised dense layer.
#[derive(Debug, Clone, PartialEq)]
struct QuantizedDense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major int8 weights (`in_dim × out_dim`).
    weights_q: Vec<i8>,
    /// Dequantisation scale: `w ≈ w_q · scale`.
    scale: f64,
    /// Biases kept at f32 precision (stored as f64 here, accounted as 4
    /// bytes each).
    bias: Vec<f64>,
    activation: Activation,
}

/// An int8-quantised copy of an [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
}

impl QuantizedMlp {
    /// Quantises a trained network with symmetric per-tensor scaling
    /// (`scale = max|w| / 127`).
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_nn::Mlp;
    /// use occusense_nn::quantize::QuantizedMlp;
    ///
    /// let mlp = Mlp::new(&[8, 16, 1], 3);
    /// let q = QuantizedMlp::from_mlp(&mlp);
    /// assert!(q.size_bytes() < mlp.n_parameters() * 8);
    /// ```
    pub fn from_mlp(mlp: &Mlp) -> Self {
        let layers = mlp
            .layers()
            .iter()
            .map(|layer| {
                let max_abs = layer.weights.max_abs().max(f64::MIN_POSITIVE);
                let scale = max_abs / 127.0;
                let weights_q = layer
                    .weights
                    .as_slice()
                    .iter()
                    .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8)
                    .collect();
                QuantizedDense {
                    in_dim: layer.in_dim(),
                    out_dim: layer.out_dim(),
                    weights_q,
                    scale,
                    bias: layer.bias.clone(),
                    activation: layer.activation,
                }
            })
            .collect();
        Self { layers }
    }

    /// Deployment size in bytes: one byte per weight, four bytes per bias
    /// value and per-tensor scale.
    pub fn size_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights_q.len() + 4 * l.bias.len() + 4)
            .sum()
    }

    /// Deployment size in KiB.
    pub fn size_kib(&self) -> f64 {
        self.size_bytes() as f64 / 1024.0
    }

    /// Reconstructs an f64 [`Mlp`] with the dequantised weights — the
    /// reference implementation of int8 inference (a microcontroller
    /// would run the integer arithmetic directly).
    pub fn dequantize(&self) -> Mlp {
        let layers = self
            .layers
            .iter()
            .map(|l| crate::layer::Dense {
                weights: Matrix::from_vec(
                    l.in_dim,
                    l.out_dim,
                    l.weights_q.iter().map(|&q| q as f64 * l.scale).collect(),
                ),
                bias: l.bias.clone(),
                activation: l.activation,
            })
            .collect();
        Mlp::from_layers(layers)
    }

    /// Forward pass through the dequantised network.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        self.dequantize().predict(x)
    }

    /// Sigmoid probabilities of the first output column.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.dequantize().predict_proba(x)
    }

    /// Thresholded binary labels.
    pub fn predict_labels(&self, x: &Matrix) -> Vec<u8> {
        self.dequantize().predict_labels(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::BceWithLogits;
    use crate::optim::AdamW;
    use crate::train::{TrainConfig, Trainer};

    fn trained_xor() -> (Mlp, Matrix, Vec<u8>) {
        let x = Matrix::from_rows(&[&[0., 0.], &[0., 1.], &[1., 0.], &[1., 1.]]);
        let y = Matrix::col_vector(&[0., 1., 1., 0.]);
        let mut mlp = Mlp::new(&[2, 16, 1], 7);
        let mut optim = AdamW::new(0.02, 0.0);
        Trainer::new(TrainConfig {
            epochs: 400,
            batch_size: 4,
            shuffle_seed: 1,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
        let labels = mlp.predict_labels(&x);
        (mlp, x, labels)
    }

    #[test]
    fn quantized_network_preserves_xor() {
        let (mlp, x, labels) = trained_xor();
        let q = QuantizedMlp::from_mlp(&mlp);
        assert_eq!(q.predict_labels(&x), labels);
    }

    #[test]
    fn quantized_outputs_close_to_original() {
        let (mlp, x, _) = trained_xor();
        let q = QuantizedMlp::from_mlp(&mlp);
        let orig = mlp.predict(&x);
        let quant = q.predict(&x);
        let rel = (&orig - &quant).max_abs() / orig.max_abs().max(1e-9);
        assert!(rel < 0.25, "relative deviation {rel}");
    }

    #[test]
    fn size_accounting() {
        let mlp = Mlp::new(&[64, 128, 256, 128, 1], 1);
        let q = QuantizedMlp::from_mlp(&mlp);
        // 1 byte per weight vs 8 bytes per f64 parameter.
        assert!(q.size_bytes() < mlp.n_parameters() * 2);
        // The paper's architecture lands well under 100 KiB at int8.
        assert!(q.size_kib() < 100.0, "{} KiB", q.size_kib());
        assert!(q.size_kib() > 10.0);
    }

    #[test]
    fn quantization_is_deterministic() {
        let mlp = Mlp::new(&[4, 8, 1], 5);
        assert_eq!(QuantizedMlp::from_mlp(&mlp), QuantizedMlp::from_mlp(&mlp));
    }

    #[test]
    fn dequantized_weights_within_half_step() {
        let mlp = Mlp::new(&[6, 10, 2], 9);
        let q = QuantizedMlp::from_mlp(&mlp);
        let back = q.dequantize();
        for (orig, deq) in mlp.layers().iter().zip(back.layers()) {
            let max_abs = orig.weights.max_abs();
            let step = max_abs / 127.0;
            let err = (&orig.weights - &deq.weights).max_abs();
            assert!(err <= step / 2.0 + 1e-12, "err {err} vs step {step}");
            // Biases untouched.
            assert_eq!(orig.bias, deq.bias);
        }
    }
}
