//! Reusable forward/backward workspaces: the zero-allocation
//! steady-state path through the network.
//!
//! [`MlpWorkspace`] owns every intermediate tensor of a forward and
//! backward pass (activations, pre-activations, masked deltas, upstream
//! gradients, parameter gradients) plus the GEMM pack
//! [`Scratch`]. After a warm-up pass at the largest batch size, repeated
//! [`Mlp::forward_ws`]/[`Mlp::backward_ws`] calls perform **no heap
//! allocations** — verified by asserting [`MlpWorkspace::reallocs`]
//! stays flat, which the training and serving tests do.
//!
//! Results are bitwise identical to the convenience
//! [`Mlp::forward`]/[`Mlp::backward`] path (same kernels, same
//! summation order), so the workspace is purely a throughput/allocation
//! optimisation, never a numerics change.

use crate::mlp::Mlp;
use occusense_tensor::kernels::{Parallelism, Scratch};
use occusense_tensor::vecops::sigmoid;
use occusense_tensor::Matrix;

/// Caller-owned buffers for repeated MLP forward/backward passes.
#[derive(Debug, Clone, Default)]
pub struct MlpWorkspace {
    pub(crate) scratch: Scratch,
    /// `activations[0]` is the input copy; `activations[i+1]` the
    /// output of layer `i`.
    activations: Vec<Matrix>,
    /// `preacts[i]` is the pre-activation of layer `i`.
    preacts: Vec<Matrix>,
    /// `deltas[i]` is `∂L/∂z` of layer `i` (pure scratch).
    deltas: Vec<Matrix>,
    /// `upstreams[i]` is `∂L/∂x` of layer `i`, consumed by layer `i-1`.
    /// `upstreams[0]` (the network-input gradient) is only produced by
    /// [`Mlp::backward_ws_input_grad`]; plain [`Mlp::backward_ws`]
    /// skips it.
    upstreams: Vec<Matrix>,
    grad_w: Vec<Matrix>,
    grad_b: Vec<Vec<f64>>,
}

impl MlpWorkspace {
    /// An empty workspace running the kernels single-threaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace with the given kernel parallelism.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        Self {
            scratch: Scratch::with_parallelism(parallelism),
            ..Self::default()
        }
    }

    /// Replaces the kernel parallelism policy.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.scratch.set_parallelism(parallelism);
    }

    /// Number of buffer-growth events since creation (covering every
    /// matrix in the workspace plus the GEMM pack buffer). Flat across
    /// iterations ⇒ the steady state is allocation-free.
    pub fn reallocs(&self) -> u64 {
        self.scratch.reallocs()
    }

    /// The GEMM scratch (for callers composing their own kernel calls
    /// with this workspace's buffers).
    pub fn scratch_mut(&mut self) -> &mut Scratch {
        &mut self.scratch
    }

    /// The network output of the last [`Mlp::forward_ws`] call.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has run yet.
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("forward_ws has run")
    }

    /// The cached activation feeding layer `i` (input copy for `i = 0`).
    pub fn activation(&self, i: usize) -> &Matrix {
        &self.activations[i]
    }

    /// The cached pre-activation of layer `i`.
    pub fn preact(&self, i: usize) -> &Matrix {
        &self.preacts[i]
    }

    /// Per-layer weight gradients from the last [`Mlp::backward_ws`].
    pub fn grad_w(&self) -> &[Matrix] {
        &self.grad_w
    }

    /// Per-layer bias gradients from the last [`Mlp::backward_ws`].
    pub fn grad_b(&self) -> &[Vec<f64>] {
        &self.grad_b
    }

    /// The gradient with respect to the network input, from the last
    /// [`Mlp::backward_ws_input_grad`] call (plain
    /// [`Mlp::backward_ws`] does not produce it).
    ///
    /// # Panics
    ///
    /// Panics if no backward pass has run yet.
    pub fn grad_input(&self) -> &Matrix {
        &self.upstreams[0]
    }

    /// Sizes the per-layer buffer vectors (spine growth only happens on
    /// first use or when the network shape changes).
    fn prepare(&mut self, n_layers: usize) {
        if self.activations.capacity() < n_layers + 1 {
            self.scratch.note_grow();
        }
        self.activations.resize_with(n_layers + 1, Matrix::default);
        self.preacts.resize_with(n_layers, Matrix::default);
        self.deltas.resize_with(n_layers, Matrix::default);
        self.upstreams.resize_with(n_layers, Matrix::default);
        self.grad_w.resize_with(n_layers, Matrix::default);
        self.grad_b.resize_with(n_layers, Vec::new);
    }
}

impl Mlp {
    // The steady-state training loop lives below: no allocation once
    // the workspace has capacity (spine growth happens in `prepare`,
    // above, where it is counted by the scratch realloc counter).
    // lint:no_alloc

    /// Forward pass through caller-owned buffers — the workspace
    /// analogue of [`Mlp::forward`], bitwise identical to it and
    /// allocation-free once the workspace has capacity. Intermediates
    /// are cached in `ws` for a following [`Mlp::backward_ws`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    pub fn forward_ws(&self, x: &Matrix, ws: &mut MlpWorkspace) {
        assert_eq!(
            x.cols(),
            self.input_dim(),
            "forward_ws: feature dimension mismatch"
        );
        ws.prepare(self.layers().len());
        if ws.activations[0].ensure_shape(x.rows(), x.cols()) {
            ws.scratch.note_grow();
        }
        ws.activations[0]
            .as_mut_slice()
            .copy_from_slice(x.as_slice());
        for (i, layer) in self.layers().iter().enumerate() {
            let (before, after) = ws.activations.split_at_mut(i + 1);
            layer.forward_into(
                &before[i],
                &mut ws.preacts[i],
                &mut after[0],
                &mut ws.scratch,
            );
        }
    }

    /// Backward pass through caller-owned buffers — the workspace
    /// analogue of [`Mlp::backward`]. Requires a preceding
    /// [`Mlp::forward_ws`] on the same workspace; parameter gradients
    /// land in [`MlpWorkspace::grad_w`]/[`MlpWorkspace::grad_b`].
    ///
    /// Unlike [`Mlp::backward`] this does **not** produce the gradient
    /// with respect to the network input (MLP training never consumes
    /// it), which also skips one `δ · W^T` product per step. Callers
    /// that do need it — the GRU head, Grad-CAM through a workspace —
    /// use [`Mlp::backward_ws_input_grad`].
    ///
    /// # Panics
    ///
    /// Panics if the workspace was not filled by a matching forward
    /// pass or `grad_output` has the wrong shape.
    pub fn backward_ws(&self, grad_output: &Matrix, ws: &mut MlpWorkspace) {
        self.backward_ws_impl(grad_output, ws, false);
    }

    /// [`Mlp::backward_ws`] plus the gradient with respect to the
    /// network input, retrievable via [`MlpWorkspace::grad_input`] —
    /// bitwise identical to the input gradient [`Mlp::backward`]
    /// returns. The temporal detector backpropagates this through the
    /// GRU (`∂L/∂h_last`).
    ///
    /// # Panics
    ///
    /// Panics if the workspace was not filled by a matching forward
    /// pass or `grad_output` has the wrong shape.
    pub fn backward_ws_input_grad(&self, grad_output: &Matrix, ws: &mut MlpWorkspace) {
        self.backward_ws_impl(grad_output, ws, true);
    }

    fn backward_ws_impl(&self, grad_output: &Matrix, ws: &mut MlpWorkspace, input_grad: bool) {
        let n_layers = self.layers().len();
        assert_eq!(
            ws.preacts.len(),
            n_layers,
            "backward_ws: workspace not filled by forward_ws"
        );
        for (i, layer) in self.layers().iter().enumerate().rev() {
            let (head, tail) = ws.upstreams.split_at_mut(i + 1);
            let upstream: &Matrix = if i + 1 == n_layers {
                grad_output
            } else {
                &tail[0]
            };
            layer.backward_into(
                &ws.activations[i],
                &ws.preacts[i],
                upstream,
                &mut ws.deltas[i],
                &mut ws.grad_w[i],
                &mut ws.grad_b[i],
                if i == 0 && !input_grad {
                    None
                } else {
                    Some(&mut head[i])
                },
                &mut ws.scratch,
            );
        }
    }

    /// Occupancy confidences (sigmoid of the first output column)
    /// written into `out` — the workspace analogue of
    /// [`Mlp::predict_proba`], bitwise identical to it and
    /// allocation-free once buffers have capacity.
    pub fn predict_proba_into(&self, x: &Matrix, ws: &mut MlpWorkspace, out: &mut Vec<f64>) {
        self.forward_ws(x, ws);
        let output = ws.activations.last().expect("forward_ws ran");
        if out.capacity() < output.rows() {
            ws.scratch.note_grow();
        }
        out.clear();
        // lint:allow(alloc, reason = "extend into a cleared caller-owned buffer: growth is one-time and counted via note_grow above")
        out.extend(output.rows_iter().map(|row| sigmoid(row[0])));
    }
    // lint:end_no_alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{BceWithLogits, Loss};
    use occusense_tensor::Matrix;

    fn toy_input(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f64 * 0.37).sin())
    }

    #[test]
    fn forward_ws_is_bitwise_equal_to_forward() {
        let mlp = Mlp::new(&[5, 16, 8, 2], 3);
        let mut ws = MlpWorkspace::new();
        for rows in [1, 3, 17, 40] {
            let x = toy_input(rows, 5);
            let pass = mlp.forward(&x);
            mlp.forward_ws(&x, &mut ws);
            assert_eq!(ws.output(), pass.output(), "{rows} rows");
            for i in 0..mlp.layers().len() {
                assert_eq!(ws.preact(i), &pass.preacts[i]);
                assert_eq!(ws.activation(i), &pass.activations[i]);
            }
        }
    }

    #[test]
    fn backward_ws_matches_convenience_backward() {
        let mlp = Mlp::new(&[4, 12, 6, 1], 5);
        let x = toy_input(9, 4);
        let y = Matrix::from_fn(9, 1, |r, _| (r % 2) as f64);
        let pass = mlp.forward(&x);
        let grad_out = BceWithLogits.grad(pass.output(), &y);
        let (grads, _) = mlp.backward(&pass, &grad_out);

        let mut ws = MlpWorkspace::new();
        mlp.forward_ws(&x, &mut ws);
        mlp.backward_ws(&grad_out, &mut ws);
        for (i, (gw, gb)) in grads.iter().enumerate() {
            assert_eq!(&ws.grad_w()[i], gw, "layer {i} weights");
            assert_eq!(&ws.grad_b()[i], gb, "layer {i} bias");
        }
    }

    #[test]
    fn backward_ws_input_grad_matches_convenience_backward() {
        let mlp = Mlp::new(&[4, 12, 6, 1], 5);
        let x = toy_input(9, 4);
        let y = Matrix::from_fn(9, 1, |r, _| (r % 2) as f64);
        let pass = mlp.forward(&x);
        let grad_out = BceWithLogits.grad(pass.output(), &y);
        let (grads, grad_x) = mlp.backward(&pass, &grad_out);

        let mut ws = MlpWorkspace::new();
        mlp.forward_ws(&x, &mut ws);
        mlp.backward_ws_input_grad(&grad_out, &mut ws);
        assert_eq!(ws.grad_input(), &grad_x, "input gradient");
        for (i, (gw, gb)) in grads.iter().enumerate() {
            assert_eq!(&ws.grad_w()[i], gw, "layer {i} weights");
            assert_eq!(&ws.grad_b()[i], gb, "layer {i} bias");
        }
    }

    #[test]
    fn steady_state_passes_do_not_reallocate() {
        let mlp = Mlp::new(&[6, 10, 4, 1], 7);
        let x = toy_input(32, 6);
        let y = Matrix::from_fn(32, 1, |r, _| (r % 2) as f64);
        let mut ws = MlpWorkspace::new();
        let mut grad_out = Matrix::default();

        // Warm up at the steady-state batch size.
        mlp.forward_ws(&x, &mut ws);
        BceWithLogits.grad_into(ws.output(), &y, &mut grad_out);
        mlp.backward_ws(&grad_out, &mut ws);
        let warm = ws.reallocs();

        for _ in 0..20 {
            mlp.forward_ws(&x, &mut ws);
            BceWithLogits.grad_into(ws.output(), &y, &mut grad_out);
            mlp.backward_ws(&grad_out, &mut ws);
        }
        assert_eq!(ws.reallocs(), warm, "steady-state pass reallocated");
    }

    #[test]
    fn predict_proba_into_matches_predict_proba() {
        let mlp = Mlp::new(&[3, 8, 1], 11);
        let x = toy_input(13, 3);
        let mut ws = MlpWorkspace::new();
        let mut out = Vec::new();
        mlp.predict_proba_into(&x, &mut ws, &mut out);
        assert_eq!(out, mlp.predict_proba(&x));
    }

    #[test]
    fn workspace_parallelism_is_bitwise_invisible() {
        let mlp = Mlp::new(&[8, 32, 16, 1], 13);
        let x = toy_input(64, 8);
        let run = |par: Parallelism| {
            let mut ws = MlpWorkspace::with_parallelism(par);
            mlp.forward_ws(&x, &mut ws);
            ws.output().clone()
        };
        let single = run(Parallelism::Single);
        for t in [2, 4] {
            assert_eq!(single, run(Parallelism::Threads(t)), "{t} threads");
        }
    }
}
