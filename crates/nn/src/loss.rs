//! Loss functions: binary cross-entropy with logits (Eq. 4) and MSE.

use occusense_tensor::vecops::sigmoid;
use occusense_tensor::Matrix;

/// A differentiable loss over a batch of network outputs.
pub trait Loss {
    /// Mean loss over the batch.
    ///
    /// `output` is the raw network output (`n × k`), `targets` the same
    /// shape.
    fn loss(&self, output: &Matrix, targets: &Matrix) -> f64;

    /// Gradient `∂L/∂output`, same shape as `output`.
    fn grad(&self, output: &Matrix, targets: &Matrix) -> Matrix;

    /// Writes the gradient into `out` (reshaped as needed). The default
    /// delegates to [`Loss::grad`] and copies; the losses used on the
    /// training hot paths ([`BceWithLogits`], [`Mse`],
    /// [`SoftmaxCrossEntropy`]) override it to be allocation-free once
    /// `out` has capacity.
    fn grad_into(&self, output: &Matrix, targets: &Matrix, out: &mut Matrix) {
        let g = self.grad(output, targets);
        out.ensure_shape(g.rows(), g.cols());
        out.as_mut_slice().copy_from_slice(g.as_slice());
    }
}

/// Binary cross-entropy computed from *logits* (Eq. 4 with the sigmoid
/// folded in for numerical stability):
///
/// ```text
/// BCE = −(1/T) Σ yₜ log σ(zₜ) + (1 − yₜ) log(1 − σ(zₜ))
///     = (1/T) Σ max(z,0) − z·y + ln(1 + e^{−|z|})
/// ```
///
/// The gradient is the classic `（σ(z) − y)/T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BceWithLogits;

impl Loss for BceWithLogits {
    fn loss(&self, output: &Matrix, targets: &Matrix) -> f64 {
        assert_eq!(output.shape(), targets.shape(), "bce: shape mismatch");
        let n = output.len().max(1) as f64;
        output
            .as_slice()
            .iter()
            .zip(targets.as_slice())
            .map(|(&z, &y)| z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln())
            .sum::<f64>()
            / n
    }

    fn grad(&self, output: &Matrix, targets: &Matrix) -> Matrix {
        assert_eq!(output.shape(), targets.shape(), "bce: shape mismatch");
        let n = output.len().max(1) as f64;
        output
            .try_zip_map(targets, "bce_grad", |z, y| (sigmoid(z) - y) / n)
            .expect("shapes checked")
    }

    fn grad_into(&self, output: &Matrix, targets: &Matrix, out: &mut Matrix) {
        assert_eq!(output.shape(), targets.shape(), "bce: shape mismatch");
        let n = output.len().max(1) as f64;
        out.ensure_shape(output.rows(), output.cols());
        for ((o, &z), &y) in out
            .as_mut_slice()
            .iter_mut()
            .zip(output.as_slice())
            .zip(targets.as_slice())
        {
            *o = (sigmoid(z) - y) / n;
        }
    }
}

/// Mean squared error, used for the humidity/temperature regression
/// (§V-D "minimization of a squared error objective").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mse;

impl Loss for Mse {
    fn loss(&self, output: &Matrix, targets: &Matrix) -> f64 {
        assert_eq!(output.shape(), targets.shape(), "mse: shape mismatch");
        let n = output.len().max(1) as f64;
        output
            .as_slice()
            .iter()
            .zip(targets.as_slice())
            .map(|(&o, &t)| (o - t) * (o - t))
            .sum::<f64>()
            / n
    }

    fn grad(&self, output: &Matrix, targets: &Matrix) -> Matrix {
        assert_eq!(output.shape(), targets.shape(), "mse: shape mismatch");
        let n = output.len().max(1) as f64;
        output
            .try_zip_map(targets, "mse_grad", |o, t| 2.0 * (o - t) / n)
            .expect("shapes checked")
    }

    fn grad_into(&self, output: &Matrix, targets: &Matrix, out: &mut Matrix) {
        assert_eq!(output.shape(), targets.shape(), "mse: shape mismatch");
        let n = output.len().max(1) as f64;
        out.ensure_shape(output.rows(), output.cols());
        for ((g, &o), &t) in out
            .as_mut_slice()
            .iter_mut()
            .zip(output.as_slice())
            .zip(targets.as_slice())
        {
            *g = 2.0 * (o - t) / n;
        }
    }
}

/// Softmax cross-entropy over one-hot targets, used by the multi-class
/// extensions (occupant counting, activity recognition — the paper's
/// §VI future work).
///
/// `output` holds raw logits (`n × k`); `targets` is one-hot (`n × k`).
/// The loss is the mean negative log-likelihood; the gradient is the
/// classic `(softmax(z) − y)/n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Row-wise softmax with the max-subtraction trick.
    pub fn softmax(logits: &Matrix) -> Matrix {
        let mut out = logits.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum.max(f64::MIN_POSITIVE);
            }
        }
        out
    }

    /// One-hot encodes class labels into an `n × k` target matrix.
    ///
    /// # Panics
    ///
    /// Panics if any label is `>= n_classes`.
    pub fn one_hot(labels: &[usize], n_classes: usize) -> Matrix {
        let mut y = Matrix::zeros(labels.len(), n_classes);
        for (r, &l) in labels.iter().enumerate() {
            assert!(
                l < n_classes,
                "label {l} out of range ({n_classes} classes)"
            );
            y[(r, l)] = 1.0;
        }
        y
    }

    /// Row-wise argmax — the predicted class per sample.
    pub fn argmax(logits: &Matrix) -> Vec<usize> {
        logits
            .rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }
}

impl Loss for SoftmaxCrossEntropy {
    fn loss(&self, output: &Matrix, targets: &Matrix) -> f64 {
        assert_eq!(
            output.shape(),
            targets.shape(),
            "softmax ce: shape mismatch"
        );
        let n = output.rows().max(1) as f64;
        let mut total = 0.0;
        for r in 0..output.rows() {
            let row = output.row(r);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let log_sum: f64 = row.iter().map(|v| (v - max).exp()).sum::<f64>().ln() + max;
            for (v, y) in row.iter().zip(targets.row(r)) {
                total -= y * (v - log_sum);
            }
        }
        total / n
    }

    fn grad(&self, output: &Matrix, targets: &Matrix) -> Matrix {
        assert_eq!(
            output.shape(),
            targets.shape(),
            "softmax ce: shape mismatch"
        );
        let n = output.rows().max(1) as f64;
        let p = Self::softmax(output);
        p.try_zip_map(targets, "softmax_ce_grad", |pi, yi| (pi - yi) / n)
            .expect("shapes checked")
    }

    fn grad_into(&self, output: &Matrix, targets: &Matrix, out: &mut Matrix) {
        assert_eq!(
            output.shape(),
            targets.shape(),
            "softmax ce: shape mismatch"
        );
        let n = output.rows().max(1) as f64;
        out.ensure_shape(output.rows(), output.cols());
        for r in 0..output.rows() {
            let logits = output.row(r);
            let g = out.row_mut(r);
            // Same max-subtraction softmax as `Self::softmax`, row by
            // row into the output buffer, so the gradient is bitwise
            // identical to the allocating `grad` path.
            let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for (gi, &z) in g.iter_mut().zip(logits) {
                *gi = (z - max).exp();
                sum += *gi;
            }
            for (gi, &y) in g.iter_mut().zip(targets.row(r)) {
                *gi = (*gi / sum.max(f64::MIN_POSITIVE) - y) / n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_grad(loss: &dyn Loss, output: &Matrix, targets: &Matrix) {
        let g = loss.grad(output, targets);
        let eps = 1e-6;
        for r in 0..output.rows() {
            for c in 0..output.cols() {
                let mut p = output.clone();
                p[(r, c)] += eps;
                let mut m = output.clone();
                m[(r, c)] -= eps;
                let numeric = (loss.loss(&p, targets) - loss.loss(&m, targets)) / (2.0 * eps);
                assert!(
                    (numeric - g[(r, c)]).abs() < 1e-5,
                    "grad[{r},{c}]: {numeric} vs {}",
                    g[(r, c)]
                );
            }
        }
    }

    #[test]
    fn bce_at_confident_correct_predictions_is_small() {
        let logits = Matrix::col_vector(&[10.0, -10.0]);
        let targets = Matrix::col_vector(&[1.0, 0.0]);
        assert!(BceWithLogits.loss(&logits, &targets) < 1e-4);
    }

    #[test]
    fn bce_at_confident_wrong_predictions_is_large() {
        let logits = Matrix::col_vector(&[10.0, -10.0]);
        let targets = Matrix::col_vector(&[0.0, 1.0]);
        assert!(BceWithLogits.loss(&logits, &targets) > 5.0);
    }

    #[test]
    fn bce_at_zero_logit_is_ln2() {
        let logits = Matrix::col_vector(&[0.0]);
        let targets = Matrix::col_vector(&[1.0]);
        assert!((BceWithLogits.loss(&logits, &targets) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn bce_is_stable_at_extreme_logits() {
        let logits = Matrix::col_vector(&[1e6, -1e6]);
        let targets = Matrix::col_vector(&[0.0, 1.0]);
        let l = BceWithLogits.loss(&logits, &targets);
        assert!(l.is_finite());
        let g = BceWithLogits.grad(&logits, &targets);
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bce_gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.3], &[-1.2], &[2.0]]);
        let targets = Matrix::from_rows(&[&[1.0], &[0.0], &[1.0]]);
        check_grad(&BceWithLogits, &logits, &targets);
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let out = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let tgt = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 6.0]]);
        // Squared errors: 1, 0, 0, 4 -> mean 1.25.
        assert!((Mse.loss(&out, &tgt) - 1.25).abs() < 1e-12);
        check_grad(&Mse, &out, &tgt);
    }

    #[test]
    fn mse_zero_iff_equal() {
        let out = Matrix::from_rows(&[&[1.5, -2.0]]);
        assert_eq!(Mse.loss(&out, &out), 0.0);
        assert!(Mse.grad(&out, &out).max_abs() == 0.0);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-100.0, 0.0, 100.0]]);
        let p = SoftmaxCrossEntropy::softmax(&logits);
        for r in 0..2 {
            let row = p.row(r);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // Extreme logits saturate without NaN.
        assert!(p[(1, 2)] > 1.0 - 1e-12);
    }

    #[test]
    fn one_hot_encoding() {
        let y = SoftmaxCrossEntropy::one_hot(&[2, 0], 3);
        assert_eq!(y.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(y.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_validates_labels() {
        SoftmaxCrossEntropy::one_hot(&[3], 3);
    }

    #[test]
    fn argmax_picks_largest() {
        let logits = Matrix::from_rows(&[&[0.1, 0.9, 0.2], &[5.0, -1.0, 3.0]]);
        assert_eq!(SoftmaxCrossEntropy::argmax(&logits), vec![1, 0]);
    }

    #[test]
    fn softmax_ce_grad_into_matches_grad_bitwise() {
        let logits =
            Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[100.0, 0.0, -100.0], &[0.0, 0.0, 0.0]]);
        let targets = SoftmaxCrossEntropy::one_hot(&[2, 0, 1], 3);
        let g = SoftmaxCrossEntropy.grad(&logits, &targets);
        let mut out = Matrix::default();
        SoftmaxCrossEntropy.grad_into(&logits, &targets, &mut out);
        assert_eq!(out.shape(), g.shape());
        for (a, b) in out.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn softmax_ce_known_values() {
        // Uniform logits over k classes: loss = ln k.
        let logits = Matrix::zeros(1, 4);
        let y = SoftmaxCrossEntropy::one_hot(&[1], 4);
        assert!((SoftmaxCrossEntropy.loss(&logits, &y) - 4.0f64.ln()).abs() < 1e-12);
        // Confident correct prediction: near zero.
        let confident = Matrix::from_rows(&[&[0.0, 50.0, 0.0, 0.0]]);
        assert!(SoftmaxCrossEntropy.loss(&confident, &y) < 1e-12);
        // Confident wrong prediction: large.
        let wrong = Matrix::from_rows(&[&[50.0, 0.0, 0.0, 0.0]]);
        assert!(SoftmaxCrossEntropy.loss(&wrong, &y) > 10.0);
    }

    #[test]
    fn softmax_ce_gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.3, -1.2, 0.8], &[2.0, 0.1, -0.4]]);
        let y = SoftmaxCrossEntropy::one_hot(&[2, 0], 3);
        check_grad(&SoftmaxCrossEntropy, &logits, &y);
    }

    #[test]
    fn softmax_ce_stable_at_extreme_logits() {
        let logits = Matrix::from_rows(&[&[1e6, -1e6, 0.0]]);
        let y = SoftmaxCrossEntropy::one_hot(&[1], 3);
        let l = SoftmaxCrossEntropy.loss(&logits, &y);
        assert!(l.is_finite());
        let g = SoftmaxCrossEntropy.grad(&logits, &y);
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }
}
