//! First-order optimisers: SGD (with momentum), Adam, and AdamW.
//!
//! The paper trains "via adaptive mini-batch gradient descent, with a
//! weight decay strategy \[23\]" — i.e. AdamW, Adam with *decoupled*
//! weight decay (Loshchilov & Hutter, ICLR 2019). All three optimisers
//! are provided so the training-throughput ablation can compare them.
//!
//! An optimiser updates flat parameter slices keyed by a `slot` id, so
//! weights and biases of every layer share one implementation; state
//! (momentum, moment estimates) is allocated lazily per slot, in a
//! `BTreeMap` — slots are only ever looked up by key today, but a
//! `HashMap` here would be a determinism hazard one refactor away
//! (any future iteration would visit slots in per-process random
//! order), which is exactly what `occusense-lint`'s determinism rule
//! bans from numeric paths.

use std::collections::BTreeMap;

/// A stateful first-order optimiser.
pub trait Optimizer {
    /// Applies one update to the parameters in `param` given `grad`.
    ///
    /// `slot` identifies the parameter tensor (state is kept per slot).
    ///
    /// # Panics
    ///
    /// Implementations panic if `param.len() != grad.len()` or if a slot
    /// changes size between calls.
    fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]);

    /// Resets all internal state (e.g. between training runs).
    fn reset(&mut self);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone, Default)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    velocity: BTreeMap<usize, Vec<f64>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(learning_rate: f64) -> Self {
        Self {
            learning_rate,
            momentum: 0.0,
            velocity: BTreeMap::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(learning_rate: f64, momentum: f64) -> Self {
        Self {
            learning_rate,
            momentum,
            velocity: BTreeMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "sgd: length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in param.iter_mut().zip(grad) {
                *p -= self.learning_rate * g;
            }
            return;
        }
        let v = self
            .velocity
            .entry(slot)
            .or_insert_with(|| vec![0.0; param.len()]);
        assert_eq!(v.len(), param.len(), "sgd: slot size changed");
        for ((p, g), vi) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vi = self.momentum * *vi + g;
            *p -= self.learning_rate * *vi;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba) with optional *decoupled* weight decay, i.e. AdamW
/// when `weight_decay > 0`.
#[derive(Debug, Clone)]
pub struct AdamW {
    /// Learning rate (the paper uses 5e-3).
    pub learning_rate: f64,
    /// Decoupled weight-decay coefficient (0 = plain Adam).
    pub weight_decay: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub epsilon: f64,
    state: BTreeMap<usize, AdamSlot>,
}

#[derive(Debug, Clone)]
struct AdamSlot {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl AdamW {
    /// AdamW with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(learning_rate: f64, weight_decay: f64) -> Self {
        Self {
            learning_rate,
            weight_decay,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            state: BTreeMap::new(),
        }
    }

    /// Plain Adam (no weight decay).
    pub fn adam(learning_rate: f64) -> Self {
        Self::new(learning_rate, 0.0)
    }
}

impl Optimizer for AdamW {
    fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "adamw: length mismatch");
        let s = self.state.entry(slot).or_insert_with(|| AdamSlot {
            m: vec![0.0; param.len()],
            v: vec![0.0; param.len()],
            t: 0,
        });
        assert_eq!(s.m.len(), param.len(), "adamw: slot size changed");
        s.t += 1;
        let bc1 = 1.0 - self.beta1.powi(s.t as i32);
        let bc2 = 1.0 - self.beta2.powi(s.t as i32);
        for i in 0..param.len() {
            s.m[i] = self.beta1 * s.m[i] + (1.0 - self.beta1) * grad[i];
            s.v[i] = self.beta2 * s.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = s.m[i] / bc1;
            let v_hat = s.v[i] / bc2;
            // Decoupled decay: applied directly to the parameter, not
            // through the gradient (the defining feature of AdamW).
            param[i] -= self.learning_rate
                * (m_hat / (v_hat.sqrt() + self.epsilon) + self.weight_decay * param[i]);
        }
    }

    fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 with gradient 2(x - 3).
    fn minimise(optim: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0f64];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            optim.update(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut o = Sgd::new(0.1);
        assert!((minimise(&mut o, 200) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let mut plain = Sgd::new(0.01);
        let mut mom = Sgd::with_momentum(0.01, 0.9);
        let x_plain = minimise(&mut plain, 50);
        let x_mom = minimise(&mut mom, 50);
        assert!((x_mom - 3.0).abs() < (x_plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut o = AdamW::adam(0.2);
        assert!((minimise(&mut o, 500) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adamw_decay_shrinks_parameters_toward_zero() {
        // With zero gradient, AdamW decay is pure shrinkage; Adam leaves
        // the parameter untouched.
        let mut adamw = AdamW::new(0.1, 0.1);
        let mut adam = AdamW::adam(0.1);
        let mut p1 = [5.0];
        let mut p2 = [5.0];
        for _ in 0..10 {
            adamw.update(0, &mut p1, &[0.0]);
            adam.update(0, &mut p2, &[0.0]);
        }
        assert!(p1[0] < 5.0);
        assert_eq!(p2[0], 5.0);
    }

    #[test]
    fn adamw_decay_is_decoupled_from_gradient_scale() {
        // Decoupled decay: scaling the gradient hugely does not change the
        // decay contribution. Compare the decay-only displacement.
        let mut o = AdamW::new(0.1, 0.05);
        let mut p = [2.0];
        o.update(0, &mut p, &[1e6]);
        // Displacement ≈ lr * (1 + wd * p): the adaptive term is bounded
        // by lr regardless of gradient scale.
        let displacement = 2.0 - p[0];
        assert!(displacement < 0.1 * (1.0 + 0.05 * 2.0) + 1e-9);
    }

    #[test]
    fn slots_have_independent_state() {
        let mut o = AdamW::adam(0.1);
        let mut a = [0.0];
        let mut b = [0.0];
        for _ in 0..10 {
            o.update(0, &mut a, &[1.0]);
        }
        // Fresh slot: first-step behaviour (bias-corrected step ≈ lr).
        o.update(1, &mut b, &[1.0]);
        assert!((b[0] + 0.1).abs() < 1e-6, "fresh slot step {}", b[0]);
        assert!(a[0] < -0.5);
    }

    #[test]
    fn reset_clears_state() {
        let mut o = Sgd::with_momentum(0.1, 0.9);
        let mut p = [0.0];
        o.update(0, &mut p, &[1.0]);
        o.reset();
        let mut q = [0.0];
        o.update(0, &mut q, &[1.0]);
        // After reset, first update equals plain first update.
        assert!((q[0] + 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn update_validates_lengths() {
        let mut o = Sgd::new(0.1);
        let mut p = [0.0, 1.0];
        o.update(0, &mut p, &[1.0]);
    }
}
