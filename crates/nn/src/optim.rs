//! First-order optimisers: SGD (with momentum), Adam, and AdamW.
//!
//! The paper trains "via adaptive mini-batch gradient descent, with a
//! weight decay strategy \[23\]" — i.e. AdamW, Adam with *decoupled*
//! weight decay (Loshchilov & Hutter, ICLR 2019). All three optimisers
//! are provided so the training-throughput ablation can compare them.
//!
//! An optimiser updates flat parameter slices keyed by a `slot` id, so
//! weights and biases of every layer share one implementation; state
//! (momentum, moment estimates) is allocated lazily per slot, in a
//! `BTreeMap` — slots are only ever looked up by key today, but a
//! `HashMap` here would be a determinism hazard one refactor away
//! (any future iteration would visit slots in per-process random
//! order), which is exactly what `occusense-lint`'s determinism rule
//! bans from numeric paths.

use std::collections::BTreeMap;

/// A stateful first-order optimiser.
pub trait Optimizer {
    /// Applies one update to the parameters in `param` given `grad`.
    ///
    /// `slot` identifies the parameter tensor (state is kept per slot).
    ///
    /// # Panics
    ///
    /// Implementations panic if `param.len() != grad.len()` or if a slot
    /// changes size between calls.
    fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]);

    /// Resets all internal state (e.g. between training runs).
    fn reset(&mut self);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone, Default)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    velocity: BTreeMap<usize, Vec<f64>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(learning_rate: f64) -> Self {
        Self {
            learning_rate,
            momentum: 0.0,
            velocity: BTreeMap::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(learning_rate: f64, momentum: f64) -> Self {
        Self {
            learning_rate,
            momentum,
            velocity: BTreeMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "sgd: length mismatch");
        if self.momentum == 0.0 {
            sgd_step(self.learning_rate, param, grad);
            return;
        }
        let v = self
            .velocity
            .entry(slot)
            .or_insert_with(|| vec![0.0; param.len()]);
        assert_eq!(v.len(), param.len(), "sgd: slot size changed");
        sgd_momentum_step(self.learning_rate, self.momentum, param, grad, v);
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba) with optional *decoupled* weight decay, i.e. AdamW
/// when `weight_decay > 0`.
#[derive(Debug, Clone)]
pub struct AdamW {
    /// Learning rate (the paper uses 5e-3).
    pub learning_rate: f64,
    /// Decoupled weight-decay coefficient (0 = plain Adam).
    pub weight_decay: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub epsilon: f64,
    state: BTreeMap<usize, AdamSlot>,
}

#[derive(Debug, Clone)]
struct AdamSlot {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl AdamW {
    /// AdamW with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(learning_rate: f64, weight_decay: f64) -> Self {
        Self {
            learning_rate,
            weight_decay,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            state: BTreeMap::new(),
        }
    }

    /// Plain Adam (no weight decay).
    pub fn adam(learning_rate: f64) -> Self {
        Self::new(learning_rate, 0.0)
    }
}

impl Optimizer for AdamW {
    fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "adamw: length mismatch");
        // Slot setup is the only place this path may allocate — and
        // only on a slot's first update; every subsequent step runs
        // entirely inside the allocation-free fused kernel below.
        let s = self.state.entry(slot).or_insert_with(|| AdamSlot {
            m: vec![0.0; param.len()],
            v: vec![0.0; param.len()],
            t: 0,
        });
        assert_eq!(s.m.len(), param.len(), "adamw: slot size changed");
        s.t += 1;
        let bc1 = 1.0 - self.beta1.powi(s.t as i32);
        let bc2 = 1.0 - self.beta2.powi(s.t as i32);
        adamw_fused_step(
            self.learning_rate,
            self.weight_decay,
            self.beta1,
            self.beta2,
            self.epsilon,
            bc1,
            bc2,
            param,
            grad,
            &mut s.m,
            &mut s.v,
        );
    }

    fn reset(&mut self) {
        self.state.clear();
    }
}

// The fused single-pass update kernels: one walk over the
// parameter/gradient/moment slices per step, no temporaries, no bounds
// checks (lockstep zips), and — per the region below — no heap
// allocations. Each element's arithmetic is exactly the textbook
// update in exactly the original operation order, so fusing is
// invisible to the training trajectory (asserted bitwise in the
// tests).
// lint:no_alloc

/// Plain SGD: `p -= lr · g`.
fn sgd_step(lr: f64, param: &mut [f64], grad: &[f64]) {
    for (p, g) in param.iter_mut().zip(grad) {
        *p -= lr * g;
    }
}

/// Momentum SGD: `v = μ·v + g; p -= lr·v`, one fused pass.
fn sgd_momentum_step(lr: f64, momentum: f64, param: &mut [f64], grad: &[f64], v: &mut [f64]) {
    for ((p, g), vi) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
        *vi = momentum * *vi + g;
        *p -= lr * *vi;
    }
}

/// AdamW: both moment updates, the bias corrections and the decoupled
/// decay applied in a single fused pass over the four slices.
#[allow(clippy::too_many_arguments)]
fn adamw_fused_step(
    lr: f64,
    wd: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    bc1: f64,
    bc2: f64,
    param: &mut [f64],
    grad: &[f64],
    m: &mut [f64],
    v: &mut [f64],
) {
    let iter = param
        .iter_mut()
        .zip(grad)
        .zip(m.iter_mut().zip(v.iter_mut()));
    for ((p, &g), (mi, vi)) in iter {
        *mi = beta1 * *mi + (1.0 - beta1) * g;
        *vi = beta2 * *vi + (1.0 - beta2) * g * g;
        let m_hat = *mi / bc1;
        let v_hat = *vi / bc2;
        // Decoupled decay: applied directly to the parameter, not
        // through the gradient (the defining feature of AdamW).
        *p -= lr * (m_hat / (v_hat.sqrt() + epsilon) + wd * *p);
    }
}

// lint:end_no_alloc

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 with gradient 2(x - 3).
    fn minimise(optim: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0f64];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            optim.update(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut o = Sgd::new(0.1);
        assert!((minimise(&mut o, 200) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let mut plain = Sgd::new(0.01);
        let mut mom = Sgd::with_momentum(0.01, 0.9);
        let x_plain = minimise(&mut plain, 50);
        let x_mom = minimise(&mut mom, 50);
        assert!((x_mom - 3.0).abs() < (x_plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut o = AdamW::adam(0.2);
        assert!((minimise(&mut o, 500) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adamw_decay_shrinks_parameters_toward_zero() {
        // With zero gradient, AdamW decay is pure shrinkage; Adam leaves
        // the parameter untouched.
        let mut adamw = AdamW::new(0.1, 0.1);
        let mut adam = AdamW::adam(0.1);
        let mut p1 = [5.0];
        let mut p2 = [5.0];
        for _ in 0..10 {
            adamw.update(0, &mut p1, &[0.0]);
            adam.update(0, &mut p2, &[0.0]);
        }
        assert!(p1[0] < 5.0);
        assert_eq!(p2[0], 5.0);
    }

    #[test]
    fn adamw_decay_is_decoupled_from_gradient_scale() {
        // Decoupled decay: scaling the gradient hugely does not change the
        // decay contribution. Compare the decay-only displacement.
        let mut o = AdamW::new(0.1, 0.05);
        let mut p = [2.0];
        o.update(0, &mut p, &[1e6]);
        // Displacement ≈ lr * (1 + wd * p): the adaptive term is bounded
        // by lr regardless of gradient scale.
        let displacement = 2.0 - p[0];
        assert!(displacement < 0.1 * (1.0 + 0.05 * 2.0) + 1e-9);
    }

    #[test]
    fn slots_have_independent_state() {
        let mut o = AdamW::adam(0.1);
        let mut a = [0.0];
        let mut b = [0.0];
        for _ in 0..10 {
            o.update(0, &mut a, &[1.0]);
        }
        // Fresh slot: first-step behaviour (bias-corrected step ≈ lr).
        o.update(1, &mut b, &[1.0]);
        assert!((b[0] + 0.1).abs() < 1e-6, "fresh slot step {}", b[0]);
        assert!(a[0] < -0.5);
    }

    #[test]
    fn reset_clears_state() {
        let mut o = Sgd::with_momentum(0.1, 0.9);
        let mut p = [0.0];
        o.update(0, &mut p, &[1.0]);
        o.reset();
        let mut q = [0.0];
        o.update(0, &mut q, &[1.0]);
        // After reset, first update equals plain first update.
        assert!((q[0] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn fused_adamw_matches_scalar_reference_bitwise() {
        // The fused single-pass kernel must reproduce the naive indexed
        // reference (separate moment updates, then the parameter step)
        // bit for bit: the fusion changed the walk, never the
        // per-element arithmetic or its order.
        let (lr, wd, b1, b2, eps): (f64, f64, f64, f64, f64) = (5e-3, 1e-4, 0.9, 0.999, 1e-8);
        let mut o = AdamW::new(lr, wd);
        let n = 37;
        let mut p: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
        let mut p_ref = p.clone();
        let mut m = vec![0.0f64; n];
        let mut v = vec![0.0f64; n];
        for t in 1..=25i32 {
            let g: Vec<f64> = (0..n)
                .map(|i| ((i as f64) * 0.3 + t as f64).cos())
                .collect();
            o.update(0, &mut p, &g);
            let bc1 = 1.0 - b1.powi(t);
            let bc2 = 1.0 - b2.powi(t);
            for i in 0..n {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                p_ref[i] -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * p_ref[i]);
            }
            for i in 0..n {
                assert_eq!(
                    p[i].to_bits(),
                    p_ref[i].to_bits(),
                    "step {t} param {i}: fused {} vs reference {}",
                    p[i],
                    p_ref[i]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn update_validates_lengths() {
        let mut o = Sgd::new(0.1);
        let mut p = [0.0, 1.0];
        o.update(0, &mut p, &[1.0]);
    }
}
