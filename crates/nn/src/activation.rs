//! Pointwise activation functions.

use occusense_tensor::vecops::sigmoid;
use occusense_tensor::Matrix;

/// Pointwise activation applied by a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit `max(0, x)` — the paper's hidden activation.
    #[default]
    Relu,
    /// Logistic sigmoid `1/(1+e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent — the GRU candidate-state nonlinearity.
    Tanh,
    /// Identity (used on the output layer; the loss applies the sigmoid).
    Identity,
}

impl Activation {
    /// Applies the activation elementwise.
    pub fn apply(&self, z: &Matrix) -> Matrix {
        match self {
            Activation::Relu => z.map(|x| x.max(0.0)),
            Activation::Sigmoid => z.map(sigmoid),
            Activation::Tanh => z.map(f64::tanh),
            Activation::Identity => z.clone(),
        }
    }

    /// Elementwise derivative evaluated at pre-activation `z`.
    pub fn derivative(&self, z: &Matrix) -> Matrix {
        match self {
            Activation::Relu => z.map(|x| if x > 0.0 { 1.0 } else { 0.0 }),
            Activation::Sigmoid => z.map(|x| {
                let s = sigmoid(x);
                s * (1.0 - s)
            }),
            Activation::Tanh => z.map(|x| {
                let t = x.tanh();
                1.0 - t * t
            }),
            Activation::Identity => Matrix::ones(z.rows(), z.cols()),
        }
    }

    /// The activation as a plain scalar function pointer — the form the
    /// fused GEMM kernel ([`occusense_tensor::kernels::gemm_bias_act`])
    /// consumes. Applying this to each element of a matrix is exactly
    /// [`Activation::apply`].
    pub fn scalar_fn(&self) -> fn(f64) -> f64 {
        match self {
            Activation::Relu => |x| x.max(0.0),
            Activation::Sigmoid => sigmoid,
            Activation::Tanh => f64::tanh,
            Activation::Identity => |x| x,
        }
    }

    /// The derivative as a plain scalar function pointer, evaluated at
    /// the pre-activation; elementwise this is exactly
    /// [`Activation::derivative`].
    pub fn scalar_derivative(&self) -> fn(f64) -> f64 {
        match self {
            Activation::Relu => |x| if x > 0.0 { 1.0 } else { 0.0 },
            Activation::Sigmoid => |x| {
                let s = sigmoid(x);
                s * (1.0 - s)
            },
            Activation::Tanh => |x| {
                let t = x.tanh();
                1.0 - t * t
            },
            Activation::Identity => |_| 1.0,
        }
    }

    /// Short name used by the serialisation format.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        }
    }

    /// Parses a [`name`](Self::name) back to an activation.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "relu" => Some(Activation::Relu),
            "sigmoid" => Some(Activation::Sigmoid),
            "tanh" => Some(Activation::Tanh),
            "identity" => Some(Activation::Identity),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let z = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(Activation::Relu.apply(&z).row(0), &[0.0, 0.0, 2.0]);
        assert_eq!(Activation::Relu.derivative(&z).row(0), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_derivative_peak() {
        let z = Matrix::from_rows(&[&[-100.0, 0.0, 100.0]]);
        let a = Activation::Sigmoid.apply(&z);
        assert!(a[(0, 0)] < 1e-6);
        assert!((a[(0, 1)] - 0.5).abs() < 1e-12);
        assert!(a[(0, 2)] > 1.0 - 1e-6);
        let d = Activation::Sigmoid.derivative(&z);
        assert!((d[(0, 1)] - 0.25).abs() < 1e-12);
        assert!(d[(0, 0)] < 1e-6);
    }

    #[test]
    fn identity_passthrough() {
        let z = Matrix::from_rows(&[&[-3.0, 5.0]]);
        assert_eq!(Activation::Identity.apply(&z), z);
        assert_eq!(Activation::Identity.derivative(&z).row(0), &[1.0, 1.0]);
    }

    #[test]
    fn derivative_matches_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for x in [-2.0, -0.5, 0.3, 1.7] {
                let z = Matrix::from_rows(&[&[x]]);
                let zp = Matrix::from_rows(&[&[x + eps]]);
                let zm = Matrix::from_rows(&[&[x - eps]]);
                let numeric = (act.apply(&zp)[(0, 0)] - act.apply(&zm)[(0, 0)]) / (2.0 * eps);
                let analytic = act.derivative(&z)[(0, 0)];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "{act:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        let z = Matrix::from_rows(&[&[-100.0, -0.5, 0.0, 0.5, 100.0]]);
        let a = Activation::Tanh.apply(&z);
        assert!((a[(0, 0)] + 1.0).abs() < 1e-12);
        assert!((a[(0, 1)] + a[(0, 3)]).abs() < 1e-15);
        assert_eq!(a[(0, 2)], 0.0);
        assert!((a[(0, 4)] - 1.0).abs() < 1e-12);
        let d = Activation::Tanh.derivative(&z);
        assert!((d[(0, 2)] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn names_round_trip() {
        for act in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            assert_eq!(Activation::from_name(act.name()), Some(act));
        }
        assert_eq!(Activation::from_name("swish"), None);
    }
}
