//! Grad-CAM explainability (Selvaraju et al. \[17\]) adapted to the MLP,
//! as in §IV-B of the paper.
//!
//! Eq. (5) computes, for a class `c` and hidden layer `k`, the importance
//! coefficient `α_k^c` as the average over hidden neurons of
//! `∂y^c/∂A^{(k)}`; Eq. (6) weights the feature map by `α_k^c` and applies
//! a ReLU. For an MLP, whose "feature maps" are plain activation vectors,
//! the per-layer map [`layer_importance`] implements Eq. (5)–(6) verbatim
//! (averaged over the evaluation batch).
//!
//! The Figure 3 plot needs one importance value per *input feature*
//! (subcarriers a0–a63, temperature, humidity). An MLP has no spatial
//! correspondence between hidden neurons and inputs, so the attribution
//! is propagated all the way to the input layer: [`input_attribution`]
//! returns the batch-averaged gradient×input score, which is signed —
//! matching the negative values visible in the paper's figure.

use crate::mlp::{ForwardPass, Mlp};
use occusense_tensor::Matrix;

/// Gradients of the summed class score with respect to every activation,
/// from the input (index 0) to the last hidden layer.
///
/// `class_sign` is `+1.0` for the positive (occupied) class and `-1.0`
/// for the negative class; for the binary head, `y^{c=0} = −y^{c=1}`.
pub fn activation_gradients(mlp: &Mlp, pass: &ForwardPass, class_sign: f64) -> Vec<Matrix> {
    let n_layers = mlp.layers().len();
    let output = pass.output();
    // ∂(Σ_batch y^c)/∂output = class_sign everywhere.
    let mut upstream = Matrix::filled(output.rows(), output.cols(), class_sign);
    // grads[i] = ∂y^c/∂activations[i]; fill from the top down.
    let mut grads: Vec<Option<Matrix>> = vec![None; n_layers];
    for (i, layer) in mlp.layers().iter().enumerate().rev() {
        let g = layer.backward(&pass.activations[i], &pass.preacts[i], &upstream);
        upstream = g.input;
        grads[i] = Some(upstream.clone());
    }
    grads.into_iter().map(|g| g.expect("filled")).collect()
}

/// Eq. (5): the hidden importance coefficient `α_k^c` of layer `k` — the
/// gradient of the class score averaged over that layer's neurons (and
/// over the evaluation batch).
///
/// # Panics
///
/// Panics if `layer_k` is not a hidden layer index
/// (`0 .. mlp.layers().len() - 1`).
pub fn alpha(mlp: &Mlp, x: &Matrix, layer_k: usize, class_sign: f64) -> f64 {
    assert!(
        layer_k + 1 < mlp.layers().len() + 1,
        "layer {layer_k} out of range"
    );
    let pass = mlp.forward(x);
    let grads = activation_gradients_at_outputs(mlp, &pass, class_sign);
    grads[layer_k].mean()
}

/// Gradients with respect to each layer's *output* activation
/// (`A^{(k)}` in the paper's notation, `k = 0` being the first hidden
/// layer). Length = number of layers; the last entry is the gradient at
/// the network output (trivially `class_sign`).
pub fn activation_gradients_at_outputs(
    mlp: &Mlp,
    pass: &ForwardPass,
    class_sign: f64,
) -> Vec<Matrix> {
    let n_layers = mlp.layers().len();
    let output = pass.output();
    let mut upstream = Matrix::filled(output.rows(), output.cols(), class_sign);
    let mut grads: Vec<Option<Matrix>> = vec![None; n_layers];
    grads[n_layers - 1] = Some(upstream.clone());
    for (i, layer) in mlp.layers().iter().enumerate().rev() {
        let g = layer.backward(&pass.activations[i], &pass.preacts[i], &upstream);
        upstream = g.input;
        if i > 0 {
            grads[i - 1] = Some(upstream.clone());
        }
    }
    grads.into_iter().map(|g| g.expect("filled")).collect()
}

/// Eq. (6) for one hidden layer: `ReLU(α_k^c · Ā^{(k)})`, the per-neuron
/// Grad-CAM map of layer `k` with the feature map averaged over the
/// batch.
///
/// # Panics
///
/// Panics if `layer_k >= mlp.layers().len() - 1` (the output layer has no
/// Grad-CAM map).
pub fn layer_importance(mlp: &Mlp, x: &Matrix, layer_k: usize, class_sign: f64) -> Vec<f64> {
    assert!(
        layer_k < mlp.layers().len() - 1,
        "layer {layer_k} is not a hidden layer"
    );
    let pass = mlp.forward(x);
    let grads = activation_gradients_at_outputs(mlp, &pass, class_sign);
    let a_k = alpha_from(&grads, layer_k);
    // Batch-mean feature map of layer k (activations[k + 1]).
    pass.activations[layer_k + 1]
        .col_means()
        .into_iter()
        .map(|a| (a_k * a).max(0.0))
        .collect()
}

fn alpha_from(grads: &[Matrix], layer_k: usize) -> f64 {
    grads[layer_k].mean()
}

/// The Figure 3 attribution: signed per-input-feature importance,
/// computed as the batch-averaged gradient×input of the class score.
///
/// Positive values mean the feature pushes towards the class; values
/// near zero mean the network ignores the feature (the paper's finding
/// for temperature and humidity).
pub fn input_attribution(mlp: &Mlp, x: &Matrix, class_sign: f64) -> Vec<f64> {
    let pass = mlp.forward(x);
    let output = pass.output();
    let upstream = Matrix::filled(output.rows(), output.cols(), class_sign);
    let (_, grad_x) = mlp.backward(&pass, &upstream);
    let gx = grad_x.hadamard(x);
    gx.col_means()
}

/// Plain input-gradient saliency (no input weighting), batch-averaged —
/// exposed for the sanity-check comparison in the test-suite (Adebayo et
/// al. \[25\]: saliency must depend on the trained weights).
pub fn input_saliency(mlp: &Mlp, x: &Matrix, class_sign: f64) -> Vec<f64> {
    let pass = mlp.forward(x);
    let output = pass.output();
    let upstream = Matrix::filled(output.rows(), output.cols(), class_sign);
    let (_, grad_x) = mlp.backward(&pass, &upstream);
    grad_x.col_means()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::BceWithLogits;
    use crate::optim::AdamW;
    use crate::train::{TrainConfig, Trainer};

    /// Train a tiny network where only feature 0 matters.
    fn single_feature_net() -> (Mlp, Matrix) {
        // y = 1 iff x0 > 0; x1 is noise.
        let n = 200;
        let x = Matrix::from_fn(n, 2, |r, c| {
            let t = r as f64 / n as f64;
            if c == 0 {
                if r % 2 == 0 {
                    0.5 + t
                } else {
                    -0.5 - t
                }
            } else {
                ((r * 37 % 101) as f64 / 101.0) - 0.5
            }
        });
        let y = Matrix::col_vector(
            &(0..n)
                .map(|r| if r % 2 == 0 { 1.0 } else { 0.0 })
                .collect::<Vec<_>>(),
        );
        let mut mlp = Mlp::new(&[2, 8, 8, 1], 11);
        let mut optim = AdamW::new(0.02, 1e-4);
        Trainer::new(TrainConfig {
            epochs: 120,
            batch_size: 32,
            shuffle_seed: 4,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
        (mlp, x)
    }

    #[test]
    fn informative_feature_dominates_attribution() {
        let (mlp, x) = single_feature_net();
        let attr = input_attribution(&mlp, &x, 1.0);
        assert!(
            attr[0].abs() > 5.0 * attr[1].abs(),
            "attribution {attr:?} does not isolate feature 0"
        );
    }

    #[test]
    fn attribution_is_signed() {
        let (mlp, x) = single_feature_net();
        // For the positive class, gradient×input on a feature aligned with
        // the class is positive on average.
        let attr = input_attribution(&mlp, &x, 1.0);
        assert!(attr[0] > 0.0);
        // Flipping the class flips the attribution.
        let attr_neg = input_attribution(&mlp, &x, -1.0);
        assert!((attr[0] + attr_neg[0]).abs() < 1e-9);
    }

    #[test]
    fn layer_importance_is_nonnegative_and_sized() {
        let (mlp, x) = single_feature_net();
        for k in 0..mlp.layers().len() - 1 {
            let imp = layer_importance(&mlp, &x, k, 1.0);
            assert_eq!(imp.len(), mlp.layers()[k].out_dim());
            assert!(imp.iter().all(|&v| v >= 0.0), "layer {k}: {imp:?}");
        }
    }

    #[test]
    fn sanity_check_saliency_depends_on_weights() {
        // Adebayo et al.'s model-parameter randomisation test: a trained
        // and an untrained network must produce different saliency.
        let (mlp, x) = single_feature_net();
        let trained = input_saliency(&mlp, &x, 1.0);
        let untrained = input_saliency(&Mlp::new(&[2, 8, 8, 1], 999), &x, 1.0);
        let diff: f64 = trained
            .iter()
            .zip(&untrained)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "saliency insensitive to training: {diff}");
    }

    #[test]
    fn activation_gradients_shapes() {
        let mlp = Mlp::new(&[3, 5, 4, 1], 2);
        let x = Matrix::ones(7, 3);
        let pass = mlp.forward(&x);
        let grads = activation_gradients_at_outputs(&mlp, &pass, 1.0);
        assert_eq!(grads.len(), 3);
        assert_eq!(grads[0].shape(), (7, 5));
        assert_eq!(grads[1].shape(), (7, 4));
        assert_eq!(grads[2].shape(), (7, 1));
        // Output-layer gradient is the class sign itself.
        assert!(grads[2].as_slice().iter().all(|&v| v == 1.0));

        let input_grads = activation_gradients(&mlp, &pass, 1.0);
        assert_eq!(input_grads[0].shape(), (7, 3));
    }

    #[test]
    fn alpha_matches_mean_of_gradients() {
        let mlp = Mlp::new(&[3, 5, 1], 8);
        let x = Matrix::from_fn(4, 3, |r, c| (r + c) as f64 * 0.1);
        let a = alpha(&mlp, &x, 0, 1.0);
        let pass = mlp.forward(&x);
        let grads = activation_gradients_at_outputs(&mlp, &pass, 1.0);
        assert!((a - grads[0].mean()).abs() < 1e-12);
    }
}
