//! Shuffled mini-batch training loop.

use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::optim::Optimizer;
use crate::workspace::MlpWorkspace;
use occusense_tensor::kernels::Parallelism;
use occusense_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::mpsc;
use std::thread;

/// Training hyper-parameters. The paper trains for 10 epochs with a
/// learning rate of 5e-3 (§V-B); the learning rate lives in the
/// optimiser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for the per-epoch shuffles.
    pub shuffle_seed: u64,
    /// Kernel parallelism for the forward/backward GEMMs. The parallel
    /// kernel is bitwise-identical to the single-threaded one, so any
    /// setting trains the exact same model bit for bit.
    pub parallelism: Parallelism,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 256,
            shuffle_seed: 0,
            parallelism: Parallelism::Single,
        }
    }
}

/// Reusable buffers for the training loop: the per-batch gathers, the
/// loss gradient, and the full [`MlpWorkspace`]. After the first epoch
/// warm-up, [`Trainer::fit_with`] performs no per-iteration heap
/// allocations (assert via [`TrainWorkspace::reallocs`]).
#[derive(Debug, Clone, Default)]
pub struct TrainWorkspace {
    mlp: MlpWorkspace,
    /// Double-buffered batch gathers: while the step loop trains on one
    /// `(xb, yb)` pair, a scoped prefetcher thread fills the other, so
    /// `select_rows_into` overlaps the forward/backward/optimizer work.
    xb: Matrix,
    yb: Matrix,
    xb2: Matrix,
    yb2: Matrix,
    grad_out: Matrix,
}

impl TrainWorkspace {
    /// An empty workspace running the kernels single-threaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace with the given kernel parallelism.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        Self {
            mlp: MlpWorkspace::with_parallelism(parallelism),
            ..Self::default()
        }
    }

    /// Number of buffer-growth events since creation; flat across steps
    /// ⇒ the steady-state training step is allocation-free.
    pub fn reallocs(&self) -> u64 {
        self.mlp.reallocs()
    }

    /// The inner forward/backward workspace.
    pub fn mlp_workspace_mut(&mut self) -> &mut MlpWorkspace {
        &mut self.mlp
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Row-weighted mean training loss over the epoch: each batch's
    /// mean loss weighted by its row count, so a short final chunk
    /// contributes in proportion to its size instead of counting as a
    /// full batch.
    pub mean_loss: f64,
}

/// Mini-batch trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `mlp` on `(x, y)` and returns the per-epoch loss history.
    ///
    /// `y` must have the network's output dimension as its column count
    /// (one column of 0/1 targets for BCE, k columns for regression).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent or the dataset is empty.
    pub fn fit(
        &self,
        mlp: &mut Mlp,
        x: &Matrix,
        y: &Matrix,
        loss: &dyn Loss,
        optimizer: &mut dyn Optimizer,
    ) -> Vec<EpochStats> {
        let mut ws = TrainWorkspace::with_parallelism(self.config.parallelism);
        self.fit_with(mlp, x, y, loss, optimizer, &mut ws)
    }

    /// [`Trainer::fit`] through a caller-owned [`TrainWorkspace`]: the
    /// step loop performs no heap allocations once the workspace is
    /// warm. Identical results to [`Trainer::fit`] bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent or the dataset is empty.
    pub fn fit_with(
        &self,
        mlp: &mut Mlp,
        x: &Matrix,
        y: &Matrix,
        loss: &dyn Loss,
        optimizer: &mut dyn Optimizer,
        ws: &mut TrainWorkspace,
    ) -> Vec<EpochStats> {
        assert_eq!(x.rows(), y.rows(), "trainer: sample count mismatch");
        assert_eq!(
            x.cols(),
            mlp.input_dim(),
            "trainer: feature dimension mismatch"
        );
        assert_eq!(
            y.cols(),
            mlp.output_dim(),
            "trainer: target dimension mismatch"
        );
        assert!(x.rows() > 0, "trainer: empty dataset");

        let mut rng = StdRng::seed_from_u64(self.config.shuffle_seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut history = Vec::with_capacity(self.config.epochs);
        let batch = self.config.batch_size.max(1);
        let n_batches = x.rows().div_ceil(batch);

        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            // Row-weighted epoch loss: each batch contributes its mean
            // loss times its row count, normalised by the dataset size —
            // a short final chunk is no longer overweighted.
            let weighted = if n_batches > 1 {
                self.run_epoch_prefetched(mlp, x, y, loss, optimizer, ws, &order)
            } else {
                // A single batch has nothing to overlap with: gather
                // inline on the caller.
                let mut xb = std::mem::take(&mut ws.xb);
                let mut yb = std::mem::take(&mut ws.yb);
                if x.select_rows_into(&order, &mut xb) {
                    ws.mlp.scratch_mut().note_grow();
                }
                if y.select_rows_into(&order, &mut yb) {
                    ws.mlp.scratch_mut().note_grow();
                }
                let batch_loss = self.train_batch_with(mlp, &xb, &yb, loss, optimizer, ws);
                let rows = xb.rows() as f64;
                ws.xb = xb;
                ws.yb = yb;
                batch_loss * rows
            };
            history.push(EpochStats {
                epoch,
                mean_loss: weighted / x.rows() as f64,
            });
        }
        history
    }

    /// One epoch with the double-buffered batch gather: a scoped
    /// prefetcher thread fills one `(xb, yb)` pair with
    /// `select_rows_into` while the caller runs the
    /// forward/backward/optimizer step on the other, so the gather cost
    /// overlaps the compute. Batches are trained in exactly the shuffled
    /// order with exactly the data the sequential gather would produce —
    /// the training trajectory is bitwise identical. Returns the
    /// row-weighted total loss for the epoch.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch_prefetched(
        &self,
        mlp: &mut Mlp,
        x: &Matrix,
        y: &Matrix,
        loss: &dyn Loss,
        optimizer: &mut dyn Optimizer,
        ws: &mut TrainWorkspace,
        order: &[usize],
    ) -> f64 {
        let batch = self.config.batch_size.max(1);
        let n_batches = order.len().div_ceil(batch);
        let (free_tx, free_rx) = mpsc::channel::<(Matrix, Matrix)>();
        let (full_tx, full_rx) = mpsc::channel::<(Matrix, Matrix, bool, bool)>();
        let mut weighted = 0.0;
        thread::scope(|s| {
            s.spawn(move || {
                // Prefetcher: gather batch i + 1 while the main thread
                // trains batch i. Channel errors mean the main thread
                // unwound — just exit and let scope join us.
                for chunk in order.chunks(batch) {
                    let Ok((mut xb, mut yb)) = free_rx.recv() else {
                        return;
                    };
                    let gx = x.select_rows_into(chunk, &mut xb);
                    let gy = y.select_rows_into(chunk, &mut yb);
                    if full_tx.send((xb, yb, gx, gy)).is_err() {
                        return;
                    }
                }
                // Exactly one spare pair is still in flight after the
                // last gather; pass it through so its capacity survives
                // into the next epoch.
                let Ok((xb, yb)) = free_rx.recv() else {
                    return;
                };
                let _ = full_tx.send((xb, yb, false, false));
            });
            let seed = |xb, yb| {
                free_tx
                    .send((xb, yb))
                    .expect("train prefetcher exited before the epoch started");
            };
            seed(std::mem::take(&mut ws.xb), std::mem::take(&mut ws.yb));
            seed(std::mem::take(&mut ws.xb2), std::mem::take(&mut ws.yb2));
            for i in 0..n_batches {
                let (xb, yb, gx, gy) = full_rx.recv().expect("train prefetcher died");
                if gx {
                    ws.mlp.scratch_mut().note_grow();
                }
                if gy {
                    ws.mlp.scratch_mut().note_grow();
                }
                let rows = xb.rows() as f64;
                weighted += self.train_batch_with(mlp, &xb, &yb, loss, optimizer, ws) * rows;
                if i + 1 < n_batches {
                    let _ = free_tx.send((xb, yb));
                } else {
                    ws.xb = xb;
                    ws.yb = yb;
                }
            }
            let (xb2, yb2, _, _) = full_rx.recv().expect("train prefetcher died");
            ws.xb2 = xb2;
            ws.yb2 = yb2;
        });
        weighted
    }

    /// One gradient step on a single batch; returns the batch loss.
    pub fn train_batch(
        &self,
        mlp: &mut Mlp,
        xb: &Matrix,
        yb: &Matrix,
        loss: &dyn Loss,
        optimizer: &mut dyn Optimizer,
    ) -> f64 {
        let mut ws = TrainWorkspace::with_parallelism(self.config.parallelism);
        self.train_batch_with(mlp, xb, yb, loss, optimizer, &mut ws)
    }

    /// [`Trainer::train_batch`] through a caller-owned workspace —
    /// allocation-free once the workspace is warm, identical results
    /// bit for bit.
    pub fn train_batch_with(
        &self,
        mlp: &mut Mlp,
        xb: &Matrix,
        yb: &Matrix,
        loss: &dyn Loss,
        optimizer: &mut dyn Optimizer,
        ws: &mut TrainWorkspace,
    ) -> f64 {
        mlp.forward_ws(xb, &mut ws.mlp);
        let batch_loss = loss.loss(ws.mlp.output(), yb);
        let mut grad_out = std::mem::take(&mut ws.grad_out);
        if grad_out.ensure_shape(yb.rows(), yb.cols()) {
            ws.mlp.scratch_mut().note_grow();
        }
        loss.grad_into(ws.mlp.output(), yb, &mut grad_out);
        mlp.backward_ws(&grad_out, &mut ws.mlp);
        ws.grad_out = grad_out;
        for i in 0..mlp.layers().len() {
            optimizer.update(
                2 * i,
                mlp.layers_mut()[i].weights.as_mut_slice(),
                ws.mlp.grad_w()[i].as_slice(),
            );
            optimizer.update(
                2 * i + 1,
                &mut mlp.layers_mut()[i].bias,
                &ws.mlp.grad_b()[i],
            );
        }
        batch_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{BceWithLogits, Mse};
    use crate::optim::{AdamW, Sgd};

    fn xor_data() -> (Matrix, Matrix) {
        (
            Matrix::from_rows(&[&[0., 0.], &[0., 1.], &[1., 0.], &[1., 1.]]),
            Matrix::col_vector(&[0., 1., 1., 0.]),
        )
    }

    #[test]
    fn learns_xor_with_adamw() {
        let (x, y) = xor_data();
        let mut mlp = Mlp::new(&[2, 16, 1], 7);
        let mut optim = AdamW::new(0.02, 0.0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 400,
            batch_size: 4,
            shuffle_seed: 1,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
        assert_eq!(mlp.predict_labels(&x), vec![0, 1, 1, 0]);
        // Loss decreased substantially.
        assert!(history.last().unwrap().mean_loss < history[0].mean_loss * 0.2);
    }

    #[test]
    fn learns_linear_regression_with_sgd() {
        // y = 2 x1 - x2 + 0.5
        let x = Matrix::from_fn(64, 2, |r, c| ((r * 2 + c) as f64 * 0.37).sin());
        let targets: Vec<f64> = (0..64).map(|r| 2.0 * x[(r, 0)] - x[(r, 1)] + 0.5).collect();
        let y = Matrix::col_vector(&targets);
        let mut mlp = Mlp::new(&[2, 8, 1], 3);
        let mut optim = Sgd::with_momentum(0.05, 0.9);
        let trainer = Trainer::new(TrainConfig {
            epochs: 300,
            batch_size: 16,
            shuffle_seed: 2,
            ..TrainConfig::default()
        });
        trainer.fit(&mut mlp, &x, &y, &Mse, &mut optim);
        let out = mlp.predict(&x);
        let mse = Mse.loss(&out, &y);
        assert!(mse < 0.01, "final mse {mse}");
    }

    #[test]
    fn multi_output_regression() {
        // Two heads: y1 = x, y2 = -x.
        let x = Matrix::from_fn(32, 1, |r, _| r as f64 / 16.0 - 1.0);
        let y = Matrix::from_fn(32, 2, |r, c| {
            let v = x[(r, 0)];
            if c == 0 {
                v
            } else {
                -v
            }
        });
        let mut mlp = Mlp::new(&[1, 8, 2], 5);
        let mut optim = AdamW::adam(0.02);
        let trainer = Trainer::new(TrainConfig {
            epochs: 300,
            batch_size: 8,
            shuffle_seed: 3,
            ..TrainConfig::default()
        });
        trainer.fit(&mut mlp, &x, &y, &Mse, &mut optim);
        let out = mlp.predict(&x);
        assert!(Mse.loss(&out, &y) < 0.01);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, y) = xor_data();
        let run = |seed: u64| {
            let mut mlp = Mlp::new(&[2, 8, 1], 7);
            let mut optim = AdamW::adam(0.02);
            let trainer = Trainer::new(TrainConfig {
                epochs: 20,
                batch_size: 2,
                shuffle_seed: seed,
                ..TrainConfig::default()
            });
            trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
            mlp
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn history_has_one_entry_per_epoch() {
        let (x, y) = xor_data();
        let mut mlp = Mlp::new(&[2, 4, 1], 1);
        let mut optim = Sgd::new(0.1);
        let trainer = Trainer::new(TrainConfig {
            epochs: 7,
            batch_size: 2,
            shuffle_seed: 1,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
        assert_eq!(history.len(), 7);
        for (i, h) in history.iter().enumerate() {
            assert_eq!(h.epoch, i);
            assert!(h.mean_loss.is_finite());
        }
    }

    #[test]
    fn threaded_training_reproduces_single_threaded_bitwise() {
        // The parallel GEMM only splits output rows across threads —
        // every element keeps its summation order, so the whole
        // training trajectory must be reproduced bit for bit.
        let x = Matrix::from_fn(48, 6, |r, c| ((r * 7 + c * 3) as f64 * 0.29).sin());
        let targets: Vec<f64> = (0..48).map(|r| f64::from(r % 3 == 0)).collect();
        let y = Matrix::col_vector(&targets);
        let run = |parallelism: Parallelism| {
            let mut mlp = Mlp::new(&[6, 16, 8, 1], 11);
            let mut optim = AdamW::adam(0.01);
            let trainer = Trainer::new(TrainConfig {
                epochs: 5,
                batch_size: 16,
                shuffle_seed: 4,
                parallelism,
            });
            let history = trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
            (mlp, history)
        };
        let (mlp_single, hist_single) = run(Parallelism::Single);
        for threads in [2usize, 4] {
            let (mlp_t, hist_t) = run(Parallelism::Threads(threads));
            assert_eq!(mlp_t, mlp_single, "{threads} threads diverged");
            for (a, b) in hist_t.iter().zip(&hist_single) {
                assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            }
        }
    }

    #[test]
    fn fit_steady_state_is_allocation_free() {
        let (x, y) = xor_data();
        let mut mlp = Mlp::new(&[2, 8, 1], 7);
        let mut optim = AdamW::adam(0.02);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 2,
            shuffle_seed: 1,
            ..TrainConfig::default()
        });
        let mut ws = TrainWorkspace::new();
        // First fit warms every buffer (growth is expected and counted).
        trainer.fit_with(&mut mlp, &x, &y, &BceWithLogits, &mut optim, &mut ws);
        let warm = ws.reallocs();
        assert!(warm > 0, "warm-up should have grown the workspace");
        // Re-running the whole step loop on warmed buffers must not
        // grow anything: the trainer's steady state is allocation-free.
        trainer.fit_with(&mut mlp, &x, &y, &BceWithLogits, &mut optim, &mut ws);
        assert_eq!(ws.reallocs(), warm, "steady-state fit grew a buffer");
    }

    #[test]
    fn epoch_loss_weights_batches_by_row_count() {
        // 5 rows at batch size 2 → chunks of 2, 2 and 1 rows. With a
        // zero learning rate the model never moves, so every epoch's
        // mean loss must equal the full-dataset mean loss exactly; the
        // old per-batch-mean average overweighted the short final
        // chunk (its rows counted 2× the others').
        let x = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f64 * 0.61).sin());
        let targets: Vec<f64> = (0..5).map(|r| (r as f64 * 0.23).cos()).collect();
        let y = Matrix::col_vector(&targets);
        let mut mlp = Mlp::new(&[3, 4, 1], 3);
        let mut optim = Sgd::new(0.0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 2,
            shuffle_seed: 5,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut mlp, &x, &y, &Mse, &mut optim);
        let full = Mse.loss(&mlp.predict(&x), &y);
        for h in &history {
            assert!(
                (h.mean_loss - full).abs() < 1e-12,
                "epoch {} loss {} != dataset loss {}",
                h.epoch,
                h.mean_loss,
                full
            );
        }
    }

    #[test]
    fn prefetched_epochs_match_single_batch_trajectory() {
        // The double-buffered gather must train on exactly the batches
        // the sequential gather would have produced: two runs differing
        // only in batch size relative to n_batches==1 exercise both
        // code paths; here we instead assert the prefetched path is
        // reproducible run-to-run and across workspace reuse.
        let x = Matrix::from_fn(24, 4, |r, c| ((r * 5 + c) as f64 * 0.31).sin());
        let targets: Vec<f64> = (0..24).map(|r| f64::from(r % 2 == 0)).collect();
        let y = Matrix::col_vector(&targets);
        let run = || {
            let mut mlp = Mlp::new(&[4, 8, 1], 13);
            let mut optim = AdamW::adam(0.01);
            let trainer = Trainer::new(TrainConfig {
                epochs: 4,
                batch_size: 7, // non-divisible: 7 + 7 + 7 + 3
                shuffle_seed: 6,
                ..TrainConfig::default()
            });
            let hist = trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
            (mlp, hist)
        };
        let (mlp_a, hist_a) = run();
        let (mlp_b, hist_b) = run();
        assert_eq!(mlp_a, mlp_b);
        for (a, b) in hist_a.iter().zip(&hist_b) {
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "sample count mismatch")]
    fn fit_validates_shapes() {
        let mut mlp = Mlp::new(&[2, 4, 1], 1);
        let mut optim = Sgd::new(0.1);
        Trainer::default().fit(
            &mut mlp,
            &Matrix::ones(4, 2),
            &Matrix::ones(3, 1),
            &BceWithLogits,
            &mut optim,
        );
    }
}
