//! Shuffled mini-batch training loop.

use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::optim::Optimizer;
use occusense_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters. The paper trains for 10 epochs with a
/// learning rate of 5e-3 (§V-B); the learning rate lives in the
/// optimiser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for the per-epoch shuffles.
    pub shuffle_seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 256,
            shuffle_seed: 0,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f64,
}

/// Mini-batch trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `mlp` on `(x, y)` and returns the per-epoch loss history.
    ///
    /// `y` must have the network's output dimension as its column count
    /// (one column of 0/1 targets for BCE, k columns for regression).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent or the dataset is empty.
    pub fn fit(
        &self,
        mlp: &mut Mlp,
        x: &Matrix,
        y: &Matrix,
        loss: &dyn Loss,
        optimizer: &mut dyn Optimizer,
    ) -> Vec<EpochStats> {
        assert_eq!(x.rows(), y.rows(), "trainer: sample count mismatch");
        assert_eq!(
            x.cols(),
            mlp.input_dim(),
            "trainer: feature dimension mismatch"
        );
        assert_eq!(
            y.cols(),
            mlp.output_dim(),
            "trainer: target dimension mismatch"
        );
        assert!(x.rows() > 0, "trainer: empty dataset");

        let mut rng = StdRng::seed_from_u64(self.config.shuffle_seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut history = Vec::with_capacity(self.config.epochs);

        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut total_loss = 0.0;
            let mut n_batches = 0usize;
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let xb = x.select_rows(chunk);
                let yb = y.select_rows(chunk);
                total_loss += self.train_batch(mlp, &xb, &yb, loss, optimizer);
                n_batches += 1;
            }
            history.push(EpochStats {
                epoch,
                mean_loss: total_loss / n_batches.max(1) as f64,
            });
        }
        history
    }

    /// One gradient step on a single batch; returns the batch loss.
    pub fn train_batch(
        &self,
        mlp: &mut Mlp,
        xb: &Matrix,
        yb: &Matrix,
        loss: &dyn Loss,
        optimizer: &mut dyn Optimizer,
    ) -> f64 {
        let pass = mlp.forward(xb);
        let batch_loss = loss.loss(pass.output(), yb);
        let grad_out = loss.grad(pass.output(), yb);
        let (grads, _) = mlp.backward(&pass, &grad_out);
        for (i, (gw, gb)) in grads.iter().enumerate() {
            let layer = &mut mlp.layers_mut()[i];
            optimizer.update(2 * i, layer.weights.as_mut_slice(), gw.as_slice());
            optimizer.update(2 * i + 1, &mut layer.bias, gb);
        }
        batch_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{BceWithLogits, Mse};
    use crate::optim::{AdamW, Sgd};

    fn xor_data() -> (Matrix, Matrix) {
        (
            Matrix::from_rows(&[&[0., 0.], &[0., 1.], &[1., 0.], &[1., 1.]]),
            Matrix::col_vector(&[0., 1., 1., 0.]),
        )
    }

    #[test]
    fn learns_xor_with_adamw() {
        let (x, y) = xor_data();
        let mut mlp = Mlp::new(&[2, 16, 1], 7);
        let mut optim = AdamW::new(0.02, 0.0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 400,
            batch_size: 4,
            shuffle_seed: 1,
        });
        let history = trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
        assert_eq!(mlp.predict_labels(&x), vec![0, 1, 1, 0]);
        // Loss decreased substantially.
        assert!(history.last().unwrap().mean_loss < history[0].mean_loss * 0.2);
    }

    #[test]
    fn learns_linear_regression_with_sgd() {
        // y = 2 x1 - x2 + 0.5
        let x = Matrix::from_fn(64, 2, |r, c| ((r * 2 + c) as f64 * 0.37).sin());
        let targets: Vec<f64> = (0..64).map(|r| 2.0 * x[(r, 0)] - x[(r, 1)] + 0.5).collect();
        let y = Matrix::col_vector(&targets);
        let mut mlp = Mlp::new(&[2, 8, 1], 3);
        let mut optim = Sgd::with_momentum(0.05, 0.9);
        let trainer = Trainer::new(TrainConfig {
            epochs: 300,
            batch_size: 16,
            shuffle_seed: 2,
        });
        trainer.fit(&mut mlp, &x, &y, &Mse, &mut optim);
        let out = mlp.predict(&x);
        let mse = Mse.loss(&out, &y);
        assert!(mse < 0.01, "final mse {mse}");
    }

    #[test]
    fn multi_output_regression() {
        // Two heads: y1 = x, y2 = -x.
        let x = Matrix::from_fn(32, 1, |r, _| r as f64 / 16.0 - 1.0);
        let y = Matrix::from_fn(32, 2, |r, c| {
            let v = x[(r, 0)];
            if c == 0 {
                v
            } else {
                -v
            }
        });
        let mut mlp = Mlp::new(&[1, 8, 2], 5);
        let mut optim = AdamW::adam(0.02);
        let trainer = Trainer::new(TrainConfig {
            epochs: 300,
            batch_size: 8,
            shuffle_seed: 3,
        });
        trainer.fit(&mut mlp, &x, &y, &Mse, &mut optim);
        let out = mlp.predict(&x);
        assert!(Mse.loss(&out, &y) < 0.01);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, y) = xor_data();
        let run = |seed: u64| {
            let mut mlp = Mlp::new(&[2, 8, 1], 7);
            let mut optim = AdamW::adam(0.02);
            let trainer = Trainer::new(TrainConfig {
                epochs: 20,
                batch_size: 2,
                shuffle_seed: seed,
            });
            trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
            mlp
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn history_has_one_entry_per_epoch() {
        let (x, y) = xor_data();
        let mut mlp = Mlp::new(&[2, 4, 1], 1);
        let mut optim = Sgd::new(0.1);
        let trainer = Trainer::new(TrainConfig {
            epochs: 7,
            batch_size: 2,
            shuffle_seed: 1,
        });
        let history = trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
        assert_eq!(history.len(), 7);
        for (i, h) in history.iter().enumerate() {
            assert_eq!(h.epoch, i);
            assert!(h.mean_loss.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "sample count mismatch")]
    fn fit_validates_shapes() {
        let mut mlp = Mlp::new(&[2, 4, 1], 1);
        let mut optim = Sgd::new(0.1);
        Trainer::default().fit(
            &mut mlp,
            &Matrix::ones(4, 2),
            &Matrix::ones(3, 1),
            &BceWithLogits,
            &mut optim,
        );
    }
}
