//! # occusense-nn
//!
//! A from-scratch dense neural-network library — the deep-learning
//! substrate of the `occusense` workspace. The Rust DL ecosystem being
//! thin (see the reproduction notes in DESIGN.md), everything the paper's
//! model needs is implemented here directly:
//!
//! * [`activation`] — ReLU, sigmoid, tanh and identity activations.
//! * [`layer`] — fully connected layers with explicit forward/backward.
//! * [`gru`] — a gated recurrent unit with hand-derived BPTT gradients
//!   for temporal CSI-window modeling, sharing the same bitwise
//!   determinism and zero-allocation contracts as the dense path.
//! * [`mlp`] — the multilayer perceptron, including the paper's
//!   `input → 128 → 256 → 128 → 1` architecture (§IV-B).
//! * [`loss`] — binary cross-entropy with logits (Eq. 4) and mean squared
//!   error (for the §V-D humidity/temperature regression).
//! * [`optim`] — SGD (with momentum), Adam, and AdamW with *decoupled*
//!   weight decay \[23\], the paper's training strategy.
//! * [`train`] — shuffled mini-batch training loop with loss history.
//! * [`workspace`] — reusable forward/backward buffers so the training
//!   and serving hot paths run allocation-free on the blocked GEMM
//!   kernels (see `occusense_tensor::kernels`).
//! * [`gradcam`] — Grad-CAM \[17\] importance weights (Eq. 5–6) plus the
//!   input-feature attribution used for Figure 3.
//! * [`serialize`] — a small text format for saving and loading trained
//!   models.
//!
//! Explicit backpropagation (rather than a tape autograd) is a deliberate
//! choice: Grad-CAM needs per-layer activations and gradients, and the
//! explicit formulation exposes them naturally.
//!
//! # Example
//!
//! ```
//! use occusense_nn::mlp::Mlp;
//! use occusense_nn::loss::BceWithLogits;
//! use occusense_nn::optim::AdamW;
//! use occusense_nn::train::{Trainer, TrainConfig};
//! use occusense_tensor::Matrix;
//!
//! // Learn XOR — a minimal non-linear task.
//! let x = Matrix::from_rows(&[&[0., 0.], &[0., 1.], &[1., 0.], &[1., 1.]]);
//! let y = Matrix::col_vector(&[0., 1., 1., 0.]);
//! let mut mlp = Mlp::new(&[2, 16, 1], 7);
//! let mut optim = AdamW::new(0.02, 0.0);
//! let trainer = Trainer::new(TrainConfig {
//!     epochs: 400,
//!     batch_size: 4,
//!     shuffle_seed: 1,
//!     ..TrainConfig::default()
//! });
//! trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
//! let preds = mlp.predict_labels(&x);
//! assert_eq!(preds, vec![0, 1, 1, 0]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod activation;
pub mod gradcam;
pub mod gru;
pub mod layer;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod quantize;
pub mod serialize;
pub mod train;
pub mod workspace;

pub use activation::Activation;
pub use gru::{Gru, GruWorkspace};
pub use mlp::Mlp;
pub use workspace::MlpWorkspace;
