//! Fully connected layers with explicit forward/backward passes.

use crate::activation::Activation;
use occusense_tensor::kernels::{self, Scratch};
use occusense_tensor::{init, Matrix};
use rand::Rng;

/// A dense (fully connected) layer `a = σ(x W + b)`.
///
/// Weights are stored `in_dim × out_dim`; a batch is a `n × in_dim`
/// matrix, so the forward pass is a plain matrix product.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    /// Weight matrix, `in_dim × out_dim`.
    pub weights: Matrix,
    /// Bias vector, length `out_dim`.
    pub bias: Vec<f64>,
    /// Activation applied to the pre-activation.
    pub activation: Activation,
}

/// Gradients of one layer produced by [`Dense::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGradients {
    /// `∂L/∂W`, same shape as the weights.
    pub weights: Matrix,
    /// `∂L/∂b`, length `out_dim`.
    pub bias: Vec<f64>,
    /// `∂L/∂x`, `n × in_dim` — the signal propagated to the previous
    /// layer.
    pub input: Matrix,
}

impl Dense {
    /// Creates a layer with Kaiming-initialised weights (ReLU-appropriate)
    /// and zero biases.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        Self {
            weights: init::kaiming_gaussian(in_dim, out_dim, rng),
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Number of trainable parameters (`in·out + out`).
    pub fn n_parameters(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass: returns `(pre_activation, activation)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, Matrix) {
        let z = x.matmul(&self.weights).add_row_broadcast(&self.bias);
        let a = self.activation.apply(&z);
        (z, a)
    }

    /// Fused forward pass into caller-owned buffers: `z = x W + b` and
    /// `a = σ(z)` written in a single output pass through
    /// [`kernels::gemm_bias_act`]. Bitwise identical to
    /// [`forward`](Self::forward) and allocation-free once `z`/`a` and
    /// the scratch have capacity (growth is counted on `scratch`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    // lint:no_alloc
    pub fn forward_into(&self, x: &Matrix, z: &mut Matrix, a: &mut Matrix, scratch: &mut Scratch) {
        assert_eq!(
            x.cols(),
            self.in_dim(),
            "dense forward: input width {} vs in_dim {}",
            x.cols(),
            self.in_dim()
        );
        let (m, k, n) = (x.rows(), self.in_dim(), self.out_dim());
        if z.ensure_shape(m, n) {
            scratch.note_grow();
        }
        if a.ensure_shape(m, n) {
            scratch.note_grow();
        }
        kernels::gemm_bias_act(
            m,
            k,
            n,
            x.as_slice(),
            self.weights.as_slice(),
            &self.bias,
            z.as_mut_slice(),
            a.as_mut_slice(),
            self.activation.scalar_fn(),
            scratch,
        );
    }
    // lint:end_no_alloc

    /// Backward pass.
    ///
    /// `x` is the layer input, `z` the pre-activation from
    /// [`forward`](Self::forward), and `grad_output` is `∂L/∂a`.
    ///
    /// Both matrix products run on the implicit-transpose kernels
    /// (`x^T · δ` via [`Matrix::matmul_tn`], `δ · W^T` via
    /// [`Matrix::matmul_nt`]) — no transposed copy of `x` or of the
    /// weights is ever materialised.
    pub fn backward(&self, x: &Matrix, z: &Matrix, grad_output: &Matrix) -> DenseGradients {
        // δ = ∂L/∂z = ∂L/∂a ⊙ σ'(z)
        let delta = grad_output.hadamard(&self.activation.derivative(z));
        DenseGradients {
            weights: x.matmul_tn(&delta),
            bias: delta.col_sums(),
            input: delta.matmul_nt(&self.weights),
        }
    }

    /// Backward pass into caller-owned buffers; the workspace analogue
    /// of [`backward`](Self::backward), allocation-free once every
    /// buffer has capacity (growth is counted on `scratch`).
    ///
    /// `delta` is pure scratch (the masked gradient `∂L/∂z`); `grad_w`
    /// and `grad_b` receive the parameter gradients. `grad_input`, when
    /// provided, receives `∂L/∂x` — pass `None` for the first layer of
    /// a network during training, where nothing consumes it and the
    /// `δ · W^T` product can be skipped outright.
    // lint:no_alloc
    #[allow(clippy::too_many_arguments)]
    pub fn backward_into(
        &self,
        x: &Matrix,
        z: &Matrix,
        grad_output: &Matrix,
        delta: &mut Matrix,
        grad_w: &mut Matrix,
        grad_b: &mut Vec<f64>,
        grad_input: Option<&mut Matrix>,
        scratch: &mut Scratch,
    ) {
        assert_eq!(z.shape(), grad_output.shape(), "dense backward: shapes");
        if delta.ensure_shape(z.rows(), z.cols()) {
            scratch.note_grow();
        }
        let dact = self.activation.scalar_derivative();
        for ((d, &g), &zz) in delta
            .as_mut_slice()
            .iter_mut()
            .zip(grad_output.as_slice())
            .zip(z.as_slice())
        {
            *d = g * dact(zz);
        }
        x.matmul_tn_into(delta, grad_w, scratch);
        if grad_b.capacity() < delta.cols() {
            scratch.note_grow();
        }
        delta.col_sums_into(grad_b);
        if let Some(gi) = grad_input {
            delta.matmul_nt_into(&self.weights, gi, scratch);
        }
    }
    // lint:end_no_alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let mut rng = StdRng::seed_from_u64(1);
        Dense::new(3, 2, Activation::Relu, &mut rng)
    }

    #[test]
    fn shapes_and_parameter_count() {
        let l = layer();
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 2);
        assert_eq!(l.n_parameters(), 8);
        let x = Matrix::ones(5, 3);
        let (z, a) = l.forward(&x);
        assert_eq!(z.shape(), (5, 2));
        assert_eq!(a.shape(), (5, 2));
    }

    #[test]
    fn forward_is_affine_before_activation() {
        let mut l = layer();
        l.activation = Activation::Identity;
        l.weights = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        l.bias = vec![10.0, 20.0];
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let (_, a) = l.forward(&x);
        assert_eq!(a.row(0), &[14.0, 25.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        // Scalar loss L = sum(a); check dL/dW, dL/db, dL/dx numerically.
        let mut rng = StdRng::seed_from_u64(2);
        let l = Dense::new(4, 3, Activation::Sigmoid, &mut rng);
        let x = init::gaussian(2, 4, 0.0, 1.0, &mut rng);
        let (z, a) = l.forward(&x);
        let grad_out = Matrix::ones(a.rows(), a.cols()); // dL/da for L = sum(a)
        let grads = l.backward(&x, &z, &grad_out);
        let eps = 1e-6;

        // Weights.
        for r in 0..4 {
            for c in 0..3 {
                let mut lp = l.clone();
                lp.weights[(r, c)] += eps;
                let mut lm = l.clone();
                lm.weights[(r, c)] -= eps;
                let numeric = (lp.forward(&x).1.sum() - lm.forward(&x).1.sum()) / (2.0 * eps);
                assert!(
                    (numeric - grads.weights[(r, c)]).abs() < 1e-5,
                    "dW[{r},{c}]: {numeric} vs {}",
                    grads.weights[(r, c)]
                );
            }
        }
        // Bias.
        for i in 0..3 {
            let mut lp = l.clone();
            lp.bias[i] += eps;
            let mut lm = l.clone();
            lm.bias[i] -= eps;
            let numeric = (lp.forward(&x).1.sum() - lm.forward(&x).1.sum()) / (2.0 * eps);
            assert!((numeric - grads.bias[i]).abs() < 1e-5);
        }
        // Input.
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let numeric = (l.forward(&xp).1.sum() - l.forward(&xm).1.sum()) / (2.0 * eps);
                assert!((numeric - grads.input[(r, c)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn relu_backward_blocks_negative_preactivations() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Dense::new(1, 1, Activation::Relu, &mut rng);
        l.weights = Matrix::from_rows(&[&[1.0]]);
        l.bias = vec![-5.0]; // always-negative pre-activation for small x
        let x = Matrix::from_rows(&[&[1.0]]);
        let (z, _) = l.forward(&x);
        let grads = l.backward(&x, &z, &Matrix::ones(1, 1));
        assert_eq!(grads.weights[(0, 0)], 0.0);
        assert_eq!(grads.bias[0], 0.0);
        assert_eq!(grads.input[(0, 0)], 0.0);
    }
}
