//! The multilayer perceptron.

use crate::activation::Activation;
use crate::layer::Dense;
use occusense_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A feed-forward network of [`Dense`] layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// The cached tensors of one forward pass, needed for backpropagation and
/// by Grad-CAM.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardPass {
    /// `activations[0]` is the input batch; `activations[i+1]` is the
    /// output of layer `i`. Length = layers + 1.
    pub activations: Vec<Matrix>,
    /// `preacts[i]` is the pre-activation of layer `i`.
    pub preacts: Vec<Matrix>,
}

impl ForwardPass {
    /// The network output (last activation).
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("non-empty network")
    }
}

impl Mlp {
    /// Builds an MLP with the given layer sizes (`sizes[0]` = input
    /// dimension), ReLU on all hidden layers and identity on the output —
    /// the paper's configuration.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_nn::Mlp;
    /// let mlp = Mlp::new(&[64, 128, 256, 128, 1], 42);
    /// assert_eq!(mlp.n_parameters(), 8320 + 33024 + 32896 + 129);
    /// ```
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for (i, w) in sizes.windows(2).enumerate() {
            let activation = if i + 2 == sizes.len() {
                Activation::Identity
            } else {
                Activation::Relu
            };
            layers.push(Dense::new(w[0], w[1], activation, &mut rng));
        }
        Self { layers }
    }

    /// The paper's occupancy-detection network for a given input width:
    /// `input → 128 → 256 → 128 → 1` (§IV-B; per-layer parameter counts
    /// 8 320 / 33 024 / 32 896 / 129 at `input = 64` — see DESIGN.md for
    /// the reading of the paper's slightly inconsistent figures).
    pub fn paper_classifier(input_dim: usize, seed: u64) -> Self {
        Self::new(&[input_dim, 128, 256, 128, 1], seed)
    }

    /// The same backbone with `n_outputs` regression heads, used for the
    /// §V-D humidity/temperature estimation.
    pub fn paper_regressor(input_dim: usize, n_outputs: usize, seed: u64) -> Self {
        Self::new(&[input_dim, 128, 256, 128, n_outputs], seed)
    }

    /// Creates an MLP from explicit layers (used by deserialisation).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive dimensions mismatch.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].out_dim(),
                w[1].in_dim(),
                "layer dimension mismatch: {} vs {}",
                w[0].out_dim(),
                w[1].in_dim()
            );
        }
        Self { layers }
    }

    /// The layers.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layers (used by the trainer and optimiser).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Total number of trainable parameters.
    pub fn n_parameters(&self) -> usize {
        self.layers.iter().map(Dense::n_parameters).sum()
    }

    /// Model size in KiB at the given bytes-per-parameter (4 for the f32
    /// deployment format the paper quotes, 8 for this crate's f64).
    pub fn size_kib(&self, bytes_per_parameter: usize) -> f64 {
        (self.n_parameters() * bytes_per_parameter) as f64 / 1024.0
    }

    /// Full forward pass with cached intermediates.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    pub fn forward(&self, x: &Matrix) -> ForwardPass {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        let mut preacts = Vec::with_capacity(self.layers.len());
        activations.push(x.clone());
        for layer in &self.layers {
            let (z, a) = layer.forward(activations.last().expect("seeded"));
            preacts.push(z);
            activations.push(a);
        }
        ForwardPass {
            activations,
            preacts,
        }
    }

    /// Network output for a batch (no cached intermediates).
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for layer in &self.layers {
            a = layer.forward(&a).1;
        }
        a
    }

    /// Sigmoid of the first output column — the occupancy confidence
    /// `p_t ∈ (0, 1)` of Eq. 4.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.predict(x)
            .col(0)
            .into_iter()
            .map(occusense_tensor::vecops::sigmoid)
            .collect()
    }

    /// Thresholded binary labels (`p > 0.5`).
    pub fn predict_labels(&self, x: &Matrix) -> Vec<u8> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| u8::from(p > 0.5))
            .collect()
    }

    /// Backpropagates `grad_output` (`∂L/∂output`) through the network.
    ///
    /// Returns per-layer `(∂L/∂W, ∂L/∂b)` plus the gradient with respect
    /// to the input batch (used by Grad-CAM's input attribution).
    pub fn backward(
        &self,
        pass: &ForwardPass,
        grad_output: &Matrix,
    ) -> (Vec<(Matrix, Vec<f64>)>, Matrix) {
        let mut grads = vec![None; self.layers.len()];
        let mut upstream = grad_output.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let g = layer.backward(&pass.activations[i], &pass.preacts[i], &upstream);
            upstream = g.input.clone();
            grads[i] = Some((g.weights, g.bias));
        }
        (
            grads.into_iter().map(|g| g.expect("filled")).collect(),
            upstream,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_classifier_parameter_count() {
        // 64-wide input (CSI only): 8320 + 33024 + 32896 + 129 = 74369,
        // the consistent reading of the paper's per-layer counts.
        let mlp = Mlp::paper_classifier(64, 1);
        assert_eq!(mlp.n_parameters(), 74_369);
        assert_eq!(mlp.input_dim(), 64);
        assert_eq!(mlp.output_dim(), 1);
        // 66-wide (CSI + env).
        let mlp = Mlp::paper_classifier(66, 1);
        assert_eq!(mlp.n_parameters(), 66 * 128 + 128 + 33_024 + 32_896 + 129);
    }

    #[test]
    fn paper_regressor_has_two_heads() {
        let mlp = Mlp::paper_regressor(64, 2, 1);
        assert_eq!(mlp.output_dim(), 2);
    }

    #[test]
    fn forward_pass_caches_all_intermediates() {
        let mlp = Mlp::new(&[4, 8, 3], 1);
        let x = Matrix::ones(5, 4);
        let pass = mlp.forward(&x);
        assert_eq!(pass.activations.len(), 3);
        assert_eq!(pass.preacts.len(), 2);
        assert_eq!(pass.output().shape(), (5, 3));
        assert_eq!(pass.activations[0], x);
        // predict agrees with forward.
        assert_eq!(mlp.predict(&x), *pass.output());
    }

    #[test]
    fn hidden_layers_relu_output_identity() {
        let mlp = Mlp::new(&[2, 4, 4, 1], 2);
        assert_eq!(mlp.layers()[0].activation, Activation::Relu);
        assert_eq!(mlp.layers()[1].activation, Activation::Relu);
        assert_eq!(mlp.layers()[2].activation, Activation::Identity);
    }

    #[test]
    fn probabilities_are_probabilities() {
        let mlp = Mlp::new(&[3, 8, 1], 3);
        let x = Matrix::from_fn(10, 3, |r, c| (r as f64 - 5.0) * (c as f64 + 1.0));
        for p in mlp.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
        for l in mlp.predict_labels(&x) {
            assert!(l <= 1);
        }
    }

    #[test]
    fn backward_gradient_matches_finite_differences() {
        // End-to-end gradient check on L = sum(output).
        let mlp = Mlp::new(&[3, 5, 2], 4);
        let x = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f64 * 0.7).sin());
        let pass = mlp.forward(&x);
        let ones = Matrix::ones(4, 2);
        let (grads, grad_x) = mlp.backward(&pass, &ones);
        let eps = 1e-6;

        // Check one weight per layer.
        for (li, (gw, _)) in grads.iter().enumerate() {
            let mut plus = mlp.clone();
            plus.layers_mut()[li].weights[(0, 0)] += eps;
            let mut minus = mlp.clone();
            minus.layers_mut()[li].weights[(0, 0)] -= eps;
            let numeric = (plus.predict(&x).sum() - minus.predict(&x).sum()) / (2.0 * eps);
            assert!(
                (numeric - gw[(0, 0)]).abs() < 1e-5,
                "layer {li}: {numeric} vs {}",
                gw[(0, 0)]
            );
        }
        // Check an input gradient.
        let mut xp = x.clone();
        xp[(1, 1)] += eps;
        let mut xm = x.clone();
        xm[(1, 1)] -= eps;
        let numeric = (mlp.predict(&xp).sum() - mlp.predict(&xm).sum()) / (2.0 * eps);
        assert!((numeric - grad_x[(1, 1)]).abs() < 1e-5);
    }

    #[test]
    fn deterministic_initialisation_per_seed() {
        assert_eq!(Mlp::new(&[4, 8, 1], 9), Mlp::new(&[4, 8, 1], 9));
        assert_ne!(Mlp::new(&[4, 8, 1], 9), Mlp::new(&[4, 8, 1], 10));
    }

    #[test]
    fn size_accounting() {
        let mlp = Mlp::new(&[2, 3, 1], 1);
        // (2*3+3) + (3*1+1) = 13 params.
        assert_eq!(mlp.n_parameters(), 13);
        assert!((mlp.size_kib(4) - 13.0 * 4.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn rejects_degenerate_architecture() {
        Mlp::new(&[5], 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn from_layers_validates_dimensions() {
        let mut rng = StdRng::seed_from_u64(1);
        let l1 = Dense::new(2, 3, Activation::Relu, &mut rng);
        let l2 = Dense::new(4, 1, Activation::Identity, &mut rng);
        Mlp::from_layers(vec![l1, l2]);
    }
}
