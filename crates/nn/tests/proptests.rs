//! Property-based tests for the neural-network crate.

use occusense_nn::activation::Activation;
use occusense_nn::gru::{Gru, GruWorkspace};
use occusense_nn::loss::{BceWithLogits, Loss, Mse};
use occusense_nn::mlp::Mlp;
use occusense_nn::serialize;
use occusense_tensor::kernels::Parallelism;
use occusense_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_architecture() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..12, 2..5)
}

fn batch(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn forward_shapes_are_consistent(sizes in small_architecture(), seed in 0u64..100) {
        let mlp = Mlp::new(&sizes, seed);
        let x = Matrix::ones(3, sizes[0]);
        let pass = mlp.forward(&x);
        prop_assert_eq!(pass.activations.len(), sizes.len());
        prop_assert_eq!(pass.output().shape(), (3, *sizes.last().unwrap()));
        for (i, z) in pass.preacts.iter().enumerate() {
            prop_assert_eq!(z.shape(), (3, sizes[i + 1]));
        }
    }

    #[test]
    fn predictions_are_finite(sizes in small_architecture(), seed in 0u64..100) {
        let mlp = Mlp::new(&sizes, seed);
        let x = Matrix::from_fn(4, sizes[0], |r, c| ((r * 7 + c * 3) as f64 * 0.21).sin() * 3.0);
        let out = mlp.predict(&x);
        prop_assert!(out.as_slice().iter().all(|v| v.is_finite()));
        for p in mlp.predict_proba(&x) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn serialization_round_trip(sizes in small_architecture(), seed in 0u64..100) {
        let mlp = Mlp::new(&sizes, seed);
        let mut buf = Vec::new();
        serialize::save(&mut buf, &mlp).unwrap();
        let back = serialize::load(&buf[..]).unwrap();
        prop_assert_eq!(back, mlp);
    }

    #[test]
    fn bce_loss_nonnegative(
        logits in prop::collection::vec(-20.0f64..20.0, 1..20),
        flips in prop::collection::vec(0u8..2, 1..20),
    ) {
        let n = logits.len().min(flips.len());
        let z = Matrix::col_vector(&logits[..n]);
        let y = Matrix::col_vector(&flips[..n].iter().map(|&f| f as f64).collect::<Vec<_>>());
        let l = BceWithLogits.loss(&z, &y);
        prop_assert!(l >= 0.0 && l.is_finite());
    }

    #[test]
    fn mse_loss_nonnegative_and_zero_on_match(v in prop::collection::vec(-100.0f64..100.0, 1..20)) {
        let m = Matrix::col_vector(&v);
        prop_assert_eq!(Mse.loss(&m, &m), 0.0);
        let shifted = m.map(|x| x + 1.0);
        let l = Mse.loss(&shifted, &m);
        prop_assert!((l - 1.0).abs() < 1e-9);
    }

    #[test]
    fn backward_gradients_finite(seed in 0u64..50, x in batch(3, 4)) {
        let mlp = Mlp::new(&[4, 6, 2], seed);
        let pass = mlp.forward(&x);
        let grad_out = Matrix::ones(3, 2);
        let (grads, grad_x) = mlp.backward(&pass, &grad_out);
        prop_assert!(grad_x.as_slice().iter().all(|v| v.is_finite()));
        for (gw, gb) in grads {
            prop_assert!(gw.as_slice().iter().all(|v| v.is_finite()));
            prop_assert!(gb.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn relu_output_nonnegative(x in batch(2, 5)) {
        let a = Activation::Relu.apply(&x);
        prop_assert!(a.as_slice().iter().all(|&v| v >= 0.0));
        // Derivative is 0/1.
        let d = Activation::Relu.derivative(&x);
        prop_assert!(d.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn gru_backward_matches_finite_differences(seed in 0u64..20, t_len in 1usize..4) {
        // Central differences on one sampled entry per parameter tensor
        // (the exhaustive sweep lives in the unit tests; here the shapes
        // and seeds vary instead).
        let mut rng = StdRng::seed_from_u64(seed);
        let gru = Gru::new(3, 4, &mut rng);
        let xs: Vec<Matrix> = (0..t_len)
            .map(|t| Matrix::from_fn(2, 3, |r, c| (((t * 2 + r) * 3 + c) as f64 * 0.47).sin()))
            .collect();
        let h0 = Matrix::zeros(2, 4);
        let mut ws = GruWorkspace::new();
        gru.forward_seq(&xs, &h0, &mut ws);
        gru.backward_seq(&xs, &Matrix::ones(2, 4), &mut ws);
        let sum_h = |g: &Gru| {
            let mut w = GruWorkspace::new();
            g.forward_seq(&xs, &h0, &mut w);
            w.h_last().sum()
        };
        let eps = 1e-6;
        #[allow(clippy::type_complexity)]
        let probes: [(fn(&mut Gru) -> &mut Matrix, f64); 6] = [
            (|g| &mut g.w_z, ws.grad_w_z()[(1, 2)]),
            (|g| &mut g.w_r, ws.grad_w_r()[(1, 2)]),
            (|g| &mut g.w_n, ws.grad_w_n()[(1, 2)]),
            (|g| &mut g.u_z, ws.grad_u_z()[(2, 3)]),
            (|g| &mut g.u_r, ws.grad_u_r()[(2, 3)]),
            (|g| &mut g.u_n, ws.grad_u_n()[(2, 3)]),
        ];
        for (i, (field, analytic)) in probes.into_iter().enumerate() {
            let (r, c) = if i < 3 { (1, 2) } else { (2, 3) };
            let mut gp = gru.clone();
            field(&mut gp)[(r, c)] += eps;
            let mut gm = gru.clone();
            field(&mut gm)[(r, c)] -= eps;
            let numeric = (sum_h(&gp) - sum_h(&gm)) / (2.0 * eps);
            prop_assert!((numeric - analytic).abs() < 1e-5, "tensor {}: {} vs {}", i, numeric, analytic);
        }
        #[allow(clippy::type_complexity)]
        let bias_probes: [(fn(&mut Gru) -> &mut Vec<f64>, f64); 3] = [
            (|g| &mut g.b_z, ws.grad_b_z()[1]),
            (|g| &mut g.b_r, ws.grad_b_r()[1]),
            (|g| &mut g.b_n, ws.grad_b_n()[1]),
        ];
        for (i, (field, analytic)) in bias_probes.into_iter().enumerate() {
            let mut gp = gru.clone();
            field(&mut gp)[1] += eps;
            let mut gm = gru.clone();
            field(&mut gm)[1] -= eps;
            let numeric = (sum_h(&gp) - sum_h(&gm)) / (2.0 * eps);
            prop_assert!((numeric - analytic).abs() < 1e-5, "bias {}: {} vs {}", i, numeric, analytic);
        }
    }

    #[test]
    fn gru_thread_count_is_bitwise_invisible(seed in 0u64..30, threads in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gru = Gru::new(8, 12, &mut rng);
        let xs: Vec<Matrix> = (0..4)
            .map(|t| Matrix::from_fn(24, 8, |r, c| (((t * 24 + r) * 8 + c) as f64 * 0.13).cos()))
            .collect();
        let h0 = Matrix::zeros(24, 12);
        let run = |par: Parallelism| {
            let mut ws = GruWorkspace::with_parallelism(par);
            gru.forward_seq(&xs, &h0, &mut ws);
            gru.backward_seq(&xs, &Matrix::ones(24, 12), &mut ws);
            (ws.h_last().clone(), ws.grad_w_n().clone(), ws.grad_u_z().clone())
        };
        prop_assert_eq!(run(Parallelism::Single), run(Parallelism::Threads(threads)));
    }

    #[test]
    fn gru_chunked_scoring_is_bitwise_equal(seed in 0u64..30, t_len in 2usize..9, split_frac in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gru = Gru::new(5, 7, &mut rng);
        let xs: Vec<Matrix> = (0..t_len)
            .map(|t| Matrix::from_fn(3, 5, |r, c| (((t * 3 + r) * 5 + c) as f64 * 0.23).sin()))
            .collect();
        let h0 = Matrix::zeros(3, 7);
        let mut ws = GruWorkspace::new();
        gru.forward_seq(&xs, &h0, &mut ws);
        let one_shot = ws.h_last().clone();
        // Feed in two chunks with carried state.
        let split = 1 + ((split_frac * (t_len - 1) as f64) as usize).min(t_len - 1);
        let mut ws2 = GruWorkspace::new();
        gru.forward_seq(&xs[..split], &h0, &mut ws2);
        let carried = ws2.h_last().clone();
        if split < t_len {
            gru.forward_seq(&xs[split..], &carried, &mut ws2);
        }
        prop_assert_eq!(ws2.h_last(), &one_shot);
        // And one timestep at a time through the stateful step path.
        let mut h = h0.clone();
        let mut h_next = Matrix::default();
        for x in &xs {
            gru.step(x, &h, &mut h_next, &mut ws2);
            std::mem::swap(&mut h, &mut h_next);
        }
        prop_assert_eq!(&h, &one_shot);
    }

    #[test]
    fn gru_serialization_round_trip(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gru = Gru::new(6, 9, &mut rng);
        let mut buf = Vec::new();
        serialize::save_gru(&mut buf, &gru).unwrap();
        let back = serialize::load_gru(&buf[..]).unwrap();
        prop_assert_eq!(back, gru);
    }

    #[test]
    fn gradcam_attribution_length_matches_input(seed in 0u64..50) {
        let mlp = Mlp::new(&[5, 8, 1], seed);
        let x = Matrix::from_fn(6, 5, |r, c| (r as f64 - c as f64) * 0.3);
        let attr = occusense_nn::gradcam::input_attribution(&mlp, &x, 1.0);
        prop_assert_eq!(attr.len(), 5);
        prop_assert!(attr.iter().all(|v| v.is_finite()));
        // Class flip negates the attribution.
        let neg = occusense_nn::gradcam::input_attribution(&mlp, &x, -1.0);
        for (a, b) in attr.iter().zip(&neg) {
            prop_assert!((a + b).abs() < 1e-9);
        }
    }
}
