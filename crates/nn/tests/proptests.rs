//! Property-based tests for the neural-network crate.

use occusense_nn::activation::Activation;
use occusense_nn::loss::{BceWithLogits, Loss, Mse};
use occusense_nn::mlp::Mlp;
use occusense_nn::serialize;
use occusense_tensor::Matrix;
use proptest::prelude::*;

fn small_architecture() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..12, 2..5)
}

fn batch(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn forward_shapes_are_consistent(sizes in small_architecture(), seed in 0u64..100) {
        let mlp = Mlp::new(&sizes, seed);
        let x = Matrix::ones(3, sizes[0]);
        let pass = mlp.forward(&x);
        prop_assert_eq!(pass.activations.len(), sizes.len());
        prop_assert_eq!(pass.output().shape(), (3, *sizes.last().unwrap()));
        for (i, z) in pass.preacts.iter().enumerate() {
            prop_assert_eq!(z.shape(), (3, sizes[i + 1]));
        }
    }

    #[test]
    fn predictions_are_finite(sizes in small_architecture(), seed in 0u64..100) {
        let mlp = Mlp::new(&sizes, seed);
        let x = Matrix::from_fn(4, sizes[0], |r, c| ((r * 7 + c * 3) as f64 * 0.21).sin() * 3.0);
        let out = mlp.predict(&x);
        prop_assert!(out.as_slice().iter().all(|v| v.is_finite()));
        for p in mlp.predict_proba(&x) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn serialization_round_trip(sizes in small_architecture(), seed in 0u64..100) {
        let mlp = Mlp::new(&sizes, seed);
        let mut buf = Vec::new();
        serialize::save(&mut buf, &mlp).unwrap();
        let back = serialize::load(&buf[..]).unwrap();
        prop_assert_eq!(back, mlp);
    }

    #[test]
    fn bce_loss_nonnegative(
        logits in prop::collection::vec(-20.0f64..20.0, 1..20),
        flips in prop::collection::vec(0u8..2, 1..20),
    ) {
        let n = logits.len().min(flips.len());
        let z = Matrix::col_vector(&logits[..n]);
        let y = Matrix::col_vector(&flips[..n].iter().map(|&f| f as f64).collect::<Vec<_>>());
        let l = BceWithLogits.loss(&z, &y);
        prop_assert!(l >= 0.0 && l.is_finite());
    }

    #[test]
    fn mse_loss_nonnegative_and_zero_on_match(v in prop::collection::vec(-100.0f64..100.0, 1..20)) {
        let m = Matrix::col_vector(&v);
        prop_assert_eq!(Mse.loss(&m, &m), 0.0);
        let shifted = m.map(|x| x + 1.0);
        let l = Mse.loss(&shifted, &m);
        prop_assert!((l - 1.0).abs() < 1e-9);
    }

    #[test]
    fn backward_gradients_finite(seed in 0u64..50, x in batch(3, 4)) {
        let mlp = Mlp::new(&[4, 6, 2], seed);
        let pass = mlp.forward(&x);
        let grad_out = Matrix::ones(3, 2);
        let (grads, grad_x) = mlp.backward(&pass, &grad_out);
        prop_assert!(grad_x.as_slice().iter().all(|v| v.is_finite()));
        for (gw, gb) in grads {
            prop_assert!(gw.as_slice().iter().all(|v| v.is_finite()));
            prop_assert!(gb.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn relu_output_nonnegative(x in batch(2, 5)) {
        let a = Activation::Relu.apply(&x);
        prop_assert!(a.as_slice().iter().all(|&v| v >= 0.0));
        // Derivative is 0/1.
        let d = Activation::Relu.derivative(&x);
        prop_assert!(d.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn gradcam_attribution_length_matches_input(seed in 0u64..50) {
        let mlp = Mlp::new(&[5, 8, 1], seed);
        let x = Matrix::from_fn(6, 5, |r, c| (r as f64 - c as f64) * 0.3);
        let attr = occusense_nn::gradcam::input_attribution(&mlp, &x, 1.0);
        prop_assert_eq!(attr.len(), 5);
        prop_assert!(attr.iter().all(|v| v.is_finite()));
        // Class flip negates the attribution.
        let neg = occusense_nn::gradcam::input_attribution(&mlp, &x, -1.0);
        for (a, b) in attr.iter().zip(&neg) {
            prop_assert!((a + b).abs() < 1e-9);
        }
    }
}
