//! Property-based tests for the simulator.

use occusense_sim::environment::{EnvironmentConfig, EnvironmentState};
use occusense_sim::mobility::{MobilityConfig, SubjectMobility};
use occusense_sim::schedule::Schedule;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn environment_stays_physical(
        seed_hours in 0.0f64..24.0,
        occupants in 0usize..7,
        steps in 10usize..400,
    ) {
        let cfg = EnvironmentConfig::office_winter();
        let mut s = EnvironmentState::initial();
        for i in 0..steps {
            let t = i as f64 * 30.0;
            let h = (seed_hours + t / 3600.0) % 24.0;
            s.step(&cfg, 30.0, t, h, occupants);
            prop_assert!((5.0..45.0).contains(&s.temperature_c), "T {}", s.temperature_c);
            prop_assert!(s.absolute_humidity_g_m3 > 0.0);
            let rh = s.relative_humidity_pct();
            prop_assert!((0.0..=100.0).contains(&rh));
            prop_assert!((0.0..=1.0).contains(&s.heater_duty));
        }
    }

    #[test]
    fn schedules_respect_subject_count(n in 1usize..8, seed in 0u64..50) {
        let s = Schedule::turetta2022(n, seed);
        prop_assert_eq!(s.subjects.len(), n);
        for t in [0.0, 50_000.0, 150_000.0, 250_000.0] {
            prop_assert!(s.count(t) <= n);
        }
    }

    #[test]
    fn night_folds_empty_for_all_seeds(seed in 0u64..30) {
        let s = Schedule::turetta2022(6, seed);
        // Spot-check the three night folds (Table III anchors are
        // scripted, so this must hold for every seed).
        let folds = occusense_dataset::folds::turetta_folds();
        for f in &folds[1..4] {
            for k in 0..10 {
                let t = f.start_s + (f.end_s - f.start_s) * k as f64 / 10.0;
                prop_assert_eq!(s.count(t), 0, "seed {}, fold {}, t {}", seed, f.index, t);
            }
        }
    }

    #[test]
    fn fold5_never_empty_for_all_seeds(seed in 0u64..30) {
        let s = Schedule::turetta2022(6, seed);
        let folds = occusense_dataset::folds::turetta_folds();
        let f5 = &folds[5];
        for k in 0..40 {
            let t = f5.start_s + (f5.end_s - f5.start_s) * (k as f64 + 0.5) / 40.0;
            prop_assert!(s.count(t) >= 1, "seed {seed}, t {t}");
        }
    }

    #[test]
    fn mobility_never_escapes_the_room(seed in 0u64..50, steps in 100usize..3000) {
        let cfg = MobilityConfig::office_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SubjectMobility::entering((0.4, 5.5), (6.0, 4.5));
        for _ in 0..steps {
            m.step(&cfg, 1.0, &mut rng);
            let (x, y) = m.position;
            prop_assert!((0.0..=12.0).contains(&x) && (0.0..=6.0).contains(&y));
        }
    }
}
