//! The environment sensor model (Nordic Thingy 52 stand-in).
//!
//! The real sensor reports temperature with two decimals and humidity as
//! an integer percentage (Table I), reacts with a thermal lag, and adds a
//! little measurement noise. The sensor also samples slower than the
//! 20 Hz CSI stream; values are held between samples.

use rand::Rng;

/// Configuration of the environment sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorConfig {
    /// First-order lag time constant, seconds.
    pub lag_s: f64,
    /// Temperature noise, °C (std of white Gaussian noise).
    pub temperature_noise_c: f64,
    /// Humidity noise, % RH.
    pub humidity_noise_pct: f64,
    /// Temperature quantisation step, °C (Table I shows 0.01).
    pub temperature_step_c: f64,
    /// Humidity quantisation step, % (Table I shows integers).
    pub humidity_step_pct: f64,
    /// Sampling interval, seconds (values are held in between).
    pub sample_interval_s: f64,
}

impl SensorConfig {
    /// A Thingy-52-like sensor placed in still air: 5-minute effective
    /// lag (sensor + enclosure + local air pocket), 0.08 °C / 1 % noise,
    /// 0.01 °C and 1 % quantisation, 1 Hz sampling.
    pub fn thingy52() -> Self {
        Self {
            lag_s: 300.0,
            temperature_noise_c: 0.08,
            humidity_noise_pct: 1.0,
            temperature_step_c: 0.01,
            humidity_step_pct: 1.0,
            sample_interval_s: 1.0,
        }
    }
}

impl Default for SensorConfig {
    fn default() -> Self {
        Self::thingy52()
    }
}

/// Stateful environment sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvSensor {
    config: SensorConfig,
    lagged_temperature_c: f64,
    lagged_humidity_pct: f64,
    reported_temperature_c: f64,
    reported_humidity_pct: f64,
    next_sample_s: f64,
}

impl EnvSensor {
    /// Creates a sensor pre-settled at the given initial environment.
    pub fn new(config: SensorConfig, temperature_c: f64, humidity_pct: f64) -> Self {
        Self {
            config,
            lagged_temperature_c: temperature_c,
            lagged_humidity_pct: humidity_pct,
            reported_temperature_c: quantize(temperature_c, config.temperature_step_c),
            reported_humidity_pct: quantize(humidity_pct, config.humidity_step_pct),
            next_sample_s: 0.0,
        }
    }

    /// Advances the sensor to scenario time `t_s` given the true
    /// environment, and returns `(temperature, humidity)` as reported.
    pub fn read(
        &mut self,
        t_s: f64,
        dt_s: f64,
        true_temperature_c: f64,
        true_humidity_pct: f64,
        rng: &mut impl Rng,
    ) -> (f64, f64) {
        // First-order lag towards the true values.
        let alpha = (dt_s / self.config.lag_s).min(1.0);
        self.lagged_temperature_c += (true_temperature_c - self.lagged_temperature_c) * alpha;
        self.lagged_humidity_pct += (true_humidity_pct - self.lagged_humidity_pct) * alpha;

        // Sample-and-hold with noise + quantisation at the sensor rate.
        if t_s >= self.next_sample_s {
            let t_noisy =
                self.lagged_temperature_c + self.config.temperature_noise_c * gaussian(rng);
            let h_noisy = self.lagged_humidity_pct + self.config.humidity_noise_pct * gaussian(rng);
            self.reported_temperature_c = quantize(t_noisy, self.config.temperature_step_c);
            self.reported_humidity_pct =
                quantize(h_noisy.clamp(0.0, 100.0), self.config.humidity_step_pct);
            self.next_sample_s = t_s + self.config.sample_interval_s;
        }
        (self.reported_temperature_c, self.reported_humidity_pct)
    }
}

fn quantize(x: f64, step: f64) -> f64 {
    if step > 0.0 {
        (x / step).round() * step
    } else {
        x
    }
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn humidity_is_integer_valued() {
        let mut s = EnvSensor::new(SensorConfig::thingy52(), 21.0, 40.3);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..100 {
            let (_, h) = s.read(i as f64, 1.0, 21.0, 40.3, &mut rng);
            assert_eq!(h, h.round(), "humidity {h} not integer");
        }
    }

    #[test]
    fn temperature_has_centidegree_grid() {
        let mut s = EnvSensor::new(SensorConfig::thingy52(), 21.0, 40.0);
        let mut rng = StdRng::seed_from_u64(2);
        let (t, _) = s.read(0.0, 1.0, 21.1234, 40.0, &mut rng);
        let scaled = t * 100.0;
        assert!((scaled - scaled.round()).abs() < 1e-9, "temperature {t}");
    }

    #[test]
    fn lag_smooths_step_change() {
        let cfg = SensorConfig {
            temperature_noise_c: 0.0,
            humidity_noise_pct: 0.0,
            ..SensorConfig::thingy52()
        };
        let mut s = EnvSensor::new(cfg, 20.0, 40.0);
        let mut rng = StdRng::seed_from_u64(3);
        // True temperature jumps to 25; after one time constant (300 s)
        // the sensor reads ~63 % of the step.
        let mut t_read = 0.0;
        for i in 0..300 {
            let (t, _) = s.read(i as f64, 1.0, 25.0, 40.0, &mut rng);
            t_read = t;
        }
        assert!(t_read > 22.5 && t_read < 24.5, "lagged read {t_read}");
    }

    #[test]
    fn sample_and_hold_between_samples() {
        let cfg = SensorConfig {
            sample_interval_s: 10.0,
            ..SensorConfig::thingy52()
        };
        let mut s = EnvSensor::new(cfg, 21.0, 40.0);
        let mut rng = StdRng::seed_from_u64(4);
        let (t0, h0) = s.read(0.0, 0.05, 22.0, 45.0, &mut rng);
        // Sub-interval reads return the held values.
        let (t1, h1) = s.read(0.05, 0.05, 22.0, 45.0, &mut rng);
        let (t2, h2) = s.read(5.0, 0.05, 22.0, 45.0, &mut rng);
        assert_eq!((t0, h0), (t1, h1));
        assert_eq!((t0, h0), (t2, h2));
    }

    #[test]
    fn humidity_clamped_to_valid_range() {
        let cfg = SensorConfig {
            humidity_noise_pct: 50.0,
            ..SensorConfig::thingy52()
        };
        let mut s = EnvSensor::new(cfg, 21.0, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..200 {
            let (_, h) = s.read(i as f64, 1.0, 21.0, 1.0, &mut rng);
            assert!((0.0..=100.0).contains(&h), "humidity {h}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut s = EnvSensor::new(SensorConfig::thingy52(), 21.0, 40.0);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50)
                .map(|i| s.read(i as f64, 1.0, 21.0 + i as f64 * 0.01, 40.0, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
