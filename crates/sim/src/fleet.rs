//! Multi-tenant fleet traffic scenario: the deterministic description
//! of "N tenants × M sensors, tenant 0 saturated" that both the chaos
//! driver (`occusense-fleet`'s `fleet_storm`) and its verifier replay.
//!
//! The scenario is pure data plus arithmetic seed mixing — no hashing
//! — so a driver process and an independent verifier that hold the
//! same [`FleetScenario`] derive bit-identical per-sensor record
//! streams and per-tenant model seeds. That shared derivation is what
//! turns "the prediction that came back over the wire" into something
//! a verifier can re-score locally and compare bitwise.
//!
//! Tenant 0 is *the saturated tenant* by convention: fleet drivers
//! give it a tight SLO (small queue, reject-newest, half the sensor
//! budget) and assert it sheds while every other tenant stays within
//! latency budget.

use crate::stream::{fleet_stream, RecordStream};
use crate::scenario::ScenarioConfig;

/// Sensor index reserved for unloaded-baseline probes, far outside the
/// storm's `0..sensors_per_tenant` range so baseline streams never
/// collide with storm streams.
pub const BASELINE_SENSOR: u64 = 9999;

/// A deterministic multi-tenant fleet storm: every tenant runs the
/// same number of sensors and records, tenant 0 is the saturated one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetScenario {
    /// Master seed; tenant model and traffic seeds derive from it.
    pub base_seed: u64,
    /// Number of tenants (tenant 0 saturated).
    pub tenants: usize,
    /// Sensors attempted per tenant.
    pub sensors_per_tenant: usize,
    /// Records each storm sensor replays.
    pub records_per_sensor: usize,
}

impl FleetScenario {
    /// A storm of `tenants` × `sensors_per_tenant` × `records_per_sensor`
    /// seeded with `base_seed`.
    pub fn storm(
        tenants: usize,
        sensors_per_tenant: usize,
        records_per_sensor: usize,
        base_seed: u64,
    ) -> Self {
        Self {
            base_seed,
            tenants,
            sensors_per_tenant,
            records_per_sensor,
        }
    }

    /// The tenant fleet drivers saturate (tight queue, admission cap).
    pub fn saturated_tenant(&self) -> usize {
        0
    }

    /// Whether `tenant` is the saturated one.
    pub fn is_saturated(&self, tenant: usize) -> bool {
        tenant == self.saturated_tenant()
    }

    /// The seed a tenant's bootstrap model trains from. Distinct per
    /// tenant so cross-tenant routing cannot survive a bitwise replay:
    /// a record scored by the wrong tenant's model cannot match.
    pub fn model_seed(&self, tenant: usize) -> u64 {
        self.base_seed.wrapping_add(17 * (tenant as u64 + 1))
    }

    /// The base seed of a tenant's traffic streams. Spaced wide enough
    /// (1000 per tenant) that per-sensor offsets of neighbouring
    /// tenants never overlap.
    pub fn traffic_seed(&self, tenant: usize) -> u64 {
        self.base_seed.wrapping_add(1000 * tenant as u64)
    }

    /// Scenario duration, seconds, guaranteed to yield at least
    /// `records` samples at the shared `quick` sample rate.
    pub fn duration_s(records: usize) -> f64 {
        let rate = ScenarioConfig::quick(1.0, 0).sample_rate_hz;
        records as f64 / rate + 1.0
    }

    /// Storm sensor `sensor` of `tenant`: the stream both the driver
    /// sends and the verifier re-scores. Callers `take(records_per_sensor)`.
    pub fn sensor_stream(&self, tenant: usize, sensor: u64) -> RecordStream {
        fleet_stream(
            Self::duration_s(self.records_per_sensor),
            self.traffic_seed(tenant),
            sensor,
        )
    }

    /// An unloaded-baseline probe stream for `tenant`, `records` long,
    /// on the reserved [`BASELINE_SENSOR`] index.
    pub fn baseline_stream(&self, tenant: usize, records: usize) -> RecordStream {
        fleet_stream(
            Self::duration_s(records),
            self.traffic_seed(tenant),
            BASELINE_SENSOR,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_dataset::CsiRecord;

    fn collect(stream: RecordStream, n: usize) -> Vec<CsiRecord> {
        stream.take(n).collect()
    }

    #[test]
    fn same_scenario_derives_identical_streams() {
        let a = FleetScenario::storm(3, 6, 40, 100);
        let b = FleetScenario::storm(3, 6, 40, 100);
        let ra = collect(a.sensor_stream(1, 2), 40);
        let rb = collect(b.sensor_stream(1, 2), 40);
        assert_eq!(ra.len(), 40, "duration must cover the record budget");
        assert_eq!(ra, rb, "replay must be bit-identical across holders");
    }

    #[test]
    fn tenants_and_sensors_get_distinct_streams() {
        let s = FleetScenario::storm(3, 6, 20, 100);
        let t0 = collect(s.sensor_stream(0, 0), 20);
        let t1 = collect(s.sensor_stream(1, 0), 20);
        let t0s1 = collect(s.sensor_stream(0, 1), 20);
        assert_ne!(t0, t1, "tenant streams must differ");
        assert_ne!(t0, t0s1, "sensor streams within a tenant must differ");
    }

    #[test]
    fn model_seeds_are_distinct_per_tenant() {
        let s = FleetScenario::storm(4, 2, 10, 7);
        let seeds: Vec<u64> = (0..4).map(|t| s.model_seed(t)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn tenant_zero_is_the_saturated_one() {
        let s = FleetScenario::storm(3, 6, 40, 100);
        assert_eq!(s.saturated_tenant(), 0);
        assert!(s.is_saturated(0));
        assert!(!s.is_saturated(1));
    }

    #[test]
    fn baseline_probe_never_collides_with_storm_sensors() {
        let s = FleetScenario::storm(2, 6, 20, 100);
        assert!(BASELINE_SENSOR >= s.sensors_per_tenant as u64);
        let probe = collect(s.baseline_stream(1, 20), 20);
        let storm = collect(s.sensor_stream(1, 0), 20);
        assert_eq!(probe.len(), 20);
        assert_ne!(probe, storm);
    }
}
