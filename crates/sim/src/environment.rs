//! Coupled temperature and humidity dynamics of the office.
//!
//! §V-A of the paper observes that "temperature and humidity strictly
//! depend on the heating system and on human presence": the office heater
//! activates automatically on a schedule with thermostat hysteresis,
//! occupants add body heat and respiration moisture, windows get opened,
//! and the outdoors imposes a diurnal cycle. This module integrates those
//! dynamics with a simple forward-Euler scheme.
//!
//! Humidity is tracked as *absolute* humidity (g/m³) and converted to
//! relative humidity through the Magnus formula of
//! [`occusense_channel::air`]; heating therefore *lowers* relative
//! humidity, reproducing the winter-office RH range (16–49 %) of
//! Table III.

use occusense_channel::air;

/// Static parameters of the environment model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvironmentConfig {
    /// Temperature the room relaxes to with the heater off (the building
    /// envelope stays warm overnight), °C.
    pub envelope_temperature_c: f64,
    /// Relaxation time constant towards the envelope, hours.
    pub thermal_time_constant_h: f64,
    /// Additional relaxation towards *outdoor* temperature when a window
    /// is open (much faster), hours.
    pub window_time_constant_h: f64,
    /// Heater output when on, °C/h of room temperature rise.
    pub heater_power_c_per_h: f64,
    /// Body-heat contribution per occupant, °C/h.
    pub occupant_heat_c_per_h: f64,
    /// Thermostat switch-on threshold, °C.
    pub thermostat_on_c: f64,
    /// Thermostat switch-off threshold, °C (must exceed `thermostat_on_c`).
    pub thermostat_off_c: f64,
    /// Daily heating window start hour (the building's automatic system).
    pub heating_start_h: f64,
    /// Daily heating window end hour.
    pub heating_end_h: f64,
    /// Excess temperature the sensor reads when the radiator duty cycle is
    /// high (the Thingy sits near a radiator; reproduces the 30–40 °C
    /// spikes Table III reports during heating), °C at full duty.
    pub radiator_coupling_c: f64,
    /// Mean outdoor temperature, °C (January in northern Italy).
    pub outdoor_mean_c: f64,
    /// Amplitude of the outdoor diurnal cycle, °C.
    pub outdoor_amplitude_c: f64,
    /// Baseline outdoor relative humidity, %.
    pub outdoor_rh_pct: f64,
    /// Amplitude of the multi-day weather wave on outdoor temperature,
    /// °C. Weather makes the indoor environment drift independently of
    /// occupancy — the "variations in humidity and temperature" the
    /// paper's approach must be resilient to.
    pub weather_temperature_amp_c: f64,
    /// Amplitude of the weather wave on outdoor relative humidity, %
    /// (in phase with the temperature wave: winter warm fronts are
    /// humid).
    pub weather_rh_amp_pct: f64,
    /// Period of the weather wave, seconds (non-commensurate with the
    /// day so folds see different weather).
    pub weather_period_s: f64,
    /// Baseline air-exchange rate, room volumes per hour.
    pub air_changes_per_h: f64,
    /// Extra air-exchange rate while a window is open, volumes per hour.
    pub window_air_changes_per_h: f64,
    /// Respiration moisture per occupant, g/h.
    pub occupant_vapor_g_per_h: f64,
    /// Room volume, m³.
    pub room_volume_m3: f64,
}

impl EnvironmentConfig {
    /// Parameters tuned for the paper's office in January.
    pub fn office_winter() -> Self {
        Self {
            envelope_temperature_c: 17.8,
            thermal_time_constant_h: 9.0,
            window_time_constant_h: 0.6,
            heater_power_c_per_h: 2.2,
            occupant_heat_c_per_h: 0.08,
            thermostat_on_c: 20.2,
            thermostat_off_c: 22.4,
            heating_start_h: 6.0,
            heating_end_h: 19.0,
            radiator_coupling_c: 4.5,
            outdoor_mean_c: 4.0,
            outdoor_amplitude_c: 4.0,
            outdoor_rh_pct: 78.0,
            weather_temperature_amp_c: 1.5,
            weather_rh_amp_pct: 10.0,
            weather_period_s: 53.0 * 3600.0,
            air_changes_per_h: 0.30,
            window_air_changes_per_h: 3.0,
            occupant_vapor_g_per_h: 95.0,
            room_volume_m3: 12.0 * 6.0 * 3.0,
        }
    }

    /// Phase of the multi-day weather wave at scenario time `t_s`.
    fn weather_wave(&self, t_s: f64) -> f64 {
        (std::f64::consts::TAU * t_s / self.weather_period_s + 0.9).sin()
    }

    /// Outdoor temperature at scenario time `t_s` / hour-of-day `h`
    /// (diurnal trough ~05:00, peak ~14:00, plus the weather wave).
    pub fn outdoor_temperature_c(&self, t_s: f64, hour_of_day: f64) -> f64 {
        let phase = std::f64::consts::TAU * (hour_of_day - 9.5) / 24.0;
        self.outdoor_mean_c
            + self.outdoor_amplitude_c * phase.sin()
            + self.weather_temperature_amp_c * self.weather_wave(t_s)
    }

    /// Outdoor relative humidity at scenario time `t_s`, %.
    pub fn outdoor_relative_humidity_pct(&self, t_s: f64) -> f64 {
        (self.outdoor_rh_pct + self.weather_rh_amp_pct * self.weather_wave(t_s)).clamp(35.0, 98.0)
    }

    /// Outdoor absolute humidity, g/m³.
    pub fn outdoor_absolute_humidity(&self, t_s: f64, hour_of_day: f64) -> f64 {
        air::absolute_humidity_g_m3(
            self.outdoor_temperature_c(t_s, hour_of_day),
            self.outdoor_relative_humidity_pct(t_s),
        )
    }
}

impl Default for EnvironmentConfig {
    fn default() -> Self {
        Self::office_winter()
    }
}

/// Evolving environment state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvironmentState {
    /// Bulk room air temperature, °C.
    pub temperature_c: f64,
    /// Absolute humidity of the room air, g/m³.
    pub absolute_humidity_g_m3: f64,
    /// Whether the heater is currently firing.
    pub heater_on: bool,
    /// Smoothed heater duty cycle in `[0, 1]` (drives the radiator-
    /// proximity term of the sensed temperature).
    pub heater_duty: f64,
    /// Whether a window is currently open.
    pub window_open: bool,
}

impl EnvironmentState {
    /// A typical early-winter-afternoon initial state (the collection
    /// started mid-afternoon with the office occupied and heated).
    pub fn initial() -> Self {
        Self {
            temperature_c: 21.5,
            absolute_humidity_g_m3: 7.2,
            heater_on: false,
            heater_duty: 0.3,
            window_open: false,
        }
    }

    /// Relative humidity implied by the current temperature and absolute
    /// humidity, %.
    pub fn relative_humidity_pct(&self) -> f64 {
        let sat = air::absolute_humidity_g_m3(self.temperature_c, 100.0);
        (100.0 * self.absolute_humidity_g_m3 / sat).clamp(0.0, 100.0)
    }

    /// Temperature at the sensor location, which sits near a radiator and
    /// overshoots the bulk air temperature when the heater duty is high.
    pub fn sensed_temperature_c(&self, config: &EnvironmentConfig) -> f64 {
        self.temperature_c + config.radiator_coupling_c * self.heater_duty
    }

    /// Advances the state by `dt_s` seconds.
    ///
    /// `t_s` is scenario time (for the weather wave), `hour_of_day` is
    /// wall-clock time (for the heating schedule and the diurnal cycle),
    /// `n_occupants` the current head count.
    pub fn step(
        &mut self,
        config: &EnvironmentConfig,
        dt_s: f64,
        t_s: f64,
        hour_of_day: f64,
        n_occupants: usize,
    ) {
        let dt_h = dt_s / 3600.0;
        let t_out = config.outdoor_temperature_c(t_s, hour_of_day);

        // Thermostat with hysteresis, gated by the daily heating window.
        let window_active =
            hour_of_day >= config.heating_start_h && hour_of_day < config.heating_end_h;
        if !window_active {
            self.heater_on = false;
        } else if self.temperature_c <= config.thermostat_on_c {
            self.heater_on = true;
        } else if self.temperature_c >= config.thermostat_off_c {
            self.heater_on = false;
        }

        // Smoothed duty cycle (15-minute time constant).
        let duty_target = if self.heater_on { 1.0 } else { 0.0 };
        let duty_rate = dt_h / 0.25;
        self.heater_duty += (duty_target - self.heater_duty) * duty_rate.min(1.0);

        // Temperature dynamics.
        let mut dtemp = 0.0;
        dtemp +=
            (config.envelope_temperature_c - self.temperature_c) / config.thermal_time_constant_h;
        if self.window_open {
            dtemp += (t_out - self.temperature_c) / config.window_time_constant_h;
        }
        if self.heater_on {
            dtemp += config.heater_power_c_per_h;
        }
        dtemp += config.occupant_heat_c_per_h * n_occupants as f64;
        self.temperature_c += dtemp * dt_h;

        // Moisture balance (absolute humidity).
        let ah_out = config.outdoor_absolute_humidity(t_s, hour_of_day);
        let ach = config.air_changes_per_h
            + if self.window_open {
                config.window_air_changes_per_h
            } else {
                0.0
            };
        let mut dah = (ah_out - self.absolute_humidity_g_m3) * ach;
        dah += config.occupant_vapor_g_per_h * n_occupants as f64 / config.room_volume_m3;
        self.absolute_humidity_g_m3 = (self.absolute_humidity_g_m3 + dah * dt_h).max(0.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(
        state: &mut EnvironmentState,
        config: &EnvironmentConfig,
        hours: f64,
        start_hour: f64,
        occupants: usize,
    ) {
        let dt = 10.0;
        let steps = (hours * 3600.0 / dt) as usize;
        for i in 0..steps {
            let t_s = i as f64 * dt;
            let h = (start_hour + i as f64 * dt / 3600.0) % 24.0;
            state.step(config, dt, t_s, h, occupants);
        }
    }

    #[test]
    fn overnight_cooldown_stays_in_table3_band() {
        let cfg = EnvironmentConfig::office_winter();
        let mut s = EnvironmentState::initial();
        // 19:00 -> 05:00, empty office, heater off outside the window.
        run(&mut s, &cfg, 10.0, 19.0, 0);
        assert!(s.temperature_c > 17.5, "too cold: {}", s.temperature_c);
        assert!(s.temperature_c < 21.0, "too warm: {}", s.temperature_c);
        assert!(!s.heater_on);
    }

    #[test]
    fn thermostat_keeps_daytime_band() {
        let cfg = EnvironmentConfig::office_winter();
        let mut s = EnvironmentState::initial();
        s.temperature_c = 18.5;
        run(&mut s, &cfg, 6.0, 8.0, 3);
        assert!(
            s.temperature_c > cfg.thermostat_on_c - 0.5
                && s.temperature_c < cfg.thermostat_off_c + 1.5,
            "temperature {} outside thermostat band",
            s.temperature_c
        );
    }

    #[test]
    fn occupants_raise_humidity() {
        let cfg = EnvironmentConfig::office_winter();
        let mut empty = EnvironmentState::initial();
        let mut crowded = EnvironmentState::initial();
        run(&mut empty, &cfg, 8.0, 9.0, 0);
        run(&mut crowded, &cfg, 8.0, 9.0, 4);
        assert!(
            crowded.absolute_humidity_g_m3 > empty.absolute_humidity_g_m3 + 0.5,
            "crowded {} vs empty {}",
            crowded.absolute_humidity_g_m3,
            empty.absolute_humidity_g_m3
        );
    }

    #[test]
    fn occupants_raise_temperature() {
        let cfg = EnvironmentConfig::office_winter();
        // Outside heating hours so only bodies differ.
        let mut empty = EnvironmentState::initial();
        let mut crowded = EnvironmentState::initial();
        run(&mut empty, &cfg, 3.0, 20.0, 0);
        run(&mut crowded, &cfg, 3.0, 20.0, 4);
        assert!(crowded.temperature_c > empty.temperature_c + 0.2);
    }

    #[test]
    fn window_airing_cools_and_dries() {
        let cfg = EnvironmentConfig::office_winter();
        let mut s = EnvironmentState::initial();
        s.absolute_humidity_g_m3 = 9.0;
        s.window_open = true;
        run(&mut s, &cfg, 0.5, 10.0, 0);
        assert!(
            s.temperature_c < 21.0,
            "window did not cool: {}",
            s.temperature_c
        );
        assert!(s.absolute_humidity_g_m3 < 9.0);
    }

    #[test]
    fn relative_humidity_falls_when_heated() {
        let mut s = EnvironmentState::initial();
        let rh_cool = s.relative_humidity_pct();
        s.temperature_c += 5.0;
        let rh_warm = s.relative_humidity_pct();
        assert!(rh_warm < rh_cool);
    }

    #[test]
    fn relative_humidity_within_percent_range() {
        let cfg = EnvironmentConfig::office_winter();
        let mut s = EnvironmentState::initial();
        for start in [0.0, 6.0, 12.0, 18.0] {
            run(&mut s, &cfg, 6.0, start, 2);
            let rh = s.relative_humidity_pct();
            assert!((5.0..=70.0).contains(&rh), "RH {rh} out of plausible band");
        }
    }

    #[test]
    fn sensed_temperature_overshoots_during_heating() {
        let cfg = EnvironmentConfig::office_winter();
        let mut s = EnvironmentState::initial();
        s.temperature_c = 18.0; // cold morning: heater fires at full duty
        run(&mut s, &cfg, 1.5, 7.0, 0);
        let sensed = s.sensed_temperature_c(&cfg);
        assert!(s.heater_duty > 0.8, "duty {}", s.heater_duty);
        assert!(
            sensed > s.temperature_c + 3.0,
            "sensed {sensed} vs bulk {}",
            s.temperature_c
        );
        assert!(sensed < 41.0);
    }

    #[test]
    fn heater_respects_schedule_window() {
        let cfg = EnvironmentConfig::office_winter();
        let mut s = EnvironmentState::initial();
        s.temperature_c = 15.0; // below the on-threshold…
        s.step(&cfg, 10.0, 0.0, 3.0, 0); // …but 03:00 is outside the window
        assert!(!s.heater_on);
        s.step(&cfg, 10.0, 0.0, 8.0, 0);
        assert!(s.heater_on);
    }

    #[test]
    fn outdoor_cycle_extremes() {
        let cfg = EnvironmentConfig::office_winter();
        let coldest = cfg.outdoor_temperature_c(0.0, 3.5); // ~05:00 trough
        let warmest = cfg.outdoor_temperature_c(0.0, 15.5); // ~14:00 peak
        assert!(coldest < cfg.outdoor_mean_c);
        assert!(warmest > cfg.outdoor_mean_c);
        assert!((warmest - coldest) > cfg.outdoor_amplitude_c);
    }
}
