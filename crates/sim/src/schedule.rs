//! Per-subject presence schedules over the collection window.
//!
//! Six subjects (§V-A) use the office freely. The `turetta2022` schedule
//! reproduces the occupancy *structure* of Table III with scripted
//! anchors — the three empty night folds, the hard fold 4 (empty until
//! 09:28, then occupied) and the never-empty fold 5 — while every other
//! arrival, break and departure is drawn from seeded distributions.

use crate::clock::WallClock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A half-open interval `[enter_s, leave_s)` during which a subject is in
/// the room, in scenario seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PresenceInterval {
    /// Entry time, scenario seconds.
    pub enter_s: f64,
    /// Exit time, scenario seconds.
    pub leave_s: f64,
}

impl PresenceInterval {
    /// Whether the subject is present at `t`.
    pub fn contains(&self, t: f64) -> bool {
        (self.enter_s..self.leave_s).contains(&t)
    }
}

/// All presence intervals of one subject, sorted and non-overlapping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SubjectSchedule {
    /// Sorted, non-overlapping presence intervals.
    pub intervals: Vec<PresenceInterval>,
}

impl SubjectSchedule {
    /// Whether the subject is present at scenario time `t`.
    pub fn present(&self, t: f64) -> bool {
        self.intervals.iter().any(|i| i.contains(t))
    }
}

/// The complete schedule of all subjects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// One schedule per subject.
    pub subjects: Vec<SubjectSchedule>,
}

impl Schedule {
    /// Presence flags at time `t`, one per subject.
    pub fn presence(&self, t: f64) -> Vec<bool> {
        self.subjects.iter().map(|s| s.present(t)).collect()
    }

    /// Number of subjects present at time `t`.
    pub fn count(&self, t: f64) -> usize {
        self.subjects.iter().filter(|s| s.present(t)).count()
    }

    /// Generates the `turetta2022` schedule: `n_subjects` subjects over
    /// the four collection days, with the Table III anchors scripted:
    ///
    /// * Jan 04: several subjects already in at the 15:08 start, all gone
    ///   by ~19:00.
    /// * Jan 05–06: ordinary office shifts; everyone out before the
    ///   fold-1 boundary (Jan 06, 19:16), so folds 1–3 are empty.
    /// * Jan 07: first arrival scripted at **09:28** (fold 4's empty head
    ///   is 17.5 % of the fold, as in Table III), an anchor subject stays
    ///   through 19:20 so fold 5 (13:09–19:16) is never empty.
    pub fn turetta2022(n_subjects: usize, seed: u64) -> Schedule {
        let clock = WallClock::turetta2022();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5c4e_d01e_u64);
        let mut subjects = Vec::with_capacity(n_subjects);

        for subject in 0..n_subjects {
            let mut intervals: Vec<PresenceInterval> = Vec::new();

            // Day 0 (Jan 04): collection starts mid-afternoon; a few
            // subjects are already in and leave towards the evening,
            // staggered so head counts thin out quickly.
            if subject < 2 || rng.gen_bool(0.4) {
                let leave = clock.at(0, 15.7 + rng.gen_range(0.0..3.1)); // 15:42–18:48
                intervals.push(PresenceInterval {
                    enter_s: 0.0,
                    leave_s: leave,
                });
            }

            // Days 1–2 (Jan 05–06): staggered part-day shifts. Shift
            // lengths are kept short-ish so that simultaneous head counts
            // skew low, as in Table II.
            for day in 1..=2usize {
                if !rng.gen_bool(0.7) {
                    continue;
                }
                let arrive_h = 7.2 + rng.gen_range(0.0..8.0);
                let duration_h = 1.0 + rng.gen_range(0.0..3.5);
                // Everyone must be out before 19:16 on Jan 06 (fold 1).
                let leave_h = f64::min(arrive_h + duration_h, 19.0);
                let mut enter_s = clock.at(day, arrive_h);
                let leave_s = clock.at(day, leave_h);
                // Optional lunch excursion splitting the shift.
                if rng.gen_bool(0.5) && arrive_h < 12.0 && leave_h > 13.5 {
                    let out = clock.at(day, 12.1 + rng.gen_range(0.0..0.5));
                    let back = clock.at(day, 12.9 + rng.gen_range(0.0..0.6));
                    intervals.push(PresenceInterval {
                        enter_s,
                        leave_s: out,
                    });
                    enter_s = back;
                }
                intervals.push(PresenceInterval { enter_s, leave_s });
            }

            // Day 3 (Jan 07): scripted anchors for folds 4 and 5, set up
            // as a relay so fold 5 is continuously covered without long
            // multi-occupancy stretches (Table II skews to singles).
            if subject == 0 {
                // Morning anchor: arrives 09:28 sharp (fold 4's empty
                // head ends), hands over mid-afternoon.
                intervals.push(PresenceInterval {
                    enter_s: clock.at(3, 9.0 + 28.0 / 60.0),
                    leave_s: clock.at(3, 15.5 + rng.gen_range(0.0..0.3)),
                });
            } else if subject == 1 {
                // Afternoon anchor: overlaps the handover, stays past the
                // fold-5 boundary (19:16).
                intervals.push(PresenceInterval {
                    enter_s: clock.at(3, 15.2 + rng.gen_range(0.0..0.2)),
                    leave_s: clock.at(3, 19.0 + 20.0 / 60.0),
                });
            } else if rng.gen_bool(0.6) {
                // Others drop in for shorter stints.
                let arrive_h = 10.0 + rng.gen_range(0.0..6.0);
                let duration_h = 0.7 + rng.gen_range(0.0..2.8);
                let leave_h = f64::min(arrive_h + duration_h, 18.8);
                intervals.push(PresenceInterval {
                    enter_s: clock.at(3, arrive_h),
                    leave_s: clock.at(3, leave_h),
                });
            }

            intervals.retain(|i| i.leave_s > i.enter_s);
            intervals.sort_by(|a, b| a.enter_s.partial_cmp(&b.enter_s).expect("finite times"));
            subjects.push(SubjectSchedule { intervals });
        }

        Schedule { subjects }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_dataset::folds::turetta_folds;

    fn schedule() -> Schedule {
        Schedule::turetta2022(6, 7)
    }

    #[test]
    fn night_folds_are_empty() {
        let s = schedule();
        let folds = turetta_folds();
        for f in &folds[1..4] {
            let mut t = f.start_s;
            while t < f.end_s {
                assert_eq!(s.count(t), 0, "fold {} occupied at t={t}", f.index);
                t += 300.0;
            }
        }
    }

    #[test]
    fn fold4_empty_head_then_occupied() {
        let s = schedule();
        let folds = turetta_folds();
        let f4 = &folds[4];
        // Head: empty.
        assert_eq!(s.count(f4.start_s + 60.0), 0);
        // After 09:28 (2820 s into the fold + margin): occupied.
        let clock = WallClock::turetta2022();
        let arrival = clock.at(3, 9.0 + 28.0 / 60.0);
        assert!(arrival > f4.start_s && arrival < f4.end_s);
        assert!(s.count(arrival + 60.0) >= 1);
        // Empty fraction of fold 4 is ~17.5 % as in Table III.
        let mut empty = 0usize;
        let mut total = 0usize;
        let mut t = f4.start_s;
        while t < f4.end_s {
            if s.count(t) == 0 {
                empty += 1;
            }
            total += 1;
            t += 60.0;
        }
        let frac = empty as f64 / total as f64;
        assert!((0.14..0.21).contains(&frac), "fold-4 empty fraction {frac}");
    }

    #[test]
    fn fold5_is_never_empty() {
        let s = schedule();
        let folds = turetta_folds();
        let f5 = &folds[5];
        let mut t = f5.start_s;
        while t < f5.end_s {
            assert!(s.count(t) >= 1, "fold 5 empty at t={t}");
            t += 120.0;
        }
    }

    #[test]
    fn collection_start_is_occupied() {
        // The paper's window starts with subjects already in the office.
        let s = schedule();
        assert!(s.count(60.0) >= 1);
    }

    #[test]
    fn head_count_never_exceeds_subject_count() {
        let s = schedule();
        let end = turetta_folds().last().unwrap().end_s;
        let mut t = 0.0;
        while t < end {
            assert!(s.count(t) <= 6);
            t += 600.0;
        }
    }

    #[test]
    fn occupancy_skews_to_low_head_counts() {
        // Table II: single occupancy is the most common occupied state.
        let s = schedule();
        let end = turetta_folds().last().unwrap().end_s;
        let mut histogram = [0usize; 7];
        let mut t = 0.0;
        while t < end {
            histogram[s.count(t)] += 1;
            t += 60.0;
        }
        let empty = histogram[0];
        let occupied: usize = histogram[1..].iter().sum();
        let empty_frac = empty as f64 / (empty + occupied) as f64;
        assert!(
            (0.5..0.75).contains(&empty_frac),
            "empty fraction {empty_frac}"
        );
        assert!(
            histogram[1] >= histogram[3],
            "1-occ {} < 3-occ {}",
            histogram[1],
            histogram[3]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(Schedule::turetta2022(6, 1), Schedule::turetta2022(6, 1));
        assert_ne!(Schedule::turetta2022(6, 1), Schedule::turetta2022(6, 2));
    }

    #[test]
    fn intervals_are_sorted_and_positive() {
        let s = schedule();
        for subj in &s.subjects {
            for w in subj.intervals.windows(2) {
                assert!(w[0].enter_s <= w[1].enter_s);
            }
            for i in &subj.intervals {
                assert!(i.leave_s > i.enter_s);
            }
        }
    }

    #[test]
    fn presence_flags_match_count() {
        let s = schedule();
        for t in [0.0, 1000.0, 100_000.0, 250_000.0] {
            let flags = s.presence(t);
            assert_eq!(flags.iter().filter(|&&b| b).count(), s.count(t));
        }
    }
}
