//! Per-subject presence schedules over the collection window.
//!
//! Six subjects (§V-A) use the office freely. The `turetta2022` schedule
//! reproduces the occupancy *structure* of Table III with scripted
//! anchors — the three empty night folds, the hard fold 4 (empty until
//! 09:28, then occupied) and the never-empty fold 5 — while every other
//! arrival, break and departure is drawn from seeded distributions.

use crate::clock::WallClock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A half-open interval `[enter_s, leave_s)` during which a subject is in
/// the room, in scenario seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PresenceInterval {
    /// Entry time, scenario seconds.
    pub enter_s: f64,
    /// Exit time, scenario seconds.
    pub leave_s: f64,
}

impl PresenceInterval {
    /// Whether the subject is present at `t`.
    pub fn contains(&self, t: f64) -> bool {
        (self.enter_s..self.leave_s).contains(&t)
    }
}

/// All presence intervals of one subject, sorted and non-overlapping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SubjectSchedule {
    /// Sorted, non-overlapping presence intervals.
    pub intervals: Vec<PresenceInterval>,
}

impl SubjectSchedule {
    /// Whether the subject is present at scenario time `t`.
    pub fn present(&self, t: f64) -> bool {
        self.intervals.iter().any(|i| i.contains(t))
    }
}

/// The complete schedule of all subjects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// One schedule per subject.
    pub subjects: Vec<SubjectSchedule>,
}

impl Schedule {
    /// Presence flags at time `t`, one per subject.
    pub fn presence(&self, t: f64) -> Vec<bool> {
        self.subjects.iter().map(|s| s.present(t)).collect()
    }

    /// Number of subjects present at time `t`.
    pub fn count(&self, t: f64) -> usize {
        self.subjects.iter().filter(|s| s.present(t)).count()
    }

    /// Generates the `turetta2022` schedule: `n_subjects` subjects over
    /// the four collection days, with the Table III anchors scripted:
    ///
    /// * Jan 04: several subjects already in at the 15:08 start, all gone
    ///   by ~19:00.
    /// * Jan 05–06: ordinary office shifts; everyone out before the
    ///   fold-1 boundary (Jan 06, 19:16), so folds 1–3 are empty.
    /// * Jan 07: first arrival scripted at **09:28** (fold 4's empty head
    ///   is 17.5 % of the fold, as in Table III), an anchor subject stays
    ///   through 19:20 so fold 5 (13:09–19:16) is never empty.
    pub fn turetta2022(n_subjects: usize, seed: u64) -> Schedule {
        let clock = WallClock::turetta2022();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5c4e_d01e_u64);
        let mut subjects = Vec::with_capacity(n_subjects);

        for subject in 0..n_subjects {
            let mut intervals: Vec<PresenceInterval> = Vec::new();

            // Day 0 (Jan 04): collection starts mid-afternoon; a few
            // subjects are already in and leave towards the evening,
            // staggered so head counts thin out quickly.
            if subject < 2 || rng.gen_bool(0.4) {
                let leave = clock.at(0, 15.7 + rng.gen_range(0.0..3.1)); // 15:42–18:48
                intervals.push(PresenceInterval {
                    enter_s: 0.0,
                    leave_s: leave,
                });
            }

            // Days 1–2 (Jan 05–06): staggered part-day shifts. Shift
            // lengths are kept short-ish so that simultaneous head counts
            // skew low, as in Table II.
            for day in 1..=2usize {
                if !rng.gen_bool(0.7) {
                    continue;
                }
                let arrive_h = 7.2 + rng.gen_range(0.0..8.0);
                let duration_h = 1.0 + rng.gen_range(0.0..3.5);
                // Everyone must be out before 19:16 on Jan 06 (fold 1).
                let leave_h = f64::min(arrive_h + duration_h, 19.0);
                let mut enter_s = clock.at(day, arrive_h);
                let leave_s = clock.at(day, leave_h);
                // Optional lunch excursion splitting the shift.
                if rng.gen_bool(0.5) && arrive_h < 12.0 && leave_h > 13.5 {
                    let out = clock.at(day, 12.1 + rng.gen_range(0.0..0.5));
                    let back = clock.at(day, 12.9 + rng.gen_range(0.0..0.6));
                    intervals.push(PresenceInterval {
                        enter_s,
                        leave_s: out,
                    });
                    enter_s = back;
                }
                intervals.push(PresenceInterval { enter_s, leave_s });
            }

            // Day 3 (Jan 07): scripted anchors for folds 4 and 5, set up
            // as a relay so fold 5 is continuously covered without long
            // multi-occupancy stretches (Table II skews to singles).
            if subject == 0 {
                // Morning anchor: arrives 09:28 sharp (fold 4's empty
                // head ends), hands over mid-afternoon.
                intervals.push(PresenceInterval {
                    enter_s: clock.at(3, 9.0 + 28.0 / 60.0),
                    leave_s: clock.at(3, 15.5 + rng.gen_range(0.0..0.3)),
                });
            } else if subject == 1 {
                // Afternoon anchor: overlaps the handover, stays past the
                // fold-5 boundary (19:16).
                intervals.push(PresenceInterval {
                    enter_s: clock.at(3, 15.2 + rng.gen_range(0.0..0.2)),
                    leave_s: clock.at(3, 19.0 + 20.0 / 60.0),
                });
            } else if rng.gen_bool(0.6) {
                // Others drop in for shorter stints.
                let arrive_h = 10.0 + rng.gen_range(0.0..6.0);
                let duration_h = 0.7 + rng.gen_range(0.0..2.8);
                let leave_h = f64::min(arrive_h + duration_h, 18.8);
                intervals.push(PresenceInterval {
                    enter_s: clock.at(3, arrive_h),
                    leave_s: clock.at(3, leave_h),
                });
            }

            intervals.retain(|i| i.leave_s > i.enter_s);
            intervals.sort_by(|a, b| a.enter_s.partial_cmp(&b.enter_s).expect("finite times"));
            subjects.push(SubjectSchedule { intervals });
        }

        Schedule { subjects }
    }
}

/// A half-open interval `[enter_s, leave_s)` during which a subject
/// occupies one specific room of a multi-room office.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoomStay {
    /// Time the subject enters the room, scenario seconds.
    pub enter_s: f64,
    /// Time the subject leaves the room, scenario seconds.
    pub leave_s: f64,
    /// Room index, 0-based west to east.
    pub room: usize,
}

impl RoomStay {
    /// Whether the stay covers time `t`.
    pub fn contains(&self, t: f64) -> bool {
        (self.enter_s..self.leave_s).contains(&t)
    }
}

/// Per-subject room occupancy over a multi-room scenario: each subject
/// is a sorted sequence of non-overlapping [`RoomStay`]s; gaps mean the
/// subject is out of the office entirely.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoomSchedule {
    /// One stay sequence per subject, sorted by `enter_s`.
    pub subjects: Vec<Vec<RoomStay>>,
    /// Number of rooms in the office.
    pub n_rooms: usize,
}

impl RoomSchedule {
    /// The room subject `subject` is in at time `t`, or `None` when the
    /// subject is out of the office.
    pub fn room_of(&self, subject: usize, t: f64) -> Option<usize> {
        self.subjects
            .get(subject)?
            .iter()
            .find(|s| s.contains(t))
            .map(|s| s.room)
    }

    /// Head count of every room at time `t`.
    pub fn room_counts(&self, t: f64) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_rooms];
        for subject in 0..self.subjects.len() {
            if let Some(r) = self.room_of(subject, t) {
                counts[r.min(self.n_rooms.saturating_sub(1))] += 1;
            }
        }
        counts
    }

    /// Head count of one room at time `t`.
    pub fn count_in(&self, room: usize, t: f64) -> usize {
        (0..self.subjects.len())
            .filter(|&s| self.room_of(s, t) == Some(room))
            .count()
    }

    /// Projects the room schedule onto a plain presence [`Schedule`]
    /// (in-the-office regardless of room), merging back-to-back stays.
    pub fn presence_schedule(&self) -> Schedule {
        let subjects = self
            .subjects
            .iter()
            .map(|stays| {
                let mut intervals: Vec<PresenceInterval> = Vec::new();
                for s in stays {
                    match intervals.last_mut() {
                        Some(last) if (s.enter_s - last.leave_s).abs() < 1e-9 => {
                            last.leave_s = s.leave_s;
                        }
                        _ => intervals.push(PresenceInterval {
                            enter_s: s.enter_s,
                            leave_s: s.leave_s,
                        }),
                    }
                }
                SubjectSchedule { intervals }
            })
            .collect();
        Schedule { subjects }
    }

    /// Generates the `multiroom` scenario schedule: `n_subjects`
    /// subjects over `duration_s` seconds in an `n_rooms` office.
    /// Arrivals are staggered (the office starts empty), every subject
    /// changes rooms at least once, and even-indexed subjects start in
    /// the middle (monitored) room so its head count sweeps through
    /// zero, one and several occupants — the label diversity the
    /// temporal models train on.
    pub fn multiroom(
        n_subjects: usize,
        n_rooms: usize,
        duration_s: f64,
        seed: u64,
    ) -> RoomSchedule {
        assert!(n_rooms >= 2, "multiroom schedule needs at least two rooms");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d75_6c74_1200_u64);
        let mut subjects = Vec::with_capacity(n_subjects);

        for subject in 0..n_subjects {
            let mut stays: Vec<RoomStay> = Vec::new();
            // Staggered arrivals: subject k enters after roughly
            // k/n of the first half, leaves near the end.
            let enter = duration_s
                * (0.06
                    + 0.4 * subject as f64 / n_subjects.max(1) as f64
                    + rng.gen_range(0.0..0.06));
            let leave = duration_s * rng.gen_range(0.9..0.98);
            if leave > enter {
                let n_stays = 2 + rng.gen_range(0..3);
                let span = (leave - enter) / n_stays as f64;
                let mut t = enter;
                let mut room = if subject % 2 == 0 {
                    n_rooms / 2
                } else {
                    rng.gen_range(0..n_rooms)
                };
                for s in 0..n_stays {
                    let end = if s + 1 == n_stays {
                        leave
                    } else {
                        f64::min(t + span * rng.gen_range(0.6..1.4), leave)
                    };
                    stays.push(RoomStay {
                        enter_s: t,
                        leave_s: end,
                        room,
                    });
                    t = end;
                    if t >= leave {
                        break;
                    }
                    // Move to a different room for the next stay.
                    room = (room + 1 + rng.gen_range(0..n_rooms - 1)) % n_rooms;
                }
            }
            subjects.push(stays);
        }

        RoomSchedule { subjects, n_rooms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_dataset::folds::turetta_folds;

    fn schedule() -> Schedule {
        Schedule::turetta2022(6, 7)
    }

    #[test]
    fn night_folds_are_empty() {
        let s = schedule();
        let folds = turetta_folds();
        for f in &folds[1..4] {
            let mut t = f.start_s;
            while t < f.end_s {
                assert_eq!(s.count(t), 0, "fold {} occupied at t={t}", f.index);
                t += 300.0;
            }
        }
    }

    #[test]
    fn fold4_empty_head_then_occupied() {
        let s = schedule();
        let folds = turetta_folds();
        let f4 = &folds[4];
        // Head: empty.
        assert_eq!(s.count(f4.start_s + 60.0), 0);
        // After 09:28 (2820 s into the fold + margin): occupied.
        let clock = WallClock::turetta2022();
        let arrival = clock.at(3, 9.0 + 28.0 / 60.0);
        assert!(arrival > f4.start_s && arrival < f4.end_s);
        assert!(s.count(arrival + 60.0) >= 1);
        // Empty fraction of fold 4 is ~17.5 % as in Table III.
        let mut empty = 0usize;
        let mut total = 0usize;
        let mut t = f4.start_s;
        while t < f4.end_s {
            if s.count(t) == 0 {
                empty += 1;
            }
            total += 1;
            t += 60.0;
        }
        let frac = empty as f64 / total as f64;
        assert!((0.14..0.21).contains(&frac), "fold-4 empty fraction {frac}");
    }

    #[test]
    fn fold5_is_never_empty() {
        let s = schedule();
        let folds = turetta_folds();
        let f5 = &folds[5];
        let mut t = f5.start_s;
        while t < f5.end_s {
            assert!(s.count(t) >= 1, "fold 5 empty at t={t}");
            t += 120.0;
        }
    }

    #[test]
    fn collection_start_is_occupied() {
        // The paper's window starts with subjects already in the office.
        let s = schedule();
        assert!(s.count(60.0) >= 1);
    }

    #[test]
    fn head_count_never_exceeds_subject_count() {
        let s = schedule();
        let end = turetta_folds().last().unwrap().end_s;
        let mut t = 0.0;
        while t < end {
            assert!(s.count(t) <= 6);
            t += 600.0;
        }
    }

    #[test]
    fn occupancy_skews_to_low_head_counts() {
        // Table II: single occupancy is the most common occupied state.
        let s = schedule();
        let end = turetta_folds().last().unwrap().end_s;
        let mut histogram = [0usize; 7];
        let mut t = 0.0;
        while t < end {
            histogram[s.count(t)] += 1;
            t += 60.0;
        }
        let empty = histogram[0];
        let occupied: usize = histogram[1..].iter().sum();
        let empty_frac = empty as f64 / (empty + occupied) as f64;
        assert!(
            (0.5..0.75).contains(&empty_frac),
            "empty fraction {empty_frac}"
        );
        assert!(
            histogram[1] >= histogram[3],
            "1-occ {} < 3-occ {}",
            histogram[1],
            histogram[3]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(Schedule::turetta2022(6, 1), Schedule::turetta2022(6, 1));
        assert_ne!(Schedule::turetta2022(6, 1), Schedule::turetta2022(6, 2));
    }

    #[test]
    fn intervals_are_sorted_and_positive() {
        let s = schedule();
        for subj in &s.subjects {
            for w in subj.intervals.windows(2) {
                assert!(w[0].enter_s <= w[1].enter_s);
            }
            for i in &subj.intervals {
                assert!(i.leave_s > i.enter_s);
            }
        }
    }

    #[test]
    fn presence_flags_match_count() {
        let s = schedule();
        for t in [0.0, 1000.0, 100_000.0, 250_000.0] {
            let flags = s.presence(t);
            assert_eq!(flags.iter().filter(|&&b| b).count(), s.count(t));
        }
    }

    #[test]
    fn room_schedule_stays_are_sorted_disjoint_and_in_range() {
        let rs = RoomSchedule::multiroom(4, 3, 3600.0, 11);
        assert_eq!(rs.subjects.len(), 4);
        for stays in &rs.subjects {
            assert!(!stays.is_empty(), "subject never shows up");
            for w in stays.windows(2) {
                assert!(w[0].leave_s <= w[1].enter_s + 1e-9);
            }
            for s in stays {
                assert!(s.leave_s > s.enter_s);
                assert!(s.room < 3);
                assert!(s.enter_s >= 0.0 && s.leave_s <= 3600.0);
            }
        }
    }

    #[test]
    fn room_schedule_every_subject_changes_rooms() {
        let rs = RoomSchedule::multiroom(4, 3, 3600.0, 11);
        for stays in &rs.subjects {
            let first = stays[0].room;
            assert!(
                stays.iter().any(|s| s.room != first),
                "subject never moved rooms"
            );
        }
    }

    #[test]
    fn room_schedule_monitored_room_sweeps_head_counts() {
        // Room 1 (the radios' room) must see empty, single and
        // multi-occupancy periods — the temporal label diversity.
        let rs = RoomSchedule::multiroom(4, 3, 3600.0, 11);
        let mut seen = [false; 3];
        let mut t = 0.0;
        while t < 3600.0 {
            seen[rs.count_in(1, t).min(2)] = true;
            t += 10.0;
        }
        assert!(seen[0], "monitored room never empty");
        assert!(seen[1], "monitored room never single-occupied");
        assert!(seen[2], "monitored room never multi-occupied");
    }

    #[test]
    fn room_counts_sum_to_presence_count() {
        let rs = RoomSchedule::multiroom(5, 3, 3600.0, 3);
        let presence = rs.presence_schedule();
        for t in [0.0, 500.0, 1200.0, 2000.0, 3000.0, 3599.0] {
            let total: usize = rs.room_counts(t).iter().sum();
            assert_eq!(total, presence.count(t), "t={t}");
        }
    }

    #[test]
    fn room_schedule_deterministic_per_seed() {
        assert_eq!(
            RoomSchedule::multiroom(4, 3, 1800.0, 9),
            RoomSchedule::multiroom(4, 3, 1800.0, 9)
        );
        assert_ne!(
            RoomSchedule::multiroom(4, 3, 1800.0, 9),
            RoomSchedule::multiroom(4, 3, 1800.0, 10)
        );
    }
}
