//! Wall-clock bookkeeping for the scenario timeline.
//!
//! Scenario time `t` is seconds since the collection start (Jan 04 2022,
//! 15:08:40 — §V-A). Schedules and the thermostat need wall-clock time of
//! day and the day index, so the clock carries the start-of-day offset.

/// Seconds per day.
pub const DAY_S: f64 = 86_400.0;

/// Offset from midnight of day 0 to the collection start (15:08:40).
pub const COLLECTION_START_OFFSET_S: f64 = 15.0 * 3600.0 + 8.0 * 60.0 + 40.0;

/// Converts scenario time to wall-clock components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallClock {
    /// Seconds between midnight of day 0 and scenario `t = 0`.
    pub start_offset_s: f64,
}

impl WallClock {
    /// The paper's clock: scenario starts Jan 04, 15:08:40.
    pub fn turetta2022() -> Self {
        Self {
            start_offset_s: COLLECTION_START_OFFSET_S,
        }
    }

    /// A clock whose scenario starts at midnight (useful in tests).
    pub fn midnight() -> Self {
        Self {
            start_offset_s: 0.0,
        }
    }

    /// Day index (0 = Jan 04) of scenario time `t`.
    pub fn day(&self, t: f64) -> usize {
        ((t + self.start_offset_s) / DAY_S).floor() as usize
    }

    /// Seconds since midnight at scenario time `t`.
    pub fn time_of_day(&self, t: f64) -> f64 {
        (t + self.start_offset_s).rem_euclid(DAY_S)
    }

    /// Fractional hour of day (0.0–24.0) at scenario time `t`.
    pub fn hour_of_day(&self, t: f64) -> f64 {
        self.time_of_day(t) / 3600.0
    }

    /// Scenario time of `hour` (fractional, 0–24) on `day`.
    ///
    /// May be negative if the moment precedes the collection start.
    pub fn at(&self, day: usize, hour: f64) -> f64 {
        day as f64 * DAY_S + hour * 3600.0 - self.start_offset_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_starts_at_15_08_40() {
        let c = WallClock::turetta2022();
        assert_eq!(c.day(0.0), 0);
        assert!((c.hour_of_day(0.0) - (15.0 + 8.0 / 60.0 + 40.0 / 3600.0)).abs() < 1e-9);
    }

    #[test]
    fn day_rolls_over_at_midnight() {
        let c = WallClock::turetta2022();
        // Jan 5 00:00 is 8 h 51 m 20 s into the scenario.
        let to_midnight = DAY_S - COLLECTION_START_OFFSET_S;
        assert_eq!(c.day(to_midnight - 1.0), 0);
        assert_eq!(c.day(to_midnight + 1.0), 1);
        assert!(c.time_of_day(to_midnight) < 1e-9);
    }

    #[test]
    fn at_is_inverse_of_decomposition() {
        let c = WallClock::turetta2022();
        let t = c.at(2, 9.5);
        assert_eq!(c.day(t), 2);
        assert!((c.hour_of_day(t) - 9.5).abs() < 1e-9);
    }

    #[test]
    fn midnight_clock_is_identity() {
        let c = WallClock::midnight();
        assert_eq!(c.day(3.5 * DAY_S), 3);
        assert!((c.hour_of_day(DAY_S / 2.0) - 12.0).abs() < 1e-9);
        assert_eq!(c.at(0, 0.0), 0.0);
    }
}
