//! Scenario configuration and presets.

use crate::clock::WallClock;
use crate::environment::EnvironmentConfig;
use crate::mobility::MobilityConfig;
use crate::schedule::{PresenceInterval, RoomSchedule, Schedule, SubjectSchedule};
use crate::sensor::SensorConfig;
use occusense_channel::receiver::Receiver;
use occusense_dataset::folds::turetta_folds;

/// Multi-room extension of a scenario: the office is split into
/// `n_rooms` by partitions (see
/// [`occusense_channel::Scene::office_multiroom`]) and the record
/// labels count only the `monitored_room` — the room holding the
/// radios. Occupants elsewhere perturb the channel through walls and
/// doorways without counting towards the label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiroomConfig {
    /// Number of equal-width rooms (≥ 2).
    pub n_rooms: usize,
    /// Index of the room whose head count labels the records.
    pub monitored_room: usize,
}

impl MultiroomConfig {
    /// The default multi-room office: three rooms, radios (and labels)
    /// in the middle one.
    pub fn three_rooms() -> Self {
        Self {
            n_rooms: 3,
            monitored_room: 1,
        }
    }
}

/// Full configuration of a simulated collection campaign.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// CSI sampling rate, Hz. The paper's hardware ran at 20 Hz; the
    /// repro harness defaults to 2 Hz, which preserves every fold
    /// proportion while keeping experiments laptop-sized (DESIGN.md).
    pub sample_rate_hz: f64,
    /// Scenario length, seconds.
    pub duration_s: f64,
    /// Number of subjects using the office.
    pub n_subjects: usize,
    /// Wall clock mapping scenario time to time of day.
    pub clock: WallClock,
    /// Environment (thermal/humidity) parameters.
    pub env: EnvironmentConfig,
    /// Environment sensor parameters.
    pub sensor: SensorConfig,
    /// Occupant mobility parameters.
    pub mobility: MobilityConfig,
    /// Receiver impairment model.
    pub receiver: Receiver,
    /// If set, the furniture layout switches from the default to the
    /// "moved" layout at this scenario time (the paper's occupants moved
    /// chairs and furniture freely).
    pub layout_change_s: Option<f64>,
    /// Window airing events as `(open_s, close_s)` intervals.
    pub window_events: Vec<(f64, f64)>,
    /// Explicit schedule override; when `None` the `turetta2022`
    /// generator is used.
    pub schedule_override: Option<Schedule>,
    /// Multi-room extension; `None` runs the paper's single open
    /// office.
    pub multiroom: Option<MultiroomConfig>,
}

impl ScenarioConfig {
    /// The paper's campaign: Jan 04 15:08:40 → Jan 07 19:16, six
    /// subjects, the Table III occupancy anchors, a furniture
    /// rearrangement on the final morning (right when fold 4's occupants
    /// arrive) and a handful of window airings.
    pub fn turetta2022(seed: u64) -> Self {
        let clock = WallClock::turetta2022();
        let duration_s = turetta_folds().last().expect("folds defined").end_s;
        Self {
            seed,
            sample_rate_hz: 2.0,
            duration_s,
            n_subjects: 6,
            clock,
            env: EnvironmentConfig::office_winter(),
            sensor: SensorConfig::thingy52(),
            mobility: MobilityConfig::office_default(),
            receiver: Receiver::new(),
            // The anchor subject arrives 09:28 on Jan 07 and rearranges
            // furniture shortly after (fold 4 becomes the hard fold).
            layout_change_s: Some(clock.at(3, 9.0 + 40.0 / 60.0)),
            window_events: vec![
                (clock.at(1, 10.4), clock.at(1, 10.65)),
                (clock.at(2, 14.0), clock.at(2, 14.2)),
                (clock.at(3, 15.5), clock.at(3, 15.67)),
            ],
            schedule_override: None,
            multiroom: None,
        }
    }

    /// A miniature scenario for tests and examples: `duration_s` seconds
    /// starting at 09:00, two subjects — the room is empty for the first
    /// half, subject 0 present in the second half, subject 1 in the last
    /// quarter.
    pub fn quick(duration_s: f64, seed: u64) -> Self {
        let schedule = Schedule {
            subjects: vec![
                SubjectSchedule {
                    intervals: vec![PresenceInterval {
                        enter_s: duration_s * 0.5,
                        leave_s: duration_s,
                    }],
                },
                SubjectSchedule {
                    intervals: vec![PresenceInterval {
                        enter_s: duration_s * 0.75,
                        leave_s: duration_s,
                    }],
                },
            ],
        };
        Self {
            seed,
            sample_rate_hz: 2.0,
            duration_s,
            n_subjects: 2,
            clock: WallClock {
                start_offset_s: 9.0 * 3600.0,
            },
            env: EnvironmentConfig::office_winter(),
            sensor: SensorConfig::thingy52(),
            mobility: MobilityConfig::office_default(),
            receiver: Receiver::new(),
            layout_change_s: None,
            window_events: Vec::new(),
            schedule_override: Some(schedule),
            multiroom: None,
        }
    }

    /// The multi-room scenario: `duration_s` seconds in a three-room
    /// office with four subjects moving between rooms, radios and
    /// labels in the middle room. This is the training/evaluation
    /// scenario of the temporal (GRU) models — per-frame snapshots are
    /// ambiguous when a body is near a doorway, so temporal context
    /// pays off.
    pub fn multiroom(duration_s: f64, seed: u64) -> Self {
        Self {
            seed,
            sample_rate_hz: 2.0,
            duration_s,
            n_subjects: 4,
            clock: WallClock {
                start_offset_s: 9.0 * 3600.0,
            },
            env: EnvironmentConfig::office_winter(),
            sensor: SensorConfig::thingy52(),
            mobility: MobilityConfig::office_default(),
            receiver: Receiver::new(),
            layout_change_s: None,
            window_events: Vec::new(),
            schedule_override: None,
            multiroom: Some(MultiroomConfig::three_rooms()),
        }
    }

    /// The schedule this scenario will run (the override, the room
    /// schedule's presence projection for multi-room scenarios, or the
    /// generated `turetta2022` schedule).
    pub fn schedule(&self) -> Schedule {
        if let Some(rooms) = self.room_schedule() {
            return rooms.presence_schedule();
        }
        self.schedule_override
            .clone()
            .unwrap_or_else(|| Schedule::turetta2022(self.n_subjects, self.seed))
    }

    /// The per-room schedule of a multi-room scenario (`None` for the
    /// single open office).
    pub fn room_schedule(&self) -> Option<RoomSchedule> {
        self.multiroom.map(|mc| {
            RoomSchedule::multiroom(self.n_subjects, mc.n_rooms, self.duration_s, self.seed)
        })
    }

    /// Number of samples the scenario will produce.
    pub fn n_samples(&self) -> usize {
        (self.duration_s * self.sample_rate_hz) as usize
    }

    /// Whether a window is open at scenario time `t`.
    pub fn window_open(&self, t: f64) -> bool {
        self.window_events
            .iter()
            .any(|&(open, close)| (open..close).contains(&t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turetta_duration_matches_folds() {
        let cfg = ScenarioConfig::turetta2022(1);
        assert!((cfg.duration_s - 274_040.0).abs() < 1.0);
        assert_eq!(cfg.n_subjects, 6);
        assert_eq!(cfg.n_samples(), (cfg.duration_s * 2.0) as usize);
    }

    #[test]
    fn layout_change_falls_inside_fold4() {
        let cfg = ScenarioConfig::turetta2022(1);
        let folds = turetta_folds();
        let t = cfg.layout_change_s.expect("layout change scheduled");
        assert!(t > folds[4].start_s && t < folds[4].end_s);
    }

    #[test]
    fn window_events_resolve() {
        let cfg = ScenarioConfig::turetta2022(1);
        let (open, close) = cfg.window_events[0];
        assert!(cfg.window_open(open + 1.0));
        assert!(!cfg.window_open(close + 1.0));
        assert!(!cfg.window_open(0.0));
    }

    #[test]
    fn quick_scenario_has_both_classes() {
        let cfg = ScenarioConfig::quick(1000.0, 3);
        let schedule = cfg.schedule();
        assert_eq!(schedule.count(100.0), 0);
        assert_eq!(schedule.count(600.0), 1);
        assert_eq!(schedule.count(900.0), 2);
    }

    #[test]
    fn schedule_override_takes_precedence() {
        let cfg = ScenarioConfig::quick(100.0, 1);
        assert!(cfg.schedule_override.is_some());
        let s = cfg.schedule();
        assert_eq!(s.subjects.len(), 2);
    }

    #[test]
    fn multiroom_preset_has_room_schedule() {
        let cfg = ScenarioConfig::multiroom(1800.0, 5);
        let mc = cfg.multiroom.expect("multiroom set");
        assert_eq!(mc.n_rooms, 3);
        assert_eq!(mc.monitored_room, 1);
        let rooms = cfg.room_schedule().expect("room schedule");
        assert_eq!(rooms.n_rooms, 3);
        assert_eq!(rooms.subjects.len(), 4);
        // The presence projection is what schedule() returns.
        assert_eq!(cfg.schedule(), rooms.presence_schedule());
    }

    #[test]
    fn single_room_presets_have_no_room_schedule() {
        assert!(ScenarioConfig::quick(100.0, 1).room_schedule().is_none());
        assert!(ScenarioConfig::turetta2022(1).room_schedule().is_none());
    }
}
