//! Glue between schedules and mobility: who is in the room, where, doing
//! what — expressed as channel-model bodies.

use crate::mobility::{Activity, MobilityConfig, SubjectMobility};
use crate::schedule::Schedule;
use occusense_channel::scene::Body;
use rand::Rng;

/// Room-level activity class, the label set of the paper's §VI future
/// work ("an ML model that simultaneously performs occupancy detection
/// and activity recognition").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ActivityClass {
    /// Nobody in the room.
    #[default]
    Empty,
    /// Everyone present is seated (quasi-static micro-motion only).
    Seated,
    /// At least one person is standing but nobody walks.
    Standing,
    /// At least one person is walking (strong Doppler / shadowing
    /// dynamics).
    Walking,
}

impl ActivityClass {
    /// Number of classes.
    pub const COUNT: usize = 4;

    /// All classes in label order.
    pub const ALL: [ActivityClass; 4] = [
        ActivityClass::Empty,
        ActivityClass::Seated,
        ActivityClass::Standing,
        ActivityClass::Walking,
    ];

    /// Integer label (0–3).
    pub fn label(&self) -> usize {
        match self {
            ActivityClass::Empty => 0,
            ActivityClass::Seated => 1,
            ActivityClass::Standing => 2,
            ActivityClass::Walking => 3,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            ActivityClass::Empty => "empty",
            ActivityClass::Seated => "seated",
            ActivityClass::Standing => "standing",
            ActivityClass::Walking => "walking",
        }
    }
}

/// Door position on the floor (the office has one entrance door, Fig. 2).
pub const DOOR_XY: (f64, f64) = (0.4, 5.5);

/// Desk assignments for up to six subjects, matching the default
/// furniture layout of the channel scene.
pub const DESKS: [(f64, f64); 6] = [
    (2.0, 1.2),
    (2.0, 4.2),
    (6.0, 4.5),
    (9.5, 1.2),
    (9.5, 4.2),
    (11.0, 2.7),
];

/// Tracks the mobility state of every currently present subject.
#[derive(Debug, Clone)]
pub struct OccupantModel {
    schedule: Schedule,
    mobility_config: MobilityConfig,
    states: Vec<Option<SubjectMobility>>,
}

impl OccupantModel {
    /// Creates the model for a schedule.
    pub fn new(schedule: Schedule, mobility_config: MobilityConfig) -> Self {
        let n = schedule.subjects.len();
        Self {
            schedule,
            mobility_config,
            states: vec![None; n],
        }
    }

    /// Advances all subjects to time `t` (entering / leaving / moving).
    pub fn step(&mut self, t: f64, dt_s: f64, rng: &mut impl Rng) {
        let presence = self.schedule.presence(t);
        for (i, (state, &present)) in self.states.iter_mut().zip(&presence).enumerate() {
            match (state.as_mut(), present) {
                (None, true) => {
                    let desk = DESKS[i % DESKS.len()];
                    *state = Some(SubjectMobility::entering(DOOR_XY, desk));
                }
                (Some(m), true) => m.step(&self.mobility_config, dt_s, rng),
                (Some(_), false) => *state = None,
                (None, false) => {}
            }
        }
    }

    /// Number of subjects currently in the room.
    pub fn count(&self) -> usize {
        self.states.iter().filter(|s| s.is_some()).count()
    }

    /// Channel bodies for everyone present (with micro-motion jitter).
    pub fn bodies(&self, rng: &mut impl Rng) -> Vec<Body> {
        self.states
            .iter()
            .flatten()
            .map(|m| m.body(&self.mobility_config, rng))
            .collect()
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The room-level activity class right now: the most dynamic activity
    /// of anyone present dominates (walking > standing > seated).
    pub fn dominant_activity(&self) -> ActivityClass {
        let mut class = ActivityClass::Empty;
        for m in self.states.iter().flatten() {
            let c = match m.activity {
                Activity::Walking { .. } => ActivityClass::Walking,
                Activity::Standing => ActivityClass::Standing,
                Activity::Seated => ActivityClass::Seated,
            };
            if c.label() > class.label() {
                class = c;
            }
        }
        class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{PresenceInterval, SubjectSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_subject_schedule() -> Schedule {
        Schedule {
            subjects: vec![
                SubjectSchedule {
                    intervals: vec![PresenceInterval {
                        enter_s: 10.0,
                        leave_s: 100.0,
                    }],
                },
                SubjectSchedule {
                    intervals: vec![PresenceInterval {
                        enter_s: 50.0,
                        leave_s: 200.0,
                    }],
                },
            ],
        }
    }

    #[test]
    fn subjects_enter_and_leave_on_schedule() {
        let mut model = OccupantModel::new(two_subject_schedule(), MobilityConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        model.step(0.0, 1.0, &mut rng);
        assert_eq!(model.count(), 0);
        model.step(20.0, 1.0, &mut rng);
        assert_eq!(model.count(), 1);
        model.step(60.0, 1.0, &mut rng);
        assert_eq!(model.count(), 2);
        model.step(150.0, 1.0, &mut rng);
        assert_eq!(model.count(), 1);
        model.step(300.0, 1.0, &mut rng);
        assert_eq!(model.count(), 0);
    }

    #[test]
    fn bodies_match_count_and_enter_at_door() {
        let mut model = OccupantModel::new(two_subject_schedule(), MobilityConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        model.step(10.0, 0.01, &mut rng);
        let bodies = model.bodies(&mut rng);
        assert_eq!(bodies.len(), 1);
        // Just entered: still near the door.
        let b = bodies[0];
        assert!((b.position.x - DOOR_XY.0).abs() < 0.5);
        assert!((b.position.y - DOOR_XY.1).abs() < 0.5);
    }

    #[test]
    fn desks_are_distinct_and_inside_the_room() {
        for (i, &(x, y)) in DESKS.iter().enumerate() {
            assert!((0.0..12.0).contains(&x) && (0.0..6.0).contains(&y));
            for &(x2, y2) in &DESKS[i + 1..] {
                assert!((x - x2).abs() + (y - y2).abs() > 0.5, "desks too close");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut model = OccupantModel::new(two_subject_schedule(), MobilityConfig::default());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            for i in 0..100 {
                model.step(i as f64, 1.0, &mut rng);
                out.push(model.bodies(&mut rng));
            }
            out
        };
        assert_eq!(run(3).len(), run(3).len());
        let a = run(3);
        let b = run(3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }
}
