//! Glue between schedules and mobility: who is in the room, where, doing
//! what — expressed as channel-model bodies.

use crate::mobility::{Activity, MobilityConfig, SubjectMobility};
use crate::schedule::{RoomSchedule, Schedule};
use occusense_channel::scene::Body;
use rand::Rng;

/// Office width in metres — matches the channel scene's room box and
/// the partition planes of [`occusense_channel::Scene::office_multiroom`].
pub const OFFICE_WIDTH_M: f64 = 12.0;

/// Y-coordinate subjects use when crossing a partition doorway (the
/// doorway gap in the channel model spans y ∈ (4.8, 5.8)).
const DOORWAY_Y: f64 = 5.3;

/// Room-level activity class, the label set of the paper's §VI future
/// work ("an ML model that simultaneously performs occupancy detection
/// and activity recognition").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ActivityClass {
    /// Nobody in the room.
    #[default]
    Empty,
    /// Everyone present is seated (quasi-static micro-motion only).
    Seated,
    /// At least one person is standing but nobody walks.
    Standing,
    /// At least one person is walking (strong Doppler / shadowing
    /// dynamics).
    Walking,
}

impl ActivityClass {
    /// Number of classes.
    pub const COUNT: usize = 4;

    /// All classes in label order.
    pub const ALL: [ActivityClass; 4] = [
        ActivityClass::Empty,
        ActivityClass::Seated,
        ActivityClass::Standing,
        ActivityClass::Walking,
    ];

    /// Integer label (0–3).
    pub fn label(&self) -> usize {
        match self {
            ActivityClass::Empty => 0,
            ActivityClass::Seated => 1,
            ActivityClass::Standing => 2,
            ActivityClass::Walking => 3,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            ActivityClass::Empty => "empty",
            ActivityClass::Seated => "seated",
            ActivityClass::Standing => "standing",
            ActivityClass::Walking => "walking",
        }
    }
}

/// Door position on the floor (the office has one entrance door, Fig. 2).
pub const DOOR_XY: (f64, f64) = (0.4, 5.5);

/// Desk assignments for up to six subjects, matching the default
/// furniture layout of the channel scene.
pub const DESKS: [(f64, f64); 6] = [
    (2.0, 1.2),
    (2.0, 4.2),
    (6.0, 4.5),
    (9.5, 1.2),
    (9.5, 4.2),
    (11.0, 2.7),
];

/// Room-partitioned context of a multi-room office: the per-subject
/// room schedule plus one room-clipped mobility config per room.
#[derive(Debug, Clone)]
struct RoomContext {
    schedule: RoomSchedule,
    configs: Vec<MobilityConfig>,
}

/// West/east extent of a room in the partitioned office.
fn room_span(room: usize, n_rooms: usize) -> (f64, f64) {
    let w = OFFICE_WIDTH_M / n_rooms as f64;
    (w * room as f64, w * (room + 1) as f64)
}

/// A desk inside `room` for subject `subject`: one of the default desks
/// whose x-coordinate falls inside the room, or the room centre when
/// the layout puts no desk there.
fn desk_in_room(room: usize, n_rooms: usize, subject: usize) -> (f64, f64) {
    let (lo, hi) = room_span(room, n_rooms);
    let in_room: Vec<(f64, f64)> = DESKS
        .iter()
        .copied()
        .filter(|d| d.0 >= lo && d.0 < hi)
        .collect();
    if in_room.is_empty() {
        ((lo + hi) / 2.0, 1.5 + (subject % 3) as f64)
    } else {
        in_room[subject % in_room.len()]
    }
}

/// Where a subject appears when entering `room`: the office door for
/// the westmost room from outside, otherwise the doorway of the
/// partition wall being crossed (west wall when coming from the west or
/// from outside, east wall when coming from the east).
fn entry_into(room: usize, from: Option<usize>, n_rooms: usize) -> (f64, f64) {
    let (lo, hi) = room_span(room, n_rooms);
    match from {
        None if room == 0 => DOOR_XY,
        Some(f) if f > room => (hi - 0.4, DOORWAY_Y),
        _ => (lo + 0.4, DOORWAY_Y),
    }
}

/// The base mobility config with its roam bounds clipped to one room
/// (with the same 0.4 m wall margin the office default uses).
fn room_mobility(base: &MobilityConfig, room: usize, n_rooms: usize) -> MobilityConfig {
    let (lo, hi) = room_span(room, n_rooms);
    let mut cfg = *base;
    cfg.roam_x = (
        f64::max(lo + 0.4, base.roam_x.0),
        f64::min(hi - 0.4, base.roam_x.1),
    );
    cfg
}

/// Tracks the mobility state of every currently present subject.
#[derive(Debug, Clone)]
pub struct OccupantModel {
    schedule: Schedule,
    mobility_config: MobilityConfig,
    states: Vec<Option<SubjectMobility>>,
    current_rooms: Vec<Option<usize>>,
    rooms: Option<RoomContext>,
}

impl OccupantModel {
    /// Creates the model for a schedule.
    pub fn new(schedule: Schedule, mobility_config: MobilityConfig) -> Self {
        let n = schedule.subjects.len();
        Self {
            schedule,
            mobility_config,
            states: vec![None; n],
            current_rooms: vec![None; n],
            rooms: None,
        }
    }

    /// Creates the model for a multi-room office: subjects follow the
    /// [`RoomSchedule`], roam only within their current room, and cross
    /// partition doorways when the schedule moves them.
    pub fn multiroom(rooms: RoomSchedule, mobility_config: MobilityConfig) -> Self {
        let n = rooms.subjects.len();
        let configs = (0..rooms.n_rooms)
            .map(|r| room_mobility(&mobility_config, r, rooms.n_rooms))
            .collect();
        Self {
            schedule: rooms.presence_schedule(),
            mobility_config,
            states: vec![None; n],
            current_rooms: vec![None; n],
            rooms: Some(RoomContext {
                schedule: rooms,
                configs,
            }),
        }
    }

    /// Advances all subjects to time `t` (entering / leaving / moving).
    pub fn step(&mut self, t: f64, dt_s: f64, rng: &mut impl Rng) {
        if self.rooms.is_some() {
            self.step_rooms(t, dt_s, rng);
            return;
        }
        let presence = self.schedule.presence(t);
        for (i, (state, &present)) in self.states.iter_mut().zip(&presence).enumerate() {
            match (state.as_mut(), present) {
                (None, true) => {
                    let desk = DESKS[i % DESKS.len()];
                    *state = Some(SubjectMobility::entering(DOOR_XY, desk));
                }
                (Some(m), true) => m.step(&self.mobility_config, dt_s, rng),
                (Some(_), false) => *state = None,
                (None, false) => {}
            }
        }
    }

    /// The multi-room step: spawn at the right doorway on entry, walk
    /// to a desk in the scheduled room, re-route through the partition
    /// doorway on a room change.
    fn step_rooms(&mut self, t: f64, dt_s: f64, rng: &mut impl Rng) {
        let Self {
            states,
            current_rooms,
            rooms,
            ..
        } = self;
        let Some(ctx) = rooms.as_ref() else {
            return;
        };
        let n_rooms = ctx.schedule.n_rooms;
        for i in 0..states.len() {
            let target = ctx.schedule.room_of(i, t);
            match (current_rooms[i], target) {
                (Some(cur), Some(r)) if cur == r => {
                    if let Some(m) = states[i].as_mut() {
                        m.step(&ctx.configs[r], dt_s, rng);
                    }
                }
                (from, Some(r)) => {
                    let entry = entry_into(r, from, n_rooms);
                    states[i] = Some(SubjectMobility::entering(
                        entry,
                        desk_in_room(r, n_rooms, i),
                    ));
                    current_rooms[i] = Some(r);
                }
                (Some(_), None) => {
                    states[i] = None;
                    current_rooms[i] = None;
                }
                (None, None) => {}
            }
        }
    }

    /// Head count of every room, from actual body positions (a subject
    /// mid-transfer counts for the room their body is physically in).
    /// `None` for single-room models.
    pub fn room_counts(&self) -> Option<Vec<usize>> {
        let ctx = self.rooms.as_ref()?;
        let n = ctx.schedule.n_rooms;
        let w = OFFICE_WIDTH_M / n as f64;
        let mut counts = vec![0usize; n];
        for m in self.states.iter().flatten() {
            let r = ((m.position.0 / w).floor() as usize).min(n - 1);
            counts[r] += 1;
        }
        Some(counts)
    }

    /// Number of subjects currently in the room.
    pub fn count(&self) -> usize {
        self.states.iter().filter(|s| s.is_some()).count()
    }

    /// Channel bodies for everyone present (with micro-motion jitter).
    pub fn bodies(&self, rng: &mut impl Rng) -> Vec<Body> {
        self.states
            .iter()
            .flatten()
            .map(|m| m.body(&self.mobility_config, rng))
            .collect()
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The room-level activity class right now: the most dynamic activity
    /// of anyone present dominates (walking > standing > seated).
    pub fn dominant_activity(&self) -> ActivityClass {
        let mut class = ActivityClass::Empty;
        for m in self.states.iter().flatten() {
            let c = match m.activity {
                Activity::Walking { .. } => ActivityClass::Walking,
                Activity::Standing => ActivityClass::Standing,
                Activity::Seated => ActivityClass::Seated,
            };
            if c.label() > class.label() {
                class = c;
            }
        }
        class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{PresenceInterval, SubjectSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_subject_schedule() -> Schedule {
        Schedule {
            subjects: vec![
                SubjectSchedule {
                    intervals: vec![PresenceInterval {
                        enter_s: 10.0,
                        leave_s: 100.0,
                    }],
                },
                SubjectSchedule {
                    intervals: vec![PresenceInterval {
                        enter_s: 50.0,
                        leave_s: 200.0,
                    }],
                },
            ],
        }
    }

    #[test]
    fn subjects_enter_and_leave_on_schedule() {
        let mut model = OccupantModel::new(two_subject_schedule(), MobilityConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        model.step(0.0, 1.0, &mut rng);
        assert_eq!(model.count(), 0);
        model.step(20.0, 1.0, &mut rng);
        assert_eq!(model.count(), 1);
        model.step(60.0, 1.0, &mut rng);
        assert_eq!(model.count(), 2);
        model.step(150.0, 1.0, &mut rng);
        assert_eq!(model.count(), 1);
        model.step(300.0, 1.0, &mut rng);
        assert_eq!(model.count(), 0);
    }

    #[test]
    fn bodies_match_count_and_enter_at_door() {
        let mut model = OccupantModel::new(two_subject_schedule(), MobilityConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        model.step(10.0, 0.01, &mut rng);
        let bodies = model.bodies(&mut rng);
        assert_eq!(bodies.len(), 1);
        // Just entered: still near the door.
        let b = bodies[0];
        assert!((b.position.x - DOOR_XY.0).abs() < 0.5);
        assert!((b.position.y - DOOR_XY.1).abs() < 0.5);
    }

    #[test]
    fn desks_are_distinct_and_inside_the_room() {
        for (i, &(x, y)) in DESKS.iter().enumerate() {
            assert!((0.0..12.0).contains(&x) && (0.0..6.0).contains(&y));
            for &(x2, y2) in &DESKS[i + 1..] {
                assert!((x - x2).abs() + (y - y2).abs() > 0.5, "desks too close");
            }
        }
    }

    #[test]
    fn multiroom_subjects_stay_in_their_scheduled_room() {
        use crate::schedule::{RoomSchedule, RoomStay};
        let rooms = RoomSchedule {
            subjects: vec![
                vec![
                    RoomStay {
                        enter_s: 0.0,
                        leave_s: 300.0,
                        room: 0,
                    },
                    RoomStay {
                        enter_s: 300.0,
                        leave_s: 600.0,
                        room: 2,
                    },
                ],
                vec![RoomStay {
                    enter_s: 100.0,
                    leave_s: 600.0,
                    room: 1,
                }],
            ],
            n_rooms: 3,
        };
        let mut model = OccupantModel::multiroom(rooms, MobilityConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        // Walk well past the transfer walk time (doorway to desk < 8 m).
        for step in 0..1200 {
            let t = step as f64 * 0.5;
            model.step(t, 0.5, &mut rng);
            let counts = model.room_counts().expect("multiroom model");
            if (30.0..280.0).contains(&t) {
                assert_eq!(counts[0], 1, "t={t}: subject 0 should be in room 0");
            }
            if (150.0..580.0).contains(&t) {
                assert_eq!(counts[1], 1, "t={t}: subject 1 should be in room 1");
            }
            if (340.0..580.0).contains(&t) {
                assert_eq!(counts[2], 1, "t={t}: subject 0 should be in room 2");
            }
        }
        model.step(620.0, 0.5, &mut rng);
        assert_eq!(model.count(), 0);
    }

    #[test]
    fn multiroom_positions_respect_room_bounds_when_settled() {
        use crate::schedule::{RoomSchedule, RoomStay};
        let rooms = RoomSchedule {
            subjects: vec![vec![RoomStay {
                enter_s: 0.0,
                leave_s: 10_000.0,
                room: 2,
            }]],
            n_rooms: 3,
        };
        let mut model = OccupantModel::multiroom(rooms, MobilityConfig::default());
        let mut rng = StdRng::seed_from_u64(8);
        for step in 0..10_000 {
            model.step(step as f64, 1.0, &mut rng);
            if step > 30 {
                let counts = model.room_counts().expect("multiroom model");
                assert_eq!(counts, vec![0, 0, 1], "step {step}");
            }
        }
    }

    #[test]
    fn desks_in_each_room_fall_inside_that_room() {
        for room in 0..3 {
            let (lo, hi) = super::room_span(room, 3);
            for subject in 0..6 {
                let (x, y) = super::desk_in_room(room, 3, subject);
                assert!((lo..hi).contains(&x), "room {room} desk x={x}");
                assert!((0.0..6.0).contains(&y));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut model = OccupantModel::new(two_subject_schedule(), MobilityConfig::default());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            for i in 0..100 {
                model.step(i as f64, 1.0, &mut rng);
                out.push(model.bodies(&mut rng));
            }
            out
        };
        assert_eq!(run(3).len(), run(3).len());
        let a = run(3);
        let b = run(3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }
}
