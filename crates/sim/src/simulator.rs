//! The main simulation loop: occupants + environment + channel → dataset.

use crate::environment::EnvironmentState;
use crate::occupants::{ActivityClass, OccupantModel};
use crate::scenario::ScenarioConfig;
use crate::sensor::EnvSensor;
use crate::stream::RecordStream;
use occusense_channel::scene::{moved_furniture_layout, Scene};
use occusense_dataset::record::{CsiRecord, N_SUBCARRIERS};
use occusense_dataset::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stateful simulator; call [`step`](Self::step) per sample or
/// [`run`](Self::run) for the whole scenario.
#[derive(Debug, Clone)]
pub struct OfficeSimulator {
    config: ScenarioConfig,
    scene: Scene,
    occupants: OccupantModel,
    env: EnvironmentState,
    sensor: EnvSensor,
    rng: StdRng,
    t: f64,
    layout_changed: bool,
}

impl OfficeSimulator {
    /// Builds the simulator for a scenario.
    pub fn new(config: ScenarioConfig) -> Self {
        let (scene, occupants) = match (config.multiroom, config.room_schedule()) {
            (Some(mc), Some(rooms)) => (
                Scene::office_multiroom(mc.n_rooms),
                OccupantModel::multiroom(rooms, config.mobility),
            ),
            _ => (
                Scene::office_default(),
                OccupantModel::new(config.schedule(), config.mobility),
            ),
        };
        let env = EnvironmentState::initial();
        let sensor = EnvSensor::new(
            config.sensor,
            env.sensed_temperature_c(&config.env),
            env.relative_humidity_pct(),
        );
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            scene,
            occupants,
            env,
            sensor,
            rng,
            t: 0.0,
            layout_changed: false,
            config,
        }
    }

    /// Current scenario time, seconds.
    pub fn time_s(&self) -> f64 {
        self.t
    }

    /// Immutable view of the channel scene (for inspection in tests).
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Advances one sampling interval and returns the produced record.
    pub fn step(&mut self) -> CsiRecord {
        let dt = 1.0 / self.config.sample_rate_hz;
        let hour = self.config.clock.hour_of_day(self.t);

        // 1. People move / enter / leave. In a multi-room office only
        //    the monitored room's head count labels the record.
        self.occupants.step(self.t, dt, &mut self.rng);
        let count = match (self.config.multiroom, self.occupants.room_counts()) {
            (Some(mc), Some(rooms)) => rooms.get(mc.monitored_room).copied().unwrap_or(0),
            _ => self.occupants.count(),
        };

        // 2. Environment dynamics.
        self.env.window_open = self.config.window_open(self.t);
        self.env.step(&self.config.env, dt, self.t, hour, count);

        // 3. Furniture rearrangement epoch.
        if !self.layout_changed {
            if let Some(change_s) = self.config.layout_change_s {
                if self.t >= change_s {
                    self.scene.scatterers = moved_furniture_layout();
                    self.layout_changed = true;
                }
            }
        }

        // 4. Sensor readout (lagged, quantised, radiator-biased).
        let (sensed_t, sensed_h) = self.sensor.read(
            self.t,
            dt,
            self.env.sensed_temperature_c(&self.config.env),
            self.env.relative_humidity_pct(),
            &mut self.rng,
        );

        // 5. Channel snapshot: bulk air drives propagation; the radiator
        //    wall runs hotter than the bulk by twice the sensor's
        //    proximity bias (the wall is closer to the radiator than the
        //    sensor is).
        self.scene.bodies = self.occupants.bodies(&mut self.rng);
        self.scene.temperature_c = self.env.temperature_c;
        self.scene.humidity_pct = self.env.relative_humidity_pct();
        self.scene.radiator_wall_boost_c =
            2.0 * self.config.env.radiator_coupling_c * self.env.heater_duty;
        let response = self.scene.frequency_response();
        let amps = self.config.receiver.measure(&response, &mut self.rng);

        let mut csi = [0.0; N_SUBCARRIERS];
        csi.copy_from_slice(&amps);

        let record = CsiRecord::new(self.t, csi, sensed_t, sensed_h, count as u8);
        self.t += dt;
        record
    }

    /// Advances one sampling interval and additionally reports the
    /// room-level [`ActivityClass`] at that instant — the label stream
    /// of the activity-recognition extension (the paper's §VI future
    /// work).
    pub fn step_annotated(&mut self) -> (CsiRecord, ActivityClass) {
        let record = self.step();
        (record, self.occupants.dominant_activity())
    }

    /// Turns the simulator into an iterator over the scenario's
    /// records — the streaming entry point live-replay consumers (the
    /// serving runtime, dashboards) share with the batch path below.
    pub fn stream(self) -> RecordStream {
        let n = self.config.n_samples();
        RecordStream::new(self, n)
    }

    /// Runs the whole scenario and returns the dataset.
    pub fn run(self) -> Dataset {
        self.stream().collect()
    }

    /// Runs the whole scenario with per-sample activity labels.
    pub fn run_annotated(self) -> (Dataset, Vec<ActivityClass>) {
        self.stream().annotated().unzip()
    }

    /// Advances one sampling interval and additionally reports the
    /// per-room head counts (actual body positions, so a subject
    /// mid-transfer counts for the room they are physically in). For
    /// single-room scenarios the vector holds the total count.
    pub fn step_multiroom(&mut self) -> (CsiRecord, Vec<u8>) {
        let record = self.step();
        let rooms = self
            .occupants
            .room_counts()
            .unwrap_or_else(|| vec![self.occupants.count()]);
        (record, rooms.iter().map(|&c| c as u8).collect())
    }

    /// Runs the whole scenario with per-sample per-room ground truth.
    pub fn run_multiroom(mut self) -> (Dataset, Vec<Vec<u8>>) {
        let n = self.config.n_samples();
        let mut records = Vec::with_capacity(n);
        let mut rooms = Vec::with_capacity(n);
        for _ in 0..n {
            let (r, c) = self.step_multiroom();
            records.push(r);
            rooms.push(c);
        }
        (Dataset::from_records(records), rooms)
    }
}

/// Simulates a scenario end-to-end.
///
/// # Example
///
/// ```
/// use occusense_sim::{simulate, ScenarioConfig};
///
/// let ds = simulate(&ScenarioConfig::quick(300.0, 1));
/// assert_eq!(ds.len(), 600); // 2 Hz × 300 s
/// // First half empty, second half occupied.
/// assert_eq!(ds.records()[0].occupancy(), 0);
/// assert_eq!(ds.records()[599].occupancy(), 1);
/// ```
pub fn simulate(config: &ScenarioConfig) -> Dataset {
    OfficeSimulator::new(config.clone()).run()
}

/// Simulates a scenario with per-sample room-activity labels.
///
/// The CSI records are identical to [`simulate`] with the same
/// configuration; the second return value labels each record with the
/// dominant activity (walking > standing > seated > empty).
pub fn simulate_annotated(config: &ScenarioConfig) -> (Dataset, Vec<ActivityClass>) {
    OfficeSimulator::new(config.clone()).run_annotated()
}

/// Simulates a scenario with per-sample per-room head counts.
///
/// The CSI records are identical to [`simulate`] with the same
/// configuration; the second return value gives each room's ground
/// truth (a single-element vector for single-room scenarios). In a
/// multi-room scenario the record's own `occupant_count` is the
/// monitored room's entry of this vector.
pub fn simulate_multiroom(config: &ScenarioConfig) -> (Dataset, Vec<Vec<u8>>) {
    OfficeSimulator::new(config.clone()).run_multiroom()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_produces_expected_labels() {
        let ds = simulate(&ScenarioConfig::quick(600.0, 1));
        assert_eq!(ds.len(), 1200);
        // First half empty.
        let first = &ds.records()[..590];
        assert!(first.iter().all(|r| r.occupancy() == 0));
        // Second half occupied (allow a couple of samples of entry lag).
        let occupied = ds.records()[610..]
            .iter()
            .filter(|r| r.occupancy() == 1)
            .count();
        assert!(occupied > 550, "only {occupied} occupied samples");
        // Last quarter has two occupants.
        let two = ds.records()[920..]
            .iter()
            .filter(|r| r.occupant_count == 2)
            .count();
        assert!(two > 250, "only {two} two-occupant samples");
    }

    #[test]
    fn csi_amplitudes_are_valid() {
        let ds = simulate(&ScenarioConfig::quick(120.0, 2));
        for r in &ds {
            for &a in &r.csi {
                assert!(a.is_finite() && (0.0..=1.0).contains(&a));
            }
        }
    }

    #[test]
    fn occupied_csi_differs_from_empty_csi() {
        let ds = simulate(&ScenarioConfig::quick(600.0, 3));
        let empty_mean: Vec<f64> = mean_profile(&ds, 0);
        let occ_mean: Vec<f64> = mean_profile(&ds, 1);
        let delta: f64 = empty_mean
            .iter()
            .zip(&occ_mean)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(delta > 0.005, "occupancy leaves no CSI trace: {delta}");
    }

    fn mean_profile(ds: &Dataset, label: u8) -> Vec<f64> {
        let mut sums = vec![0.0; 64];
        let mut n = 0usize;
        for r in ds {
            if r.occupancy() == label {
                for (s, &a) in sums.iter_mut().zip(&r.csi) {
                    *s += a;
                }
                n += 1;
            }
        }
        assert!(n > 0, "no samples with label {label}");
        sums.iter().map(|s| s / n as f64).collect()
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let a = simulate(&ScenarioConfig::quick(60.0, 42));
        let b = simulate(&ScenarioConfig::quick(60.0, 42));
        assert_eq!(a, b);
        let c = simulate(&ScenarioConfig::quick(60.0, 43));
        assert_ne!(a, c);
    }

    #[test]
    fn layout_change_fires_once() {
        let mut cfg = ScenarioConfig::quick(100.0, 4);
        cfg.layout_change_s = Some(50.0);
        let mut sim = OfficeSimulator::new(cfg);
        let before = sim.scene().scatterers.clone();
        for _ in 0..150 {
            sim.step();
        }
        let after = sim.scene().scatterers.clone();
        assert_ne!(before, after);
        assert_eq!(after, moved_furniture_layout());
    }

    #[test]
    fn sensor_values_are_plausible() {
        let ds = simulate(&ScenarioConfig::quick(300.0, 5));
        for r in &ds {
            assert!(
                (10.0..45.0).contains(&r.temperature_c),
                "T {}",
                r.temperature_c
            );
            assert!(
                (0.0..=100.0).contains(&r.humidity_pct),
                "H {}",
                r.humidity_pct
            );
            assert_eq!(r.humidity_pct, r.humidity_pct.round());
        }
    }

    #[test]
    fn annotated_run_matches_plain_run() {
        let cfg = ScenarioConfig::quick(120.0, 8);
        let plain = simulate(&cfg);
        let (annotated, labels) = simulate_annotated(&cfg);
        assert_eq!(plain, annotated);
        assert_eq!(labels.len(), plain.len());
        // Labels agree with the occupancy ground truth.
        for (r, l) in annotated.iter().zip(&labels) {
            if r.occupancy() == 0 {
                assert_eq!(*l, ActivityClass::Empty);
            } else {
                assert_ne!(*l, ActivityClass::Empty);
            }
        }
    }

    #[test]
    fn annotated_run_covers_multiple_activities() {
        let (_, labels) = simulate_annotated(&ScenarioConfig::quick(2400.0, 9));
        let mut seen = [false; 4];
        for l in labels {
            seen[l.label()] = true;
        }
        assert!(seen[ActivityClass::Empty.label()]);
        assert!(seen[ActivityClass::Seated.label()]);
        assert!(seen[ActivityClass::Walking.label()], "nobody ever walked");
    }

    #[test]
    fn multiroom_labels_count_only_the_monitored_room() {
        let cfg = ScenarioConfig::multiroom(1800.0, 7);
        let (ds, rooms) = simulate_multiroom(&cfg);
        assert_eq!(ds.len(), rooms.len());
        let monitored = cfg.multiroom.expect("multiroom").monitored_room;
        let mut diverged = 0usize;
        for (r, c) in ds.iter().zip(&rooms) {
            assert_eq!(c.len(), 3);
            assert_eq!(r.occupant_count, c[monitored], "label != monitored room");
            let total: u8 = c.iter().sum();
            if total != c[monitored] {
                diverged += 1;
            }
        }
        // Off-monitored occupancy actually happens (the whole point).
        assert!(
            diverged > 100,
            "only {diverged} samples with occupants elsewhere"
        );
        // And the monitored room sees empty, single and multi occupancy.
        let mut seen = [false; 3];
        for c in &rooms {
            seen[(c[monitored] as usize).min(2)] = true;
        }
        assert!(seen[0] && seen[1] && seen[2], "label diversity: {seen:?}");
    }

    #[test]
    fn multiroom_simulation_is_deterministic_per_seed() {
        let cfg = ScenarioConfig::multiroom(600.0, 21);
        let (a, ra) = simulate_multiroom(&cfg);
        let (b, rb) = simulate_multiroom(&cfg);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        // And the plain path produces identical records.
        assert_eq!(a, simulate(&cfg));
    }

    #[test]
    fn multiroom_scene_has_partitions() {
        let sim = OfficeSimulator::new(ScenarioConfig::multiroom(60.0, 1));
        assert_eq!(sim.scene().partitions.len(), 2);
        let single = OfficeSimulator::new(ScenarioConfig::quick(60.0, 1));
        assert!(single.scene().partitions.is_empty());
    }

    #[test]
    fn timestamps_advance_uniformly() {
        let ds = simulate(&ScenarioConfig::quick(30.0, 6));
        let records = ds.records();
        for w in records.windows(2) {
            assert!((w[1].timestamp_s - w[0].timestamp_s - 0.5).abs() < 1e-9);
        }
    }
}
