//! In-room activity model: sitting, standing, walking.
//!
//! Occupants "carry out their office activities without any constraints"
//! (§IV-A): they sit at desks for long stretches, stand up, walk to other
//! spots and return. The one physical constraint of the paper's setup is
//! preserved: occupants cannot move *between* the AP and the receiver
//! (the strip in front of the radios is excluded from waypoints).
//!
//! While seated or standing the body still exhibits micro-motion
//! (breathing, typing, posture shifts) as small positional jitter, which
//! keeps occupied-room CSI "alive" compared to the static empty room.

use occusense_channel::geometry::Point3;
use occusense_channel::scene::Body;
use rand::Rng;

/// Parameters of the activity state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityConfig {
    /// Walking speed, m/s.
    pub walk_speed_mps: f64,
    /// Seated dwell time range, seconds.
    pub seat_dwell_s: (f64, f64),
    /// Standing dwell time range, seconds.
    pub stand_dwell_s: (f64, f64),
    /// Positional micro-motion while seated, metres (std).
    pub seated_jitter_m: f64,
    /// Positional micro-motion while standing, metres (std).
    pub standing_jitter_m: f64,
    /// Exclusion strip in front of the radios: occupants never enter
    /// `x ∈ [x0, x1], y < y_max`.
    pub exclusion_x: (f64, f64),
    /// Y extent of the exclusion strip.
    pub exclusion_y_max: f64,
    /// Room bounds the subject may roam, metres (with a wall margin).
    pub roam_x: (f64, f64),
    /// Y roam bounds.
    pub roam_y: (f64, f64),
}

impl MobilityConfig {
    /// Defaults matching the paper's office and radio placement.
    pub fn office_default() -> Self {
        Self {
            walk_speed_mps: 1.0,
            seat_dwell_s: (240.0, 1800.0),
            stand_dwell_s: (20.0, 120.0),
            seated_jitter_m: 0.02,
            standing_jitter_m: 0.04,
            exclusion_x: (4.6, 7.4),
            exclusion_y_max: 0.9,
            roam_x: (0.4, 11.6),
            roam_y: (0.4, 5.6),
        }
    }

    /// Whether `(x, y)` lies in the forbidden strip between the radios.
    pub fn is_excluded(&self, x: f64, y: f64) -> bool {
        (self.exclusion_x.0..=self.exclusion_x.1).contains(&x) && y < self.exclusion_y_max
    }

    fn random_waypoint(&self, rng: &mut impl Rng) -> (f64, f64) {
        loop {
            let x = rng.gen_range(self.roam_x.0..self.roam_x.1);
            let y = rng.gen_range(self.roam_y.0..self.roam_y.1);
            if !self.is_excluded(x, y) {
                return (x, y);
            }
        }
    }
}

impl Default for MobilityConfig {
    fn default() -> Self {
        Self::office_default()
    }
}

/// What a subject is currently doing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activity {
    /// Seated (at the desk or wherever they stopped).
    Seated,
    /// Standing still.
    Standing,
    /// Walking towards a waypoint.
    Walking {
        /// Walk target, `(x, y)`.
        target: (f64, f64),
    },
}

/// The mobility state of one present subject.
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectMobility {
    /// The subject's own desk.
    pub desk: (f64, f64),
    /// Current floor position.
    pub position: (f64, f64),
    /// Current activity.
    pub activity: Activity,
    /// Seconds until the next state decision (for stationary activities).
    dwell_remaining_s: f64,
}

impl SubjectMobility {
    /// A subject entering the room at `entry` and heading for `desk`.
    pub fn entering(entry: (f64, f64), desk: (f64, f64)) -> Self {
        Self {
            desk,
            position: entry,
            activity: Activity::Walking { target: desk },
            dwell_remaining_s: 0.0,
        }
    }

    /// Advances the state machine by `dt_s`.
    pub fn step(&mut self, config: &MobilityConfig, dt_s: f64, rng: &mut impl Rng) {
        match self.activity {
            Activity::Walking { target } => {
                let dx = target.0 - self.position.0;
                let dy = target.1 - self.position.1;
                let dist = (dx * dx + dy * dy).sqrt();
                let step = config.walk_speed_mps * dt_s;
                if dist <= step {
                    self.position = target;
                    let at_desk = (target.0 - self.desk.0).abs() < 1e-9
                        && (target.1 - self.desk.1).abs() < 1e-9;
                    if at_desk {
                        self.activity = Activity::Seated;
                        self.dwell_remaining_s =
                            rng.gen_range(config.seat_dwell_s.0..config.seat_dwell_s.1);
                    } else {
                        self.activity = Activity::Standing;
                        self.dwell_remaining_s =
                            rng.gen_range(config.stand_dwell_s.0..config.stand_dwell_s.1);
                    }
                } else {
                    self.position.0 += dx / dist * step;
                    self.position.1 += dy / dist * step;
                }
            }
            Activity::Seated | Activity::Standing => {
                self.dwell_remaining_s -= dt_s;
                if self.dwell_remaining_s <= 0.0 {
                    self.decide_next(config, rng);
                }
            }
        }
    }

    fn decide_next(&mut self, config: &MobilityConfig, rng: &mut impl Rng) {
        match self.activity {
            Activity::Seated => {
                let roll: f64 = rng.gen();
                if roll < 0.60 {
                    // Keep sitting.
                    self.dwell_remaining_s =
                        rng.gen_range(config.seat_dwell_s.0..config.seat_dwell_s.1);
                } else if roll < 0.75 {
                    self.activity = Activity::Standing;
                    self.dwell_remaining_s =
                        rng.gen_range(config.stand_dwell_s.0..config.stand_dwell_s.1);
                } else {
                    self.activity = Activity::Walking {
                        target: config.random_waypoint(rng),
                    };
                }
            }
            Activity::Standing => {
                if rng.gen_bool(0.6) {
                    // Head back to the desk.
                    self.activity = Activity::Walking { target: self.desk };
                } else {
                    self.activity = Activity::Walking {
                        target: config.random_waypoint(rng),
                    };
                }
            }
            Activity::Walking { .. } => {}
        }
    }

    /// The channel-model body for the current state, including
    /// micro-motion jitter.
    pub fn body(&self, config: &MobilityConfig, rng: &mut impl Rng) -> Body {
        let (jitter, make): (f64, fn(Point3) -> Body) = match self.activity {
            Activity::Seated => (config.seated_jitter_m, Body::sitting),
            Activity::Standing => (config.standing_jitter_m, Body::standing),
            Activity::Walking { .. } => (0.0, Body::standing),
        };
        let jx = if jitter > 0.0 {
            rng.gen_range(-jitter..jitter)
        } else {
            0.0
        };
        let jy = if jitter > 0.0 {
            rng.gen_range(-jitter..jitter)
        } else {
            0.0
        };
        make(Point3::new(self.position.0 + jx, self.position.1 + jy, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> MobilityConfig {
        MobilityConfig::office_default()
    }

    #[test]
    fn entering_subject_walks_to_desk_and_sits() {
        let cfg = config();
        let mut rng = StdRng::seed_from_u64(1);
        let desk = (2.0, 1.2);
        let mut m = SubjectMobility::entering((0.4, 5.6), desk);
        // Door-to-desk is < 6 m: 10 seconds at 1 m/s is plenty.
        for _ in 0..100 {
            m.step(&cfg, 0.5, &mut rng);
        }
        assert_eq!(m.activity, Activity::Seated);
        assert_eq!(m.position, desk);
    }

    #[test]
    fn positions_stay_in_roam_bounds_and_out_of_exclusion() {
        let cfg = config();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = SubjectMobility::entering((0.4, 5.6), (6.0, 4.5));
        for _ in 0..20_000 {
            m.step(&cfg, 1.0, &mut rng);
            let (x, y) = m.position;
            assert!(
                (cfg.roam_x.0 - 1e-9..=cfg.roam_x.1 + 1e-9).contains(&x),
                "x={x}"
            );
            assert!(
                (cfg.roam_y.0 - 1e-9..=cfg.roam_y.1 + 1e-9).contains(&y),
                "y={y}"
            );
            // Waypoints never target the exclusion zone; transit across it
            // cannot happen for straight lines from valid points only if
            // geometry allows — assert endpoints only.
            if matches!(m.activity, Activity::Seated | Activity::Standing) {
                assert!(
                    !cfg.is_excluded(x, y),
                    "stationary in exclusion zone at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn subject_eventually_walks_and_returns() {
        let cfg = config();
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = SubjectMobility::entering((0.4, 5.6), (9.5, 4.2));
        let mut walked = false;
        let mut seated_after_walk = false;
        for _ in 0..100_000 {
            m.step(&cfg, 1.0, &mut rng);
            match m.activity {
                Activity::Walking { .. } if seated_after_walk || !walked => walked = true,
                Activity::Seated if walked => seated_after_walk = true,
                _ => {}
            }
            if walked && seated_after_walk {
                break;
            }
        }
        assert!(walked, "subject never walked");
        assert!(seated_after_walk, "subject never sat back down");
    }

    #[test]
    fn seated_body_is_sitting_posture_with_jitter() {
        let cfg = config();
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = SubjectMobility::entering((2.0, 1.2), (2.0, 1.2));
        m.step(&cfg, 0.1, &mut rng); // arrives instantly (already at desk)
        assert_eq!(m.activity, Activity::Seated);
        let b1 = m.body(&cfg, &mut rng);
        let b2 = m.body(&cfg, &mut rng);
        // Sitting torso height from the channel model.
        assert_eq!(b1.position.z, 0.9);
        // Micro-motion: two consecutive bodies differ slightly.
        assert!(b1.position.distance(b2.position) > 0.0);
        assert!(b1.position.distance(b2.position) < 0.1);
    }

    #[test]
    fn walking_body_is_standing_posture() {
        let cfg = config();
        let mut rng = StdRng::seed_from_u64(5);
        let m = SubjectMobility::entering((0.4, 5.6), (9.5, 4.2));
        let b = m.body(&cfg, &mut rng);
        assert_eq!(b.position.z, 1.3);
    }

    #[test]
    fn exclusion_zone_matches_radio_strip() {
        let cfg = config();
        // Between AP (5.0, 0.35) and RX (7.0, 0.35).
        assert!(cfg.is_excluded(6.0, 0.35));
        assert!(cfg.is_excluded(5.0, 0.8));
        assert!(!cfg.is_excluded(6.0, 1.5));
        assert!(!cfg.is_excluded(2.0, 0.35));
    }

    #[test]
    fn dwell_times_drawn_from_configured_ranges() {
        let cfg = config();
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = SubjectMobility::entering((2.0, 1.2), (2.0, 1.2));
        m.step(&cfg, 0.1, &mut rng);
        assert!(m.dwell_remaining_s >= cfg.seat_dwell_s.0 - 0.1);
        assert!(m.dwell_remaining_s <= cfg.seat_dwell_s.1);
    }
}
