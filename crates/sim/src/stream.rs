//! Streaming view of a simulation — the adapter the serving runtime
//! ([`occusense-serve`]) replays scenarios through.
//!
//! [`RecordStream`] turns an [`OfficeSimulator`] into an iterator of
//! timestamped [`CsiRecord`]s, so live-replay consumers and the batch
//! [`simulate`](crate::simulate) path share the exact same stepping
//! logic: a stream collected into a dataset is bit-identical to
//! [`OfficeSimulator::run`] with the same configuration.
//!
//! [`occusense-serve`]: https://example.com/occusense

use crate::occupants::ActivityClass;
use crate::simulator::OfficeSimulator;
use occusense_dataset::CsiRecord;

/// Iterator over the records of one scenario, in timestamp order.
///
/// The stream owns its simulator and ends after the scenario's
/// configured number of samples.
///
/// # Example
///
/// ```
/// use occusense_sim::{OfficeSimulator, ScenarioConfig};
///
/// let cfg = ScenarioConfig::quick(30.0, 7);
/// let mut stream = OfficeSimulator::new(cfg).stream();
/// let first = stream.next().unwrap();
/// let second = stream.next().unwrap();
/// assert!(second.timestamp_s > first.timestamp_s);
/// assert_eq!(stream.count(), 58); // 2 Hz × 30 s, 2 consumed
/// ```
#[derive(Debug, Clone)]
pub struct RecordStream {
    sim: OfficeSimulator,
    remaining: usize,
}

impl RecordStream {
    pub(crate) fn new(sim: OfficeSimulator, n_samples: usize) -> Self {
        Self {
            sim,
            remaining: n_samples,
        }
    }

    /// The underlying simulator (e.g. to inspect the scene mid-stream).
    pub fn simulator(&self) -> &OfficeSimulator {
        &self.sim
    }

    /// Upgrades to a stream that also yields the room-level activity
    /// label per record.
    pub fn annotated(self) -> AnnotatedStream {
        AnnotatedStream(self)
    }
}

impl Iterator for RecordStream {
    type Item = CsiRecord;

    fn next(&mut self) -> Option<CsiRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.sim.step())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RecordStream {}

/// [`RecordStream`] with per-record [`ActivityClass`] ground truth.
#[derive(Debug, Clone)]
pub struct AnnotatedStream(RecordStream);

impl Iterator for AnnotatedStream {
    type Item = (CsiRecord, ActivityClass);

    fn next(&mut self) -> Option<(CsiRecord, ActivityClass)> {
        if self.0.remaining == 0 {
            return None;
        }
        self.0.remaining -= 1;
        Some(self.0.sim.step_annotated())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl ExactSizeIterator for AnnotatedStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use crate::simulator::simulate;
    use occusense_dataset::Dataset;

    #[test]
    fn stream_matches_batch_run_exactly() {
        let cfg = ScenarioConfig::quick(120.0, 31);
        let streamed: Dataset = OfficeSimulator::new(cfg.clone()).stream().collect();
        let batch = simulate(&cfg);
        assert_eq!(streamed, batch);
    }

    #[test]
    fn stream_is_exact_size() {
        let cfg = ScenarioConfig::quick(60.0, 32);
        let n = cfg.n_samples();
        let mut stream = OfficeSimulator::new(cfg).stream();
        assert_eq!(stream.len(), n);
        stream.next().unwrap();
        assert_eq!(stream.len(), n - 1);
        assert_eq!(stream.count(), n - 1);
    }

    #[test]
    fn annotated_stream_matches_annotated_run() {
        let cfg = ScenarioConfig::quick(90.0, 33);
        let (batch_ds, batch_labels) = crate::simulator::simulate_annotated(&cfg);
        let pairs: Vec<_> = OfficeSimulator::new(cfg).stream().annotated().collect();
        assert_eq!(pairs.len(), batch_ds.len());
        for ((r, l), (br, bl)) in pairs.iter().zip(batch_ds.iter().zip(&batch_labels)) {
            assert_eq!(r, br);
            assert_eq!(l, bl);
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let cfg = ScenarioConfig::quick(45.0, 34);
        let records: Vec<_> = OfficeSimulator::new(cfg).stream().collect();
        for w in records.windows(2) {
            assert!(w[1].timestamp_s > w[0].timestamp_s);
        }
    }
}
