//! Streaming view of a simulation — the adapter the serving runtime
//! ([`occusense-serve`]) replays scenarios through.
//!
//! [`RecordStream`] turns an [`OfficeSimulator`] into an iterator of
//! timestamped [`CsiRecord`]s, so live-replay consumers and the batch
//! [`simulate`](crate::simulate) path share the exact same stepping
//! logic: a stream collected into a dataset is bit-identical to
//! [`OfficeSimulator::run`] with the same configuration.
//!
//! [`occusense-serve`]: https://example.com/occusense

use crate::occupants::ActivityClass;
use crate::simulator::OfficeSimulator;
use occusense_dataset::CsiRecord;

/// Iterator over the records of one scenario, in timestamp order.
///
/// The stream owns its simulator and ends after the scenario's
/// configured number of samples.
///
/// # Example
///
/// ```
/// use occusense_sim::{OfficeSimulator, ScenarioConfig};
///
/// let cfg = ScenarioConfig::quick(30.0, 7);
/// let mut stream = OfficeSimulator::new(cfg).stream();
/// let first = stream.next().unwrap();
/// let second = stream.next().unwrap();
/// assert!(second.timestamp_s > first.timestamp_s);
/// assert_eq!(stream.count(), 58); // 2 Hz × 30 s, 2 consumed
/// ```
#[derive(Debug, Clone)]
pub struct RecordStream {
    sim: OfficeSimulator,
    remaining: usize,
}

impl RecordStream {
    pub(crate) fn new(sim: OfficeSimulator, n_samples: usize) -> Self {
        Self {
            sim,
            remaining: n_samples,
        }
    }

    /// The underlying simulator (e.g. to inspect the scene mid-stream).
    pub fn simulator(&self) -> &OfficeSimulator {
        &self.sim
    }

    /// Upgrades to a stream that also yields the room-level activity
    /// label per record.
    pub fn annotated(self) -> AnnotatedStream {
        AnnotatedStream(self)
    }

    /// Wraps the stream in a deterministic fault-injection layer: the
    /// [`FaultPlan`] corrupts, drops or poison-tags records by their
    /// position in the pristine stream.
    pub fn with_faults(self, plan: FaultPlan) -> FaultyStream {
        FaultyStream {
            inner: self,
            plan,
            index: 0,
        }
    }
}

/// The canonical per-sensor replay source for fleet drivers
/// (`serve_sim`, `occusense-wire`'s `wire_storm`): sensor `index` of a
/// fleet seeded with `base_seed` replays
/// `ScenarioConfig::quick(duration_s, base_seed + index)`.
///
/// Every driver deriving its streams through this one function
/// guarantees that an over-the-wire replay and a direct in-process
/// replay of "the same fleet" really do score the same records — the
/// precondition for `wire_storm --verify`'s bitwise comparison.
pub fn fleet_stream(duration_s: f64, base_seed: u64, index: u64) -> RecordStream {
    let cfg = crate::scenario::ScenarioConfig::quick(duration_s, base_seed.wrapping_add(index));
    OfficeSimulator::new(cfg).stream()
}

impl Iterator for RecordStream {
    type Item = CsiRecord;

    fn next(&mut self) -> Option<CsiRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.sim.step())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RecordStream {}

/// [`RecordStream`] with per-record [`ActivityClass`] ground truth.
#[derive(Debug, Clone)]
pub struct AnnotatedStream(RecordStream);

impl Iterator for AnnotatedStream {
    type Item = (CsiRecord, ActivityClass);

    fn next(&mut self) -> Option<(CsiRecord, ActivityClass)> {
        if self.0.remaining == 0 {
            return None;
        }
        self.0.remaining -= 1;
        Some(self.0.sim.step_annotated())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl ExactSizeIterator for AnnotatedStream {}

/// Humidity sentinel a [`FaultKind::WorkerPanic`] fault stamps onto a
/// record. Real humidity is a percentage, so the value is far outside
/// any data the simulator or a physical sensor can produce; the serving
/// runtime's fault-injection mode recognises the exact bit pattern (see
/// [`is_worker_panic_trigger`]) and panics the worker that scores it.
pub const WORKER_PANIC_HUMIDITY: f64 = -9999.25;

/// Humidity sentinel of [`FaultKind::TrainerPanic`]: the record scores
/// normally but panics the continual trainer that observes it.
pub const TRAINER_PANIC_HUMIDITY: f64 = -7777.25;

/// Whether `record` carries the scripted worker-panic sentinel
/// (exact bit comparison, so no legitimate value can alias it).
pub fn is_worker_panic_trigger(record: &CsiRecord) -> bool {
    record.humidity_pct.to_bits() == WORKER_PANIC_HUMIDITY.to_bits()
}

/// Whether `record` carries the scripted trainer-panic sentinel.
pub fn is_trainer_panic_trigger(record: &CsiRecord) -> bool {
    record.humidity_pct.to_bits() == TRAINER_PANIC_HUMIDITY.to_bits()
}

/// One kind of scripted fault a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Overwrites every fourth CSI subcarrier amplitude with NaN —
    /// the classic corrupt-frame failure of a flaky sniffer.
    NanCsi,
    /// Multiplies every CSI amplitude by `factor` (an RF interference
    /// burst; the record stays finite and scorable).
    Spike {
        /// Amplitude multiplier applied to all subcarriers.
        factor: f64,
    },
    /// Suppresses the record entirely (sensor dropout / radio silence).
    Dropout,
    /// Stamps [`WORKER_PANIC_HUMIDITY`] so a serving worker running in
    /// fault-injection mode panics while scoring the batch holding it.
    WorkerPanic,
    /// Stamps [`TRAINER_PANIC_HUMIDITY`] so the continual trainer
    /// running in fault-injection mode panics while observing it.
    TrainerPanic,
}

/// A fault applied to the half-open index range `[start, start + len)`
/// of the pristine stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// First affected record index (0-based, pre-dropout numbering).
    pub start: usize,
    /// Number of consecutive affected records.
    pub len: usize,
    /// What happens to the affected records.
    pub kind: FaultKind,
}

impl Fault {
    fn covers(&self, index: usize) -> bool {
        index >= self.start && index - self.start < self.len
    }
}

/// A deterministic script of stream faults.
///
/// Faults are indexed by the record's position in the *pristine*
/// stream, so the same plan over the same scenario always corrupts the
/// same records — which is what makes end-to-end recovery testable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: adds a fault over `[start, start + len)`.
    pub fn with(mut self, kind: FaultKind, start: usize, len: usize) -> Self {
        self.faults.push(Fault { start, len, kind });
        self
    }

    /// The scripted faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether any fault requires the serving runtime's panic-trigger
    /// mode to be armed.
    pub fn has_worker_panics(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::WorkerPanic))
    }

    /// Whether any fault targets the continual trainer.
    pub fn has_trainer_panics(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::TrainerPanic))
    }

    /// Applies every fault covering `index` to `record`; `None` means
    /// the record is dropped.
    pub fn apply(&self, index: usize, mut record: CsiRecord) -> Option<CsiRecord> {
        for fault in &self.faults {
            if !fault.covers(index) {
                continue;
            }
            match fault.kind {
                FaultKind::NanCsi => {
                    for (i, a) in record.csi.iter_mut().enumerate() {
                        if i % 4 == 0 {
                            *a = f64::NAN;
                        }
                    }
                }
                FaultKind::Spike { factor } => {
                    for a in &mut record.csi {
                        *a *= factor;
                    }
                }
                FaultKind::Dropout => return None,
                FaultKind::WorkerPanic => record.humidity_pct = WORKER_PANIC_HUMIDITY,
                FaultKind::TrainerPanic => record.humidity_pct = TRAINER_PANIC_HUMIDITY,
            }
        }
        Some(record)
    }

    /// Parses the CLI spelling: comma-separated `kind@start` or
    /// `kind@startxlen` terms, where `kind` is `nan`, `spike` (×1e6),
    /// `drop`, `panic` or `trainer-panic`.
    ///
    /// ```
    /// use occusense_sim::stream::FaultPlan;
    /// let plan = FaultPlan::parse("nan@50x5,drop@100x20,panic@300").unwrap();
    /// assert_eq!(plan.faults().len(), 3);
    /// assert!(plan.has_worker_panics());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed terms.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::new();
        for term in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let term = term.trim();
            let (kind_s, where_s) = term
                .split_once('@')
                .ok_or_else(|| format!("fault term '{term}' is missing '@start'"))?;
            let kind = match kind_s {
                "nan" => FaultKind::NanCsi,
                "spike" => FaultKind::Spike { factor: 1e6 },
                "drop" => FaultKind::Dropout,
                "panic" => FaultKind::WorkerPanic,
                "trainer-panic" => FaultKind::TrainerPanic,
                other => {
                    return Err(format!(
                        "unknown fault kind '{other}' \
                         (nan | spike | drop | panic | trainer-panic)"
                    ))
                }
            };
            let (start_s, len_s) = match where_s.split_once('x') {
                Some((s, l)) => (s, l),
                None => (where_s, "1"),
            };
            let start: usize = start_s
                .parse()
                .map_err(|e| format!("bad fault start '{start_s}': {e}"))?;
            let len: usize = len_s
                .parse()
                .map_err(|e| format!("bad fault span '{len_s}': {e}"))?;
            if len == 0 {
                return Err(format!("fault term '{term}' has a zero span"));
            }
            plan = plan.with(kind, start, len);
        }
        Ok(plan)
    }
}

/// [`RecordStream`] filtered through a [`FaultPlan`].
///
/// Not an [`ExactSizeIterator`]: dropout faults shorten the stream.
#[derive(Debug, Clone)]
pub struct FaultyStream {
    inner: RecordStream,
    plan: FaultPlan,
    index: usize,
}

impl FaultyStream {
    /// Index (in pristine-stream numbering) of the next record.
    pub fn position(&self) -> usize {
        self.index
    }
}

impl Iterator for FaultyStream {
    type Item = CsiRecord;

    fn next(&mut self) -> Option<CsiRecord> {
        loop {
            let record = self.inner.next()?;
            let index = self.index;
            self.index += 1;
            if let Some(faulted) = self.plan.apply(index, record) {
                return Some(faulted);
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Dropouts can only shrink the stream.
        (0, self.inner.size_hint().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use crate::simulator::simulate;
    use occusense_dataset::Dataset;

    #[test]
    fn stream_matches_batch_run_exactly() {
        let cfg = ScenarioConfig::quick(120.0, 31);
        let streamed: Dataset = OfficeSimulator::new(cfg.clone()).stream().collect();
        let batch = simulate(&cfg);
        assert_eq!(streamed, batch);
    }

    #[test]
    fn stream_is_exact_size() {
        let cfg = ScenarioConfig::quick(60.0, 32);
        let n = cfg.n_samples();
        let mut stream = OfficeSimulator::new(cfg).stream();
        assert_eq!(stream.len(), n);
        stream.next().unwrap();
        assert_eq!(stream.len(), n - 1);
        assert_eq!(stream.count(), n - 1);
    }

    #[test]
    fn annotated_stream_matches_annotated_run() {
        let cfg = ScenarioConfig::quick(90.0, 33);
        let (batch_ds, batch_labels) = crate::simulator::simulate_annotated(&cfg);
        let pairs: Vec<_> = OfficeSimulator::new(cfg).stream().annotated().collect();
        assert_eq!(pairs.len(), batch_ds.len());
        for ((r, l), (br, bl)) in pairs.iter().zip(batch_ds.iter().zip(&batch_labels)) {
            assert_eq!(r, br);
            assert_eq!(l, bl);
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let cfg = ScenarioConfig::quick(45.0, 34);
        let records: Vec<_> = OfficeSimulator::new(cfg).stream().collect();
        for w in records.windows(2) {
            assert!(w[1].timestamp_s > w[0].timestamp_s);
        }
    }

    #[test]
    fn fault_plan_corrupts_exactly_the_scripted_records() {
        let cfg = ScenarioConfig::quick(60.0, 35);
        let pristine: Vec<_> = OfficeSimulator::new(cfg.clone()).stream().collect();
        let plan = FaultPlan::new()
            .with(FaultKind::NanCsi, 3, 2)
            .with(FaultKind::Spike { factor: 1e6 }, 10, 1)
            .with(FaultKind::WorkerPanic, 20, 1)
            .with(FaultKind::TrainerPanic, 25, 1);
        let faulted: Vec<_> = OfficeSimulator::new(cfg)
            .stream()
            .with_faults(plan)
            .collect();
        assert_eq!(faulted.len(), pristine.len());
        for (i, (f, p)) in faulted.iter().zip(&pristine).enumerate() {
            match i {
                3 | 4 => {
                    assert!(f.csi[0].is_nan());
                    assert!(f.csi[1].is_finite());
                }
                10 => assert_eq!(f.csi[1], p.csi[1] * 1e6),
                20 => assert!(is_worker_panic_trigger(f)),
                25 => assert!(is_trainer_panic_trigger(f)),
                _ => assert_eq!(f, p),
            }
        }
    }

    #[test]
    fn dropout_faults_shorten_the_stream_deterministically() {
        let cfg = ScenarioConfig::quick(60.0, 36);
        let pristine: Vec<_> = OfficeSimulator::new(cfg.clone()).stream().collect();
        let plan = FaultPlan::new().with(FaultKind::Dropout, 5, 10);
        let faulted: Vec<_> = OfficeSimulator::new(cfg)
            .stream()
            .with_faults(plan)
            .collect();
        assert_eq!(faulted.len(), pristine.len() - 10);
        assert_eq!(faulted[4], pristine[4]);
        assert_eq!(faulted[5], pristine[15]);
    }

    #[test]
    fn fault_spec_parser_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::parse("nan@50x5, drop@100x20,spike@200,panic@300").unwrap();
        assert_eq!(
            plan.faults(),
            &[
                Fault {
                    start: 50,
                    len: 5,
                    kind: FaultKind::NanCsi
                },
                Fault {
                    start: 100,
                    len: 20,
                    kind: FaultKind::Dropout
                },
                Fault {
                    start: 200,
                    len: 1,
                    kind: FaultKind::Spike { factor: 1e6 }
                },
                Fault {
                    start: 300,
                    len: 1,
                    kind: FaultKind::WorkerPanic
                },
            ]
        );
        assert!(plan.has_worker_panics());
        assert!(!plan.has_trainer_panics());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("meteor@3").is_err());
        assert!(FaultPlan::parse("nan@x5").is_err());
        assert!(FaultPlan::parse("nan@5x0").is_err());
    }

    #[test]
    fn panic_sentinels_never_occur_in_clean_simulation() {
        let cfg = ScenarioConfig::quick(120.0, 37);
        for r in OfficeSimulator::new(cfg).stream() {
            assert!(!is_worker_panic_trigger(&r));
            assert!(!is_trainer_panic_trigger(&r));
        }
    }
}
