//! 3-D geometry primitives: points, the office room box, segment distance
//! tests used for Fresnel-zone shadowing.

/// A point (or vector) in 3-D space, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// X coordinate (along the 12 m office wall).
    pub x: f64,
    /// Y coordinate (along the 6 m office wall).
    pub y: f64,
    /// Z coordinate (height, 0 = floor).
    pub z: f64,
}

impl std::ops::Add for Point3 {
    type Output = Point3;

    fn add(self, other: Point3) -> Point3 {
        Point3::new(self.x + other.x, self.y + other.y, self.z + other.z)
    }
}

impl std::ops::Sub for Point3 {
    type Output = Point3;

    fn sub(self, other: Point3) -> Point3 {
        Point3::new(self.x - other.x, self.y - other.y, self.z - other.z)
    }
}

impl Point3 {
    /// Creates a point.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Euclidean distance to `other`.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_channel::geometry::Point3;
    /// let a = Point3::new(0.0, 0.0, 0.0);
    /// let b = Point3::new(3.0, 4.0, 0.0);
    /// assert_eq!(a.distance(b), 5.0);
    /// ```
    pub fn distance(self, other: Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Scales the vector by `k`.
    pub fn scale(self, k: f64) -> Point3 {
        Point3::new(self.x * k, self.y * k, self.z * k)
    }

    /// Dot product.
    pub fn dot(self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }
}

/// Shortest distance from point `p` to the segment `a`–`b`, together with
/// the normalised position `t ∈ [0, 1]` of the closest point on the
/// segment. Used to decide whether a human body intrudes into the Fresnel
/// zone of a propagation path.
pub fn point_segment_distance(p: Point3, a: Point3, b: Point3) -> (f64, f64) {
    let ab = b - a;
    let len2 = ab.dot(ab);
    if len2 == 0.0 {
        return (p.distance(a), 0.0);
    }
    let t = ((p - a).dot(ab) / len2).clamp(0.0, 1.0);
    let closest = a + ab.scale(t);
    (p.distance(closest), t)
}

/// The six boundary surfaces of the rectangular office.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Surface {
    /// Floor, z = 0.
    Floor,
    /// Ceiling, z = height.
    Ceiling,
    /// Wall at y = 0 (internal plasterboard in the paper's office).
    WallSouth,
    /// Wall at y = depth.
    WallNorth,
    /// Wall at x = 0 (external reinforced concrete).
    WallWest,
    /// Wall at x = width.
    WallEast,
}

impl Surface {
    /// All six surfaces, in a fixed order.
    pub const ALL: [Surface; 6] = [
        Surface::Floor,
        Surface::Ceiling,
        Surface::WallSouth,
        Surface::WallNorth,
        Surface::WallWest,
        Surface::WallEast,
    ];
}

/// The rectangular office room, matching §IV-A: 12 × 6 × 3 metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Room {
    /// Extent along x, metres.
    pub width: f64,
    /// Extent along y, metres.
    pub depth: f64,
    /// Extent along z, metres.
    pub height: f64,
}

impl Room {
    /// The paper's office: 12 × 6 × 3 m.
    pub fn office() -> Self {
        Self {
            width: 12.0,
            depth: 6.0,
            height: 3.0,
        }
    }

    /// Whether `p` lies inside (or on the boundary of) the room.
    pub fn contains(&self, p: Point3) -> bool {
        (0.0..=self.width).contains(&p.x)
            && (0.0..=self.depth).contains(&p.y)
            && (0.0..=self.height).contains(&p.z)
    }

    /// Mirror image of `p` across the given surface — the image-method
    /// virtual source for a first-order reflection.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_channel::geometry::{Point3, Room, Surface};
    /// let room = Room::office();
    /// let p = Point3::new(2.0, 3.0, 1.0);
    /// let img = room.mirror(p, Surface::Floor);
    /// assert_eq!(img, Point3::new(2.0, 3.0, -1.0));
    /// ```
    pub fn mirror(&self, p: Point3, surface: Surface) -> Point3 {
        match surface {
            Surface::Floor => Point3::new(p.x, p.y, -p.z),
            Surface::Ceiling => Point3::new(p.x, p.y, 2.0 * self.height - p.z),
            Surface::WallSouth => Point3::new(p.x, -p.y, p.z),
            Surface::WallNorth => Point3::new(p.x, 2.0 * self.depth - p.y, p.z),
            Surface::WallWest => Point3::new(-p.x, p.y, p.z),
            Surface::WallEast => Point3::new(2.0 * self.width - p.x, p.y, p.z),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_vector_ops() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 6.0, 3.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b - a, Point3::new(3.0, 4.0, 0.0));
        assert_eq!(a + b, Point3::new(5.0, 8.0, 6.0));
        assert_eq!(a.scale(2.0), Point3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(b), 4.0 + 12.0 + 9.0);
        assert!(((b - a).norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_segment_distance_cases() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(10.0, 0.0, 0.0);
        // Perpendicular from the middle.
        let (d, t) = point_segment_distance(Point3::new(5.0, 2.0, 0.0), a, b);
        assert!((d - 2.0).abs() < 1e-12);
        assert!((t - 0.5).abs() < 1e-12);
        // Beyond the end: clamps to endpoint b.
        let (d, t) = point_segment_distance(Point3::new(13.0, 4.0, 0.0), a, b);
        assert!((d - 5.0).abs() < 1e-12);
        assert_eq!(t, 1.0);
        // Degenerate zero-length segment.
        let (d, t) = point_segment_distance(Point3::new(1.0, 0.0, 0.0), a, a);
        assert_eq!(d, 1.0);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn room_contains() {
        let room = Room::office();
        assert!(room.contains(Point3::new(6.0, 3.0, 1.5)));
        assert!(room.contains(Point3::new(0.0, 0.0, 0.0)));
        assert!(!room.contains(Point3::new(-0.1, 3.0, 1.5)));
        assert!(!room.contains(Point3::new(6.0, 6.1, 1.5)));
        assert!(!room.contains(Point3::new(6.0, 3.0, 3.5)));
    }

    #[test]
    fn mirror_across_each_surface() {
        let room = Room::office();
        let p = Point3::new(2.0, 3.0, 1.0);
        assert_eq!(room.mirror(p, Surface::Floor), Point3::new(2.0, 3.0, -1.0));
        assert_eq!(room.mirror(p, Surface::Ceiling), Point3::new(2.0, 3.0, 5.0));
        assert_eq!(
            room.mirror(p, Surface::WallSouth),
            Point3::new(2.0, -3.0, 1.0)
        );
        assert_eq!(
            room.mirror(p, Surface::WallNorth),
            Point3::new(2.0, 9.0, 1.0)
        );
        assert_eq!(
            room.mirror(p, Surface::WallWest),
            Point3::new(-2.0, 3.0, 1.0)
        );
        assert_eq!(
            room.mirror(p, Surface::WallEast),
            Point3::new(22.0, 3.0, 1.0)
        );
    }

    #[test]
    fn mirror_is_involution() {
        let room = Room::office();
        let p = Point3::new(7.3, 2.1, 2.9);
        for s in Surface::ALL {
            let back = room.mirror(room.mirror(p, s), s);
            assert!(back.distance(p) < 1e-12, "{s:?}: {back:?} vs {p:?}");
        }
    }

    #[test]
    fn mirror_preserves_reflected_path_length() {
        // Image method invariant: |img(tx) - rx| equals the length of the
        // reflected path tx -> surface -> rx.
        let room = Room::office();
        let tx = Point3::new(2.0, 3.0, 1.4);
        let rx = Point3::new(4.0, 3.0, 1.4);
        let img = room.mirror(tx, Surface::Floor);
        // Reflected path touches the floor at the midpoint for symmetric heights.
        let touch = Point3::new(3.0, 3.0, 0.0);
        let via = tx.distance(touch) + touch.distance(rx);
        assert!((img.distance(rx) - via).abs() < 1e-12);
    }
}
