//! Multipath enumeration: line of sight, first-order image reflections,
//! scatterer paths and human-body shadowing.
//!
//! The model is deliberately first-order (single-bounce): it is cheap
//! enough to evaluate at 20 Hz over a 74-hour scenario, yet rich enough
//! that the CSI amplitude profile across 64 subcarriers changes
//! non-linearly with occupant position — the property every experiment of
//! the paper rests on.

use crate::geometry::{point_segment_distance, Point3, Room, Surface};

/// Reference amplitude constant: a path of length `d` has free-space
/// amplitude `GAIN_REF / d`. Chosen so that the 2 m line-of-sight path of
/// the paper's setup has amplitude 0.5 before receiver scaling.
pub const GAIN_REF: f64 = 1.0;

/// One propagation path from transmitter to receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Path {
    /// Geometric path length in metres (sets the per-subcarrier phase).
    pub length_m: f64,
    /// Real amplitude factor (free-space spreading × reflection
    /// coefficients × shadowing). Negative values encode a π phase flip at
    /// a reflection.
    pub amplitude: f64,
}

impl Path {
    /// The line-of-sight path between `tx` and `rx` with the given
    /// multiplicative shadowing factor.
    pub fn line_of_sight(tx: Point3, rx: Point3, shadowing: f64) -> Self {
        let d = tx.distance(rx).max(1e-6);
        Path {
            length_m: d,
            amplitude: shadowing * GAIN_REF / d,
        }
    }

    /// A first-order specular reflection off `surface` with amplitude
    /// reflection coefficient `gamma` (positive; the sign flip of the
    /// reflection is applied internally) and shadowing factor.
    pub fn reflection(
        room: &Room,
        tx: Point3,
        rx: Point3,
        surface: Surface,
        gamma: f64,
        shadowing: f64,
    ) -> Self {
        let img = room.mirror(tx, surface);
        let d = img.distance(rx).max(1e-6);
        Path {
            length_m: d,
            // Reflections off denser media flip phase: negative amplitude.
            amplitude: -gamma * shadowing * GAIN_REF / d,
        }
    }

    /// A single-bounce scatter path `tx → scatterer → rx` with bistatic
    /// scattering amplitude `sigma` (dimensionless, of order 0.1–0.5).
    pub fn scatter(tx: Point3, rx: Point3, at: Point3, sigma: f64) -> Self {
        let d1 = tx.distance(at).max(1e-6);
        let d2 = at.distance(rx).max(1e-6);
        Path {
            length_m: d1 + d2,
            amplitude: sigma * GAIN_REF * GAIN_REF / (d1 * d2),
        }
    }
}

/// Specular touch point of the first-order reflection of `tx → rx` off
/// `surface`, or `None` if the specular point falls outside the room face
/// (no geometric reflection exists).
pub fn reflection_touch_point(
    room: &Room,
    tx: Point3,
    rx: Point3,
    surface: Surface,
) -> Option<Point3> {
    let img = room.mirror(tx, surface);
    // Parametrise img -> rx and intersect with the surface plane.
    let (num, den) = match surface {
        Surface::Floor => (0.0 - img.z, rx.z - img.z),
        Surface::Ceiling => (room.height - img.z, rx.z - img.z),
        Surface::WallSouth => (0.0 - img.y, rx.y - img.y),
        Surface::WallNorth => (room.depth - img.y, rx.y - img.y),
        Surface::WallWest => (0.0 - img.x, rx.x - img.x),
        Surface::WallEast => (room.width - img.x, rx.x - img.x),
    };
    if den.abs() < 1e-12 {
        return None;
    }
    let t = num / den;
    if !(0.0..=1.0).contains(&t) {
        return None;
    }
    let p = img + (rx - img).scale(t);
    room.contains(p).then_some(p)
}

/// Smoothstep polynomial `3u² − 2u³` on the clamped unit interval.
fn smoothstep(u: f64) -> f64 {
    let u = u.clamp(0.0, 1.0);
    u * u * (3.0 - 2.0 * u)
}

/// Multiplicative shadowing factor caused by a cylindrical obstacle of
/// radius `obstacle_radius` centred at `obstacle` standing near the
/// straight segment `a → b`.
///
/// The obstacle attenuates the path when it intrudes into the first
/// Fresnel zone, whose radius at the closest-approach point is
/// `R_f = sqrt(λ · d₁ · d₂ / (d₁ + d₂))`. Full clearance (≥ one Fresnel
/// radius beyond the body surface) gives factor 1; a body centred on the
/// path gives ≈ 0.1.
///
/// # Example
///
/// ```
/// use occusense_channel::geometry::Point3;
/// use occusense_channel::multipath::shadowing_factor;
///
/// let a = Point3::new(0.0, 0.0, 1.4);
/// let b = Point3::new(4.0, 0.0, 1.4);
/// let blocking = shadowing_factor(Point3::new(2.0, 0.0, 1.4), 0.25, a, b, 0.125);
/// let clear = shadowing_factor(Point3::new(2.0, 3.0, 1.4), 0.25, a, b, 0.125);
/// assert!(blocking < 0.2);
/// assert!(clear == 1.0);
/// ```
pub fn shadowing_factor(
    obstacle: Point3,
    obstacle_radius: f64,
    a: Point3,
    b: Point3,
    wavelength_m: f64,
) -> f64 {
    let (clearance, t) = point_segment_distance(obstacle, a, b);
    let total = a.distance(b).max(1e-6);
    let d1 = t * total;
    let d2 = (1.0 - t) * total;
    let fresnel = (wavelength_m * d1 * d2 / total).max(1e-9).sqrt();
    // u = 1 at full clearance, 0 with the body centre on the path.
    let u = (clearance - obstacle_radius) / fresnel;
    0.1 + 0.9 * smoothstep((u + 1.0) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 0.1229; // ~2.44 GHz

    #[test]
    fn los_amplitude_decays_with_distance() {
        let tx = Point3::new(0.0, 0.0, 1.4);
        let near = Path::line_of_sight(tx, Point3::new(2.0, 0.0, 1.4), 1.0);
        let far = Path::line_of_sight(tx, Point3::new(8.0, 0.0, 1.4), 1.0);
        assert!((near.amplitude - 0.5).abs() < 1e-12);
        assert!(far.amplitude < near.amplitude);
        assert_eq!(near.length_m, 2.0);
    }

    #[test]
    fn reflection_amplitude_sign_and_length() {
        let room = Room::office();
        let tx = Point3::new(5.0, 3.0, 1.4);
        let rx = Point3::new(7.0, 3.0, 1.4);
        let p = Path::reflection(&room, tx, rx, Surface::Floor, 0.3, 1.0);
        // Longer than LoS, negative amplitude (phase flip).
        assert!(p.length_m > tx.distance(rx));
        assert!(p.amplitude < 0.0);
        // Image length: sqrt(2^2 + 2.8^2).
        let expected = (4.0f64 + 2.8 * 2.8).sqrt();
        assert!((p.length_m - expected).abs() < 1e-12);
    }

    #[test]
    fn scatter_path_length_is_sum_of_legs() {
        let tx = Point3::new(0.0, 0.0, 1.0);
        let rx = Point3::new(4.0, 0.0, 1.0);
        let at = Point3::new(2.0, 3.0, 1.0);
        let p = Path::scatter(tx, rx, at, 0.3);
        let expected = tx.distance(at) + at.distance(rx);
        assert!((p.length_m - expected).abs() < 1e-12);
        assert!(p.amplitude > 0.0);
    }

    #[test]
    fn scatter_amplitude_decays_with_either_leg() {
        let tx = Point3::new(0.0, 0.0, 1.0);
        let rx = Point3::new(4.0, 0.0, 1.0);
        let near = Path::scatter(tx, rx, Point3::new(2.0, 1.0, 1.0), 0.3);
        let far = Path::scatter(tx, rx, Point3::new(2.0, 5.0, 1.0), 0.3);
        assert!(far.amplitude < near.amplitude);
    }

    #[test]
    fn touch_point_symmetric_case() {
        let room = Room::office();
        let tx = Point3::new(5.0, 3.0, 1.4);
        let rx = Point3::new(7.0, 3.0, 1.4);
        let tp = reflection_touch_point(&room, tx, rx, Surface::Floor).unwrap();
        assert!((tp.x - 6.0).abs() < 1e-12);
        assert!((tp.y - 3.0).abs() < 1e-12);
        assert!(tp.z.abs() < 1e-12);
    }

    #[test]
    fn touch_point_exists_for_all_surfaces_in_interior() {
        let room = Room::office();
        let tx = Point3::new(5.0, 2.0, 1.4);
        let rx = Point3::new(7.0, 4.0, 1.6);
        for s in Surface::ALL {
            let tp = reflection_touch_point(&room, tx, rx, s);
            assert!(tp.is_some(), "no touch point for {s:?}");
            assert!(room.contains(tp.unwrap()));
        }
    }

    #[test]
    fn shadowing_factor_limits() {
        let a = Point3::new(0.0, 0.0, 1.4);
        let b = Point3::new(4.0, 0.0, 1.4);
        // Dead centre on the path: close to the floor value.
        let blocked = shadowing_factor(Point3::new(2.0, 0.0, 1.4), 0.25, a, b, LAMBDA);
        assert!(blocked <= 0.2, "{blocked}");
        // Far away: exactly 1.
        let clear = shadowing_factor(Point3::new(2.0, 4.0, 1.4), 0.25, a, b, LAMBDA);
        assert_eq!(clear, 1.0);
        // Monotone in clearance.
        let mut last = 0.0;
        for i in 0..20 {
            let y = i as f64 * 0.05;
            let f = shadowing_factor(Point3::new(2.0, y, 1.4), 0.25, a, b, LAMBDA);
            assert!(f >= last - 1e-12, "not monotone at y={y}");
            last = f;
        }
    }

    #[test]
    fn shadowing_depends_on_fresnel_radius() {
        // Same clearance is more harmful on a path with a larger Fresnel
        // zone (longer wavelength).
        let a = Point3::new(0.0, 0.0, 1.4);
        let b = Point3::new(4.0, 0.0, 1.4);
        let p = Point3::new(2.0, 0.35, 1.4);
        let short_wave = shadowing_factor(p, 0.25, a, b, 0.05);
        let long_wave = shadowing_factor(p, 0.25, a, b, 0.5);
        assert!(long_wave < short_wave);
    }

    #[test]
    fn smoothstep_endpoints() {
        assert_eq!(smoothstep(-1.0), 0.0);
        assert_eq!(smoothstep(0.0), 0.0);
        assert_eq!(smoothstep(1.0), 1.0);
        assert_eq!(smoothstep(2.0), 1.0);
        assert!((smoothstep(0.5) - 0.5).abs() < 1e-12);
    }
}
