//! Air absorption as a function of temperature and humidity.
//!
//! At 2.4 GHz, atmospheric absorption over room-scale distances is small
//! but not zero, and it is dominated by water vapour. What matters for the
//! reproduction is its *shape*: the saturation vapour pressure is a
//! strongly non-linear (exponential) function of temperature (Magnus
//! formula), so the absolute humidity — and hence the attenuation — mixes
//! temperature and relative humidity non-linearly. This is one of the two
//! channels (with [`crate::materials`]) through which the environment
//! imprints itself on CSI, enabling the paper's §V-D regression.
//!
//! The absorption magnitude is deliberately calibrated a factor above the
//! true physical value (documented in DESIGN.md) so that a 74-hour indoor
//! humidity swing produces a measurable, learnable CSI variation at 8-bit
//! quantisation — mimicking the empirical sensitivity reported by
//! WiHumidity \[19\].

/// Saturation water-vapour pressure in hPa at `temperature_c` (Magnus
/// formula, valid over roughly −45…60 °C).
///
/// # Example
///
/// ```
/// use occusense_channel::air::saturation_vapor_pressure_hpa;
/// let p20 = saturation_vapor_pressure_hpa(20.0);
/// assert!((p20 - 23.4).abs() < 0.5); // ~23.4 hPa at 20 °C
/// ```
pub fn saturation_vapor_pressure_hpa(temperature_c: f64) -> f64 {
    6.1094 * ((17.625 * temperature_c) / (temperature_c + 243.04)).exp()
}

/// Absolute humidity in g/m³ from temperature and relative humidity, via
/// the ideal-gas law for water vapour.
pub fn absolute_humidity_g_m3(temperature_c: f64, relative_humidity_pct: f64) -> f64 {
    let p_sat = saturation_vapor_pressure_hpa(temperature_c);
    let p_vap = p_sat * (relative_humidity_pct / 100.0).clamp(0.0, 1.0);
    // ρ = p·M_w / (R·T); with p in hPa this collapses to 216.7 · p / T[K].
    216.7 * p_vap / (temperature_c + 273.15)
}

/// Amplitude attenuation coefficient of air in nepers per metre at 2.4 GHz
/// for the given environment.
///
/// Modelled as a dry-air floor plus a super-linear vapour term:
/// `α = α_dry + k·ρ_v^1.3` with `ρ_v` the absolute humidity in g/m³.
pub fn attenuation_np_per_m(temperature_c: f64, relative_humidity_pct: f64) -> f64 {
    const ALPHA_DRY: f64 = 2.0e-4;
    const K_VAPOR: f64 = 4.0e-4;
    let rho = absolute_humidity_g_m3(temperature_c, relative_humidity_pct);
    ALPHA_DRY + K_VAPOR * rho.powf(1.3)
}

/// Amplitude factor `e^{-α d}` over a path of `distance_m` metres.
pub fn path_gain(temperature_c: f64, relative_humidity_pct: f64, distance_m: f64) -> f64 {
    (-attenuation_np_per_m(temperature_c, relative_humidity_pct) * distance_m).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnus_reference_points() {
        // Well-known saturation pressures.
        assert!((saturation_vapor_pressure_hpa(0.0) - 6.11).abs() < 0.1);
        assert!((saturation_vapor_pressure_hpa(20.0) - 23.4).abs() < 0.5);
        assert!((saturation_vapor_pressure_hpa(30.0) - 42.4).abs() < 1.0);
    }

    #[test]
    fn absolute_humidity_reference_point() {
        // ~17.3 g/m³ at 20 °C, 100 % RH.
        let ah = absolute_humidity_g_m3(20.0, 100.0);
        assert!((ah - 17.3).abs() < 0.5, "got {ah}");
        // Halving RH halves absolute humidity.
        assert!((absolute_humidity_g_m3(20.0, 50.0) - ah / 2.0).abs() < 1e-9);
    }

    #[test]
    fn absolute_humidity_is_nonlinear_in_temperature() {
        // Same RH, rising temperature: each 10 °C step adds MORE vapour.
        let a10 = absolute_humidity_g_m3(10.0, 50.0);
        let a20 = absolute_humidity_g_m3(20.0, 50.0);
        let a30 = absolute_humidity_g_m3(30.0, 50.0);
        assert!(a30 - a20 > a20 - a10);
    }

    #[test]
    fn attenuation_monotone_in_both_variables() {
        assert!(attenuation_np_per_m(20.0, 60.0) > attenuation_np_per_m(20.0, 30.0));
        assert!(attenuation_np_per_m(30.0, 40.0) > attenuation_np_per_m(15.0, 40.0));
    }

    #[test]
    fn path_gain_in_unit_interval_and_decaying() {
        let g2 = path_gain(22.0, 40.0, 2.0);
        let g10 = path_gain(22.0, 40.0, 10.0);
        assert!(g2 > 0.0 && g2 < 1.0);
        assert!(g10 < g2);
        // Multiplicativity over concatenated paths.
        let g5 = path_gain(22.0, 40.0, 5.0);
        assert!((g10 - g5 * g5).abs() < 1e-12);
    }

    #[test]
    fn room_scale_attenuation_is_modest() {
        // Even at a humid 30 °C / 70 %, a 15 m path keeps > 70 % amplitude:
        // the effect must perturb, not destroy, the channel.
        let g = path_gain(30.0, 70.0, 15.0);
        assert!(g > 0.7, "gain {g}");
        // But the empty-vs-humid difference is resolvable at 8-bit scale.
        let dry = path_gain(19.0, 20.0, 10.0);
        let wet = path_gain(25.0, 45.0, 10.0);
        assert!(
            (dry - wet).abs() > 1.0 / 512.0,
            "delta {}",
            (dry - wet).abs()
        );
    }
}
