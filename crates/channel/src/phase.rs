//! CSI phase: hardware impairments and sanitisation.
//!
//! The paper uses "only the information contained in the CSI amplitude"
//! (§II-A). The reason amplitude-only is the pragmatic choice on
//! commodity hardware is that raw CSI *phase* is corrupted per frame by
//! carrier-frequency offset (CFO — a common random rotation) and
//! sampling-frequency offset (SFO — a random linear ramp across
//! subcarriers), neither of which carries information about the room.
//! This module models both impairments and implements the standard
//! sanitisation (subtracting the best-fit linear phase across
//! subcarriers), enabling the `repro_ablation_phase` experiment that
//! quantifies what sanitised phase adds over amplitude.

use crate::complex::Complex;
use rand::Rng;

/// Per-frame phase impairments of a commodity WiFi receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseImpairments {
    /// Whether the common CFO rotation is uniformly random per frame
    /// (true for unsynchronised sniffers like the Nexmon setup).
    pub random_cfo: bool,
    /// Standard deviation of the SFO-induced linear phase ramp, radians
    /// per subcarrier step.
    pub sfo_slope_std_rad: f64,
    /// Per-bin additive phase noise, radians (std).
    pub phase_noise_std_rad: f64,
}

impl PhaseImpairments {
    /// Typical commodity-hardware impairments: fully random CFO, ~0.05
    /// rad/subcarrier SFO jitter, 0.02 rad phase noise.
    pub fn commodity() -> Self {
        Self {
            random_cfo: true,
            sfo_slope_std_rad: 0.05,
            phase_noise_std_rad: 0.02,
        }
    }

    /// A perfectly synchronised (laboratory) receiver: no impairments.
    pub fn ideal() -> Self {
        Self {
            random_cfo: false,
            sfo_slope_std_rad: 0.0,
            phase_noise_std_rad: 0.0,
        }
    }

    /// Applies one frame's impairments in place.
    pub fn apply(&self, response: &mut [Complex], rng: &mut impl Rng) {
        let cfo = if self.random_cfo {
            rng.gen_range(0.0..std::f64::consts::TAU)
        } else {
            0.0
        };
        let slope = if self.sfo_slope_std_rad > 0.0 {
            self.sfo_slope_std_rad * gaussian(rng)
        } else {
            0.0
        };
        for (k, h) in response.iter_mut().enumerate() {
            let mut theta = cfo + slope * k as f64;
            if self.phase_noise_std_rad > 0.0 {
                theta += self.phase_noise_std_rad * gaussian(rng);
            }
            *h = *h * Complex::from_angle(theta);
        }
    }
}

impl Default for PhaseImpairments {
    fn default() -> Self {
        Self::commodity()
    }
}

/// Unwraps a phase sequence so consecutive samples never jump by more
/// than π (adding ±2π as needed).
pub fn unwrap(phases: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phases.len());
    let mut offset = 0.0;
    for (i, &p) in phases.iter().enumerate() {
        if i > 0 {
            let prev = out[i - 1];
            let mut candidate = p + offset;
            while candidate - prev > std::f64::consts::PI {
                offset -= std::f64::consts::TAU;
                candidate = p + offset;
            }
            while candidate - prev < -std::f64::consts::PI {
                offset += std::f64::consts::TAU;
                candidate = p + offset;
            }
            out.push(candidate);
        } else {
            out.push(p);
        }
    }
    out
}

/// Standard CSI phase sanitisation: unwrap across subcarriers, then
/// subtract the least-squares linear fit (which absorbs the CFO offset
/// and the SFO slope), leaving only the multipath-induced curvature.
///
/// # Example
///
/// ```
/// use occusense_channel::phase::{sanitize, PhaseImpairments};
/// use occusense_channel::Complex;
/// use rand::SeedableRng;
///
/// // A frame with pure linear phase sanitises to ~zero.
/// let frame: Vec<Complex> = (0..64)
///     .map(|k| Complex::from_polar(1.0, 0.7 + 0.05 * k as f64))
///     .collect();
/// let clean = sanitize(&frame);
/// assert!(clean.iter().all(|p| p.abs() < 1e-9));
/// # let _ = PhaseImpairments::commodity();
/// # let _ = rand::rngs::StdRng::seed_from_u64(0);
/// ```
pub fn sanitize(response: &[Complex]) -> Vec<f64> {
    let raw: Vec<f64> = response.iter().map(|h| h.arg()).collect();
    let unwrapped = unwrap(&raw);
    // Least-squares line over k = 0..n-1.
    let n = unwrapped.len() as f64;
    if unwrapped.len() < 2 {
        return vec![0.0; unwrapped.len()];
    }
    let mean_k = (n - 1.0) / 2.0;
    let mean_p = unwrapped.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (k, &p) in unwrapped.iter().enumerate() {
        let dk = k as f64 - mean_k;
        num += dk * (p - mean_p);
        den += dk * dk;
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    unwrapped
        .iter()
        .enumerate()
        .map(|(k, &p)| p - mean_p - slope * (k as f64 - mean_k))
        .collect()
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point3;
    use crate::scene::{Body, Scene};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unwrap_repairs_wraparound() {
        let wrapped = [3.0, -3.0, 3.0]; // jumps of ~6 rad: really +0.28 steps
        let u = unwrap(&wrapped);
        for w in u.windows(2) {
            assert!((w[1] - w[0]).abs() <= std::f64::consts::PI + 1e-12);
        }
        assert_eq!(u[0], 3.0);
    }

    #[test]
    fn unwrap_identity_for_smooth_sequences() {
        let smooth: Vec<f64> = (0..20).map(|k| k as f64 * 0.1).collect();
        assert_eq!(unwrap(&smooth), smooth);
    }

    #[test]
    fn sanitize_removes_cfo_and_sfo_exactly() {
        // Build a frame with known multipath curvature + impairments.
        let curvature = |k: usize| 0.2 * ((k as f64) * 0.3).sin();
        let clean_frame: Vec<Complex> = (0..64)
            .map(|k| Complex::from_polar(1.0, curvature(k)))
            .collect();
        let reference = sanitize(&clean_frame);

        let mut impaired = clean_frame.clone();
        let imp = PhaseImpairments {
            random_cfo: true,
            sfo_slope_std_rad: 0.05,
            phase_noise_std_rad: 0.0,
        };
        imp.apply(&mut impaired, &mut StdRng::seed_from_u64(5));
        let recovered = sanitize(&impaired);
        for (a, b) in reference.iter().zip(&recovered) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn raw_phase_is_useless_sanitized_phase_is_stable() {
        // The justification for the paper's amplitude-only choice: two
        // frames of the SAME room have uncorrelated raw phases but nearly
        // identical sanitised phases.
        let mut scene = Scene::office_default();
        scene
            .bodies
            .push(Body::standing(Point3::new(6.0, 3.0, 0.0)));
        let response = scene.frequency_response();
        let imp = PhaseImpairments::commodity();

        let mut frame_a = response.clone();
        let mut frame_b = response.clone();
        imp.apply(&mut frame_a, &mut StdRng::seed_from_u64(1));
        imp.apply(&mut frame_b, &mut StdRng::seed_from_u64(2));

        let raw_a: Vec<f64> = frame_a.iter().map(|h| h.arg()).collect();
        let raw_b: Vec<f64> = frame_b.iter().map(|h| h.arg()).collect();
        let raw_delta: f64 = raw_a
            .iter()
            .zip(&raw_b)
            .map(|(a, b)| (a - b).abs().min(std::f64::consts::TAU - (a - b).abs()))
            .sum::<f64>()
            / 64.0;
        assert!(
            raw_delta > 0.5,
            "raw phase unexpectedly stable: {raw_delta}"
        );

        let san_a = sanitize(&frame_a);
        let san_b = sanitize(&frame_b);
        let san_delta: f64 = san_a
            .iter()
            .zip(&san_b)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 64.0;
        assert!(san_delta < 0.1, "sanitised phase unstable: {san_delta}");
    }

    #[test]
    fn impairments_do_not_touch_amplitudes() {
        let frame: Vec<Complex> = (0..16)
            .map(|k| Complex::from_polar(0.1 + 0.01 * k as f64, 0.3 * k as f64))
            .collect();
        let mut impaired = frame.clone();
        PhaseImpairments::commodity().apply(&mut impaired, &mut StdRng::seed_from_u64(3));
        for (a, b) in frame.iter().zip(&impaired) {
            assert!((a.abs() - b.abs()).abs() < 1e-12);
        }
    }

    #[test]
    fn ideal_impairments_are_identity() {
        let frame: Vec<Complex> = (0..8).map(|k| Complex::from_polar(1.0, k as f64)).collect();
        let mut copy = frame.clone();
        PhaseImpairments::ideal().apply(&mut copy, &mut StdRng::seed_from_u64(4));
        assert_eq!(copy, frame);
    }

    #[test]
    fn sanitize_degenerate_inputs() {
        assert!(sanitize(&[]).is_empty());
        assert_eq!(sanitize(&[Complex::ONE]), vec![0.0]);
    }
}
