//! Surface materials and their environment-dependent reflection behaviour.
//!
//! The paper's office has plasterboard internal walls, reinforced-concrete
//! external walls, glass windows and assorted furniture. Reflection
//! coefficients of building materials depend on their water content (and
//! hence on relative humidity and temperature) — hygroscopic plasterboard
//! in particular takes up moisture. The dependence is *non-linear*, which
//! is exactly the property §V-D of the paper exploits: a non-linear model
//! can recover temperature and humidity from CSI where a linear model
//! cannot. The coefficients here are phenomenological (calibrated for
//! plausible 2.4 GHz magnitudes), not measured.

/// A reflecting material.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Short human-readable name.
    pub name: &'static str,
    /// Baseline amplitude reflection coefficient at 20 °C / 35 % RH.
    pub base_reflectivity: f64,
    /// Sensitivity of reflectivity to absolute moisture uptake
    /// (dimensionless, multiplies a non-linear moisture term).
    pub moisture_gain: f64,
    /// Sensitivity to temperature deviation from 20 °C (per °C, small).
    pub temperature_gain: f64,
}

impl Material {
    /// Plasterboard (internal walls, 12 cm): hygroscopic, moisture-sensitive.
    pub const PLASTERBOARD: Material = Material {
        name: "plasterboard",
        base_reflectivity: 0.35,
        moisture_gain: 0.90,
        temperature_gain: 0.015,
    };

    /// Reinforced concrete (external walls, 55 cm): strong reflector,
    /// mildly moisture-sensitive.
    pub const CONCRETE: Material = Material {
        name: "concrete",
        base_reflectivity: 0.62,
        moisture_gain: 0.35,
        temperature_gain: 0.006,
    };

    /// Window glass: strong specular reflector, essentially inert.
    pub const GLASS: Material = Material {
        name: "glass",
        base_reflectivity: 0.55,
        moisture_gain: 0.04,
        temperature_gain: 0.002,
    };

    /// Generic wooden/laminate furniture surface.
    pub const FURNITURE: Material = Material {
        name: "furniture",
        base_reflectivity: 0.25,
        moisture_gain: 0.50,
        temperature_gain: 0.010,
    };

    /// Acoustic ceiling tiles.
    pub const CEILING_TILE: Material = Material {
        name: "ceiling tile",
        base_reflectivity: 0.30,
        moisture_gain: 0.65,
        temperature_gain: 0.008,
    };

    /// Amplitude reflection coefficient at the given environment.
    ///
    /// The moisture term uses the *relative* moisture uptake
    /// `m = RH/100`, entering quadratically (hygroscopic uptake curves are
    /// convex), cross-coupled with temperature:
    ///
    /// ```text
    /// Γ(T, RH) = Γ₀ · (1 + g_m · (m² − m₀²) + g_T · (T − 20) · m)
    /// ```
    ///
    /// clamped to `[0.02, 0.95]`. With `m₀ = 0.35` the baseline environment
    /// reproduces `Γ₀` exactly.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_channel::materials::Material;
    /// let dry = Material::PLASTERBOARD.reflectivity(20.0, 20.0);
    /// let humid = Material::PLASTERBOARD.reflectivity(20.0, 60.0);
    /// assert!(humid > dry);
    /// ```
    pub fn reflectivity(&self, temperature_c: f64, humidity_pct: f64) -> f64 {
        let m = (humidity_pct / 100.0).clamp(0.0, 1.0);
        let m0 = 0.35;
        let factor = 1.0
            + self.moisture_gain * (m * m - m0 * m0)
            + self.temperature_gain * (temperature_c - 20.0) * m;
        (self.base_reflectivity * factor).clamp(0.02, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_environment_reproduces_base_reflectivity() {
        for m in [
            Material::PLASTERBOARD,
            Material::CONCRETE,
            Material::GLASS,
            Material::FURNITURE,
            Material::CEILING_TILE,
        ] {
            let r = m.reflectivity(20.0, 35.0);
            assert!(
                (r - m.base_reflectivity).abs() < 1e-12,
                "{}: {r} vs {}",
                m.name,
                m.base_reflectivity
            );
        }
    }

    #[test]
    fn humidity_increases_reflectivity_nonlinearly() {
        let m = Material::PLASTERBOARD;
        let r20 = m.reflectivity(20.0, 20.0);
        let r40 = m.reflectivity(20.0, 40.0);
        let r60 = m.reflectivity(20.0, 60.0);
        assert!(r20 < r40 && r40 < r60);
        // Convexity: the second 20-point step changes reflectivity more.
        assert!((r60 - r40) > (r40 - r20));
    }

    #[test]
    fn temperature_couples_through_moisture() {
        let m = Material::PLASTERBOARD;
        // At zero humidity the temperature term vanishes.
        let cold_dry = m.reflectivity(10.0, 0.0);
        let hot_dry = m.reflectivity(35.0, 0.0);
        assert!((cold_dry - hot_dry).abs() < 1e-12);
        // At high humidity it does not.
        let cold_wet = m.reflectivity(10.0, 60.0);
        let hot_wet = m.reflectivity(35.0, 60.0);
        assert!(hot_wet > cold_wet);
    }

    #[test]
    fn reflectivity_is_clamped() {
        let extreme = Material {
            name: "test",
            base_reflectivity: 0.9,
            moisture_gain: 50.0,
            temperature_gain: 0.0,
        };
        assert!(extreme.reflectivity(20.0, 100.0) <= 0.95);
        let anti = Material {
            name: "test",
            base_reflectivity: 0.9,
            moisture_gain: -50.0,
            temperature_gain: 0.0,
        };
        assert!(anti.reflectivity(20.0, 100.0) >= 0.02);
    }

    #[test]
    fn glass_is_least_sensitive() {
        let spread = |m: Material| m.reflectivity(25.0, 60.0) - m.reflectivity(15.0, 20.0);
        assert!(spread(Material::GLASS).abs() < spread(Material::PLASTERBOARD).abs());
    }
}
