//! Minimal complex-number type for channel responses.
//!
//! The workspace avoids external numeric crates; this is the handful of
//! operations a frequency-domain ray model needs.

use std::ops::{Add, AddAssign, Mul, Sub};

/// A complex number `re + j·im`.
///
/// # Example
///
/// ```
/// use occusense_channel::Complex;
/// let j = Complex::new(0.0, 1.0);
/// assert!((j * j - Complex::new(-1.0, 0.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + j·im`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates `e^{jθ} = cos θ + j sin θ`.
    pub fn from_angle(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self {
            re: r * c,
            im: r * s,
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`, cheaper than [`abs`](Self::abs).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;

    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;

    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;

    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;

    fn mul(self, k: f64) -> Complex {
        self.scale(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        approx(z.abs(), 2.0);
        approx(z.arg(), 0.7);
    }

    #[test]
    fn from_angle_is_unit_magnitude() {
        for k in 0..16 {
            let z = Complex::from_angle(k as f64 * 0.5);
            approx(z.abs(), 1.0);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a + Complex::ZERO, a);
        // |ab| = |a||b|
        approx((a * b).abs(), a.abs() * b.abs());
        // conj multiplication gives |a|^2.
        approx((a * a.conj()).re, a.norm_sqr());
        approx((a * a.conj()).im, 0.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut acc = Complex::ZERO;
        for _ in 0..4 {
            acc += Complex::new(0.25, -0.5);
        }
        approx(acc.re, 1.0);
        approx(acc.im, -2.0);
    }

    #[test]
    fn scale_matches_mul_f64() {
        let a = Complex::new(3.0, -4.0);
        assert_eq!(a.scale(2.0), a * 2.0);
        approx((a * 2.0).abs(), 10.0);
    }
}
