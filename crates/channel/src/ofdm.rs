//! OFDM subcarrier grid of the sensed WiFi channel.
//!
//! The paper's setup sniffs a 20 MHz channel in the 2.4 GHz band, yielding
//! a CSI vector of dimension `d_H = 3.2 · bandwidth = 64` (§II-A). Nexmon
//! reports all 64 FFT bins; in a real 802.11 20 MHz symbol only 52 bins
//! carry energy (48 data + 4 pilots), the DC bin and the edge guard bins
//! are nulled. We model the nulls as strongly attenuated ("leaky") rather
//! than exactly zero, matching what a sniffer observes after filtering.

/// Speed of light, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Configuration of the sensed OFDM channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Carrier centre frequency in Hz.
    pub center_frequency_hz: f64,
    /// Channel bandwidth in Hz.
    pub bandwidth_hz: f64,
    /// Number of FFT bins / subcarriers (d_H = 3.2 · bandwidth).
    pub n_subcarriers: usize,
    /// Amplitude leakage factor applied to null (guard/DC) subcarriers.
    pub null_leakage: f64,
}

impl ChannelConfig {
    /// The paper's configuration: 2.4 GHz band (channel 6, 2.437 GHz),
    /// 20 MHz bandwidth, 64 subcarriers.
    pub fn wifi_2g4_20mhz() -> Self {
        Self {
            center_frequency_hz: 2.437e9,
            bandwidth_hz: 20.0e6,
            n_subcarriers: 64,
            null_leakage: 0.05,
        }
    }

    /// Subcarrier spacing in Hz (`bandwidth / n_subcarriers`, 312.5 kHz for
    /// the default config).
    pub fn subcarrier_spacing_hz(&self) -> f64 {
        self.bandwidth_hz / self.n_subcarriers as f64
    }

    /// Absolute RF frequency of subcarrier index `k ∈ 0..n_subcarriers`.
    ///
    /// Index `k` maps to FFT bin `k - n/2` relative to the carrier, so the
    /// grid spans `[-B/2, +B/2)` around the centre frequency.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n_subcarriers`.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_channel::ofdm::ChannelConfig;
    /// let cfg = ChannelConfig::wifi_2g4_20mhz();
    /// assert_eq!(cfg.subcarrier_frequency_hz(32), 2.437e9); // DC bin
    /// ```
    pub fn subcarrier_frequency_hz(&self, k: usize) -> f64 {
        assert!(
            k < self.n_subcarriers,
            "subcarrier {k} out of range ({})",
            self.n_subcarriers
        );
        let offset = k as f64 - self.n_subcarriers as f64 / 2.0;
        self.center_frequency_hz + offset * self.subcarrier_spacing_hz()
    }

    /// Wavelength of subcarrier `k` in metres.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n_subcarriers`.
    pub fn wavelength_m(&self, k: usize) -> f64 {
        SPEED_OF_LIGHT / self.subcarrier_frequency_hz(k)
    }

    /// Whether subcarrier `k` is a null bin (DC or guard band) in a
    /// standard 802.11 20 MHz symbol. With 64 bins indexed 0..63 around a
    /// centre at 32, the used bins are 32±1..32±26.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n_subcarriers`.
    pub fn is_null_subcarrier(&self, k: usize) -> bool {
        assert!(k < self.n_subcarriers, "subcarrier {k} out of range");
        let half = self.n_subcarriers / 2;
        let rel = k as i64 - half as i64;
        rel == 0 || rel.unsigned_abs() as usize > (self.n_subcarriers * 26) / 64
    }

    /// Amplitude mask for subcarrier `k`: `1.0` for used bins,
    /// [`null_leakage`](Self::null_leakage) for null bins.
    pub fn subcarrier_mask(&self, k: usize) -> f64 {
        if self.is_null_subcarrier(k) {
            self.null_leakage
        } else {
            1.0
        }
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self::wifi_2g4_20mhz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_matches_80211() {
        let cfg = ChannelConfig::wifi_2g4_20mhz();
        assert_eq!(cfg.n_subcarriers, 64);
        assert_eq!(cfg.subcarrier_spacing_hz(), 312_500.0);
        // Edges of the grid.
        assert_eq!(cfg.subcarrier_frequency_hz(0), 2.437e9 - 10.0e6);
        assert_eq!(
            cfg.subcarrier_frequency_hz(63),
            2.437e9 + 10.0e6 - 312_500.0
        );
    }

    #[test]
    fn wavelength_is_about_12cm() {
        let cfg = ChannelConfig::default();
        let lambda = cfg.wavelength_m(32);
        assert!((lambda - 0.123).abs() < 0.001, "{lambda}");
        // Higher-frequency subcarriers have shorter wavelengths.
        assert!(cfg.wavelength_m(63) < cfg.wavelength_m(0));
    }

    #[test]
    fn null_subcarriers_match_80211_layout() {
        let cfg = ChannelConfig::default();
        // DC bin is null.
        assert!(cfg.is_null_subcarrier(32));
        // 32±1..32±26 are used.
        assert!(!cfg.is_null_subcarrier(33));
        assert!(!cfg.is_null_subcarrier(31));
        assert!(!cfg.is_null_subcarrier(6));
        assert!(!cfg.is_null_subcarrier(58));
        // Guard bins are null.
        assert!(cfg.is_null_subcarrier(0));
        assert!(cfg.is_null_subcarrier(5));
        assert!(cfg.is_null_subcarrier(59));
        assert!(cfg.is_null_subcarrier(63));
        // Exactly 52 used bins.
        let used = (0..64).filter(|&k| !cfg.is_null_subcarrier(k)).count();
        assert_eq!(used, 52);
    }

    #[test]
    fn mask_values() {
        let cfg = ChannelConfig::default();
        assert_eq!(cfg.subcarrier_mask(33), 1.0);
        assert_eq!(cfg.subcarrier_mask(32), cfg.null_leakage);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn frequency_index_bounds_checked() {
        let cfg = ChannelConfig::default();
        let _ = cfg.subcarrier_frequency_hz(64);
    }
}
