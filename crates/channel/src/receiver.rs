//! Receiver impairments: AWGN, quantised AGC and amplitude quantisation.
//!
//! A Nexmon-patched Raspberry Pi does not hand back the pristine channel:
//! thermal noise perturbs each FFT bin, the radio's automatic gain control
//! rescales each frame by a gain that moves in coarse steps, and the
//! reported CSI values are fixed-point. [`Receiver::measure`] applies all
//! three to a noise-free frequency response.

use crate::complex::Complex;
use rand::Rng;

/// Receiver impairment model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Receiver {
    /// Standard deviation of the complex AWGN added per subcarrier
    /// (per real/imaginary component).
    pub noise_std: f64,
    /// AGC target: the strongest subcarrier amplitude is scaled towards
    /// this value. Set to `None` to disable AGC.
    pub agc_target: Option<f64>,
    /// AGC gain quantisation step in dB (real AGCs move in coarse steps,
    /// which leaks absolute signal level into the reported CSI).
    pub agc_step_db: f64,
    /// Number of quantisation levels for the reported amplitude over
    /// `[0, full_scale]`; `0` disables quantisation.
    pub quantization_levels: u32,
    /// Full-scale amplitude of the fixed-point CSI report.
    pub full_scale: f64,
}

impl Receiver {
    /// The default Nexmon-like receiver: σ = 0.004 noise, AGC towards 0.5
    /// in 1 dB steps, 10-bit amplitude quantisation with full scale 1.0.
    pub fn new() -> Self {
        Self {
            noise_std: 0.004,
            agc_target: Some(0.5),
            agc_step_db: 1.0,
            quantization_levels: 1024,
            full_scale: 1.0,
        }
    }

    /// An idealised receiver: no noise, no AGC, no quantisation. Useful in
    /// tests that need to see the raw channel.
    pub fn ideal() -> Self {
        Self {
            noise_std: 0.0,
            agc_target: None,
            agc_step_db: 1.0,
            quantization_levels: 0,
            full_scale: 1.0,
        }
    }

    /// Measures a CSI amplitude vector from a complex frequency response.
    ///
    /// Applies, in order: complex AWGN per bin, quantised-step AGC and
    /// fixed-point amplitude quantisation.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_channel::receiver::Receiver;
    /// use occusense_channel::Complex;
    /// use rand::SeedableRng;
    ///
    /// let h = vec![Complex::new(0.3, 0.0); 64];
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// let csi = Receiver::new().measure(&h, &mut rng);
    /// assert_eq!(csi.len(), 64);
    /// assert!(csi.iter().all(|&a| a >= 0.0));
    /// ```
    pub fn measure(&self, response: &[Complex], rng: &mut impl Rng) -> Vec<f64> {
        // 1. AWGN on I and Q.
        let noisy: Vec<Complex> = response
            .iter()
            .map(|&h| {
                if self.noise_std > 0.0 {
                    h + Complex::new(
                        self.noise_std * gaussian(rng),
                        self.noise_std * gaussian(rng),
                    )
                } else {
                    h
                }
            })
            .collect();

        // 2. Amplitudes.
        let mut amps: Vec<f64> = noisy.iter().map(|h| h.abs()).collect();

        // 3. Quantised AGC.
        if let Some(target) = self.agc_target {
            let peak = amps.iter().copied().fold(0.0f64, f64::max);
            if peak > 0.0 {
                let gain_db = 20.0 * (target / peak).log10();
                let quantised_db = (gain_db / self.agc_step_db).round() * self.agc_step_db;
                let gain = 10.0f64.powf(quantised_db / 20.0);
                for a in &mut amps {
                    *a *= gain;
                }
            }
        }

        // 4. Fixed-point quantisation.
        if self.quantization_levels > 0 {
            let step = self.full_scale / self.quantization_levels as f64;
            for a in &mut amps {
                *a = ((*a / step).round() * step).clamp(0.0, self.full_scale);
            }
        }

        amps
    }
}

impl Default for Receiver {
    fn default() -> Self {
        Self::new()
    }
}

/// One standard-normal draw via Box–Muller (local to avoid a dependency on
/// the tensor crate from the channel substrate).
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flat_response(a: f64, n: usize) -> Vec<Complex> {
        vec![Complex::new(a, 0.0); n]
    }

    #[test]
    fn ideal_receiver_reports_exact_amplitudes() {
        let h = vec![Complex::new(0.3, 0.4), Complex::new(0.0, 0.25)];
        let mut rng = StdRng::seed_from_u64(0);
        let csi = Receiver::ideal().measure(&h, &mut rng);
        assert!((csi[0] - 0.5).abs() < 1e-12);
        assert!((csi[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let h = flat_response(0.3, 64);
        let mut rng = StdRng::seed_from_u64(1);
        let rx = Receiver {
            agc_target: None,
            quantization_levels: 0,
            ..Receiver::new()
        };
        let csi = rx.measure(&h, &mut rng);
        let mean = csi.iter().sum::<f64>() / csi.len() as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
        // And it is actually noisy.
        let var = csi.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / csi.len() as f64;
        assert!(var > 0.0);
    }

    #[test]
    fn agc_scales_peak_towards_target() {
        let h = flat_response(0.05, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let rx = Receiver {
            noise_std: 0.0,
            agc_target: Some(0.5),
            agc_step_db: 1.0,
            quantization_levels: 0,
            full_scale: 1.0,
        };
        let csi = rx.measure(&h, &mut rng);
        let peak = csi.iter().copied().fold(0.0f64, f64::max);
        // Within one AGC step (1 dB ≈ 12 %) of the target.
        assert!((peak / 0.5).log10().abs() * 20.0 <= 0.51, "peak {peak}");
    }

    #[test]
    fn agc_step_quantisation_leaks_level() {
        // Two inputs differing by less than one AGC step map to different
        // outputs (the gain snaps, the residual differs).
        let mut rng = StdRng::seed_from_u64(3);
        let rx = Receiver {
            noise_std: 0.0,
            agc_target: Some(0.5),
            agc_step_db: 2.0,
            quantization_levels: 0,
            full_scale: 1.0,
        };
        let a = rx.measure(&flat_response(0.100, 4), &mut rng);
        let b = rx.measure(&flat_response(0.104, 4), &mut rng);
        assert!((a[0] - b[0]).abs() > 1e-6, "AGC hides all level info");
    }

    #[test]
    fn quantisation_snaps_to_grid() {
        let mut rng = StdRng::seed_from_u64(4);
        let rx = Receiver {
            noise_std: 0.0,
            agc_target: None,
            agc_step_db: 1.0,
            quantization_levels: 100,
            full_scale: 1.0,
        };
        let csi = rx.measure(&[Complex::new(0.123456, 0.0)], &mut rng);
        assert!((csi[0] - 0.12).abs() < 1e-12, "{}", csi[0]);
    }

    #[test]
    fn quantisation_clamps_to_full_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let rx = Receiver {
            noise_std: 0.0,
            agc_target: None,
            agc_step_db: 1.0,
            quantization_levels: 256,
            full_scale: 1.0,
        };
        let csi = rx.measure(&[Complex::new(7.0, 0.0)], &mut rng);
        assert_eq!(csi[0], 1.0);
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let h = flat_response(0.2, 64);
        let rx = Receiver::new();
        let a = rx.measure(&h, &mut StdRng::seed_from_u64(9));
        let b = rx.measure(&h, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = rx.measure(&h, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn zero_response_stays_zero_without_noise() {
        let mut rng = StdRng::seed_from_u64(6);
        let rx = Receiver {
            noise_std: 0.0,
            ..Receiver::new()
        };
        let csi = rx.measure(&flat_response(0.0, 4), &mut rng);
        assert!(csi.iter().all(|&a| a == 0.0));
    }
}
