//! A complete channel snapshot and its frequency response.
//!
//! [`Scene`] bundles everything the ray model needs for one instant: room,
//! radio positions, furniture scatterers, human bodies and the environment
//! state. [`Scene::frequency_response`] evaluates the 64-bin complex CSI.

use crate::air;
use crate::complex::Complex;
use crate::geometry::{Point3, Room, Surface};
use crate::materials::Material;
use crate::multipath::{reflection_touch_point, shadowing_factor, Path};
use crate::ofdm::{ChannelConfig, SPEED_OF_LIGHT};

/// A static scattering object (furniture: desks, cabinets, monitors…).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scatterer {
    /// Position of the scattering centre.
    pub position: Point3,
    /// Bistatic scattering amplitude (dimensionless, ~0.05–0.3).
    pub sigma: f64,
    /// Surface material (its reflectivity modulates `sigma` with the
    /// environment).
    pub material: Material,
}

impl Scatterer {
    /// A desk-sized furniture scatterer at `position`.
    pub fn furniture(position: Point3) -> Self {
        Self {
            position,
            sigma: 0.12,
            material: Material::FURNITURE,
        }
    }

    /// Effective scattering amplitude at the given environment.
    pub fn effective_sigma(&self, temperature_c: f64, humidity_pct: f64) -> f64 {
        // Scale sigma by the material reflectivity relative to baseline.
        self.sigma * self.material.reflectivity(temperature_c, humidity_pct)
            / self.material.base_reflectivity
    }
}

/// A human body: a vertical cylinder that both scatters and shadows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Torso centre position.
    pub position: Point3,
    /// Effective cylinder radius in metres.
    pub radius: f64,
    /// Bistatic scattering amplitude of the body (~0.2–0.5; the human body
    /// is a strong scatterer at 2.4 GHz due to its water content).
    pub sigma: f64,
}

impl Body {
    /// A standing adult: torso centre at 1.3 m above the given floor
    /// position (x, y taken from `at`, z ignored).
    pub fn standing(at: Point3) -> Self {
        Self {
            position: Point3::new(at.x, at.y, 1.3),
            radius: 0.22,
            sigma: 0.35,
        }
    }

    /// A seated adult: torso centre at 0.9 m.
    pub fn sitting(at: Point3) -> Self {
        Self {
            position: Point3::new(at.x, at.y, 0.9),
            radius: 0.26,
            sigma: 0.32,
        }
    }
}

/// An internal partition wall splitting the office into rooms: a
/// vertical plane at a fixed `x` spanning the full depth and height,
/// with a doorway gap in `y`. Rays crossing the plane outside the
/// doorway are attenuated by the wall's amplitude `transmission`; rays
/// through the doorway pass freely. This is the device-free multi-room
/// geometry of Shen et al.: the radios sit in one room, and occupants
/// in adjacent rooms reach them only through walls or doorways.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partition {
    /// Plane position along the room width, metres.
    pub x: f64,
    /// Doorway span `(y_lo, y_hi)` in metres — the gap in the wall.
    pub door_y: (f64, f64),
    /// Amplitude transmission coefficient of the wall itself
    /// (plasterboard at 2.4 GHz passes roughly a third of the field).
    pub transmission: f64,
}

impl Partition {
    /// A plasterboard office partition at `x` with a 1 m doorway next
    /// to the north wall (matching the corridor door at y ≈ 5.5).
    pub fn office(x: f64) -> Self {
        Self {
            x,
            door_y: (4.8, 5.8),
            transmission: 0.35,
        }
    }

    /// Amplitude factor applied to a straight propagation leg from `a`
    /// to `b`: `1.0` when the leg stays on one side of the plane or
    /// crosses through the doorway, `transmission` when it punches
    /// through the wall.
    pub fn leg_factor(&self, a: Point3, b: Point3) -> f64 {
        let da = a.x - self.x;
        let db = b.x - self.x;
        if da * db >= 0.0 {
            // Same side (or touching the plane): no crossing.
            return 1.0;
        }
        let t = da / (da - db);
        let y = a.y + t * (b.y - a.y);
        if y >= self.door_y.0 && y <= self.door_y.1 {
            1.0
        } else {
            self.transmission
        }
    }
}

/// The materials assigned to the six room surfaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceMaterials {
    /// Floor material.
    pub floor: Material,
    /// Ceiling material.
    pub ceiling: Material,
    /// Wall at y = 0.
    pub south: Material,
    /// Wall at y = depth.
    pub north: Material,
    /// Wall at x = 0.
    pub west: Material,
    /// Wall at x = width.
    pub east: Material,
}

impl SurfaceMaterials {
    /// The paper's office: plasterboard internal walls (south/north),
    /// reinforced-concrete external walls (west/east — the window wall is
    /// mixed glass/concrete, approximated as glass), concrete floor,
    /// tiled ceiling.
    pub fn office_default() -> Self {
        Self {
            floor: Material::CONCRETE,
            ceiling: Material::CEILING_TILE,
            south: Material::PLASTERBOARD,
            north: Material::PLASTERBOARD,
            west: Material::CONCRETE,
            east: Material::GLASS,
        }
    }

    /// Material of a given surface.
    pub fn of(&self, surface: Surface) -> Material {
        match surface {
            Surface::Floor => self.floor,
            Surface::Ceiling => self.ceiling,
            Surface::WallSouth => self.south,
            Surface::WallNorth => self.north,
            Surface::WallWest => self.west,
            Surface::WallEast => self.east,
        }
    }
}

/// Everything the channel model needs for one instant in time.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// OFDM grid configuration.
    pub config: ChannelConfig,
    /// Room geometry.
    pub room: Room,
    /// Surface materials.
    pub surfaces: SurfaceMaterials,
    /// Access-point (transmitter) antenna position.
    pub tx: Point3,
    /// Sniffer (receiver) antenna position.
    pub rx: Point3,
    /// Furniture scatterers (the layout the paper lets occupants change).
    pub scatterers: Vec<Scatterer>,
    /// Human bodies currently in the room.
    pub bodies: Vec<Body>,
    /// Air temperature, °C.
    pub temperature_c: f64,
    /// Relative humidity, %.
    pub humidity_pct: f64,
    /// Excess surface temperature of the south wall (where the radiator
    /// sits, next to the radios and the environment sensor), °C. The hot
    /// wall's reflectivity shifts with its own temperature, so the
    /// radiator duty cycle leaves a CSI signature.
    pub radiator_wall_boost_c: f64,
    /// Maximum image-method reflection order (1 = single bounce, the
    /// default; 2 adds the 30 double-bounce wall paths — a fidelity knob
    /// whose cost/benefit the `simulation_throughput` bench measures).
    pub max_reflection_order: u8,
    /// Internal partition walls (empty = the paper's single open
    /// office). Each propagation leg crossing a partition outside its
    /// doorway is attenuated by the wall transmission.
    pub partitions: Vec<Partition>,
}

impl Scene {
    /// The paper's office scene (Fig. 2): 12 × 6 × 3 m room, AP and
    /// receiver 2 m apart at 1.4 m height near the south wall where
    /// occupants cannot walk between them, a default furniture layout,
    /// no occupants, 21 °C / 40 % RH.
    pub fn office_default() -> Self {
        let room = Room::office();
        Self {
            config: ChannelConfig::wifi_2g4_20mhz(),
            room,
            surfaces: SurfaceMaterials::office_default(),
            tx: Point3::new(5.0, 0.35, 1.4),
            rx: Point3::new(7.0, 0.35, 1.4),
            scatterers: default_furniture_layout(),
            bodies: Vec::new(),
            temperature_c: 21.0,
            humidity_pct: 40.0,
            radiator_wall_boost_c: 0.0,
            max_reflection_order: 1,
            partitions: Vec::new(),
        }
    }

    /// The multi-room office: the default scene split into `n_rooms`
    /// equal-width rooms by plasterboard partitions, each with a
    /// doorway near the north wall. The radios stay at their paper
    /// positions (x = 5 and x = 7), so with three rooms both sit in the
    /// middle room — occupants elsewhere are seen only through walls
    /// and doorways, exactly the unconstrained multi-room setting.
    ///
    /// # Panics
    ///
    /// Panics if `n_rooms < 2` (use [`Scene::office_default`]).
    pub fn office_multiroom(n_rooms: usize) -> Self {
        assert!(n_rooms >= 2, "office_multiroom: need at least two rooms");
        let mut scene = Self::office_default();
        let room_w = scene.room.width / n_rooms as f64;
        scene.partitions = (1..n_rooms)
            .map(|i| Partition::office(i as f64 * room_w))
            .collect();
        scene
    }

    /// Index of the room containing width-coordinate `x` (0-based,
    /// west to east). With no partitions everything is room 0.
    pub fn room_of(&self, x: f64) -> usize {
        self.partitions.iter().filter(|p| x >= p.x).count()
    }

    /// Amplitude factor accumulated over every partition crossed by the
    /// straight leg `a → b`.
    fn partition_factor(&self, a: Point3, b: Point3) -> f64 {
        self.partitions.iter().map(|p| p.leg_factor(a, b)).product()
    }

    /// Enumerates the propagation paths of the current snapshot:
    /// line of sight, six first-order wall reflections, one path per
    /// furniture scatterer and one per body, with body shadowing applied
    /// to the LoS and wall-reflection paths.
    pub fn paths(&self) -> Vec<Path> {
        let lambda = self.config.wavelength_m(self.config.n_subcarriers / 2);
        let mut paths = Vec::with_capacity(7 + self.scatterers.len() + self.bodies.len());

        // Line of sight with shadowing from every body and attenuation
        // from any partition wall between the radios.
        let mut los_shadow = self.partition_factor(self.tx, self.rx);
        for b in &self.bodies {
            los_shadow *= shadowing_factor(b.position, b.radius, self.tx, self.rx, lambda);
        }
        paths.push(Path::line_of_sight(self.tx, self.rx, los_shadow));

        // First-order reflections off the six surfaces. The south wall
        // runs hotter than the bulk air when the radiator fires.
        for s in Surface::ALL {
            let surface_temperature = if s == Surface::WallSouth {
                self.temperature_c + self.radiator_wall_boost_c
            } else {
                self.temperature_c
            };
            let gamma = self
                .surfaces
                .of(s)
                .reflectivity(surface_temperature, self.humidity_pct);
            let mut shadow = 1.0;
            if let Some(tp) = reflection_touch_point(&self.room, self.tx, self.rx, s) {
                for b in &self.bodies {
                    shadow *= shadowing_factor(b.position, b.radius, self.tx, tp, lambda);
                    shadow *= shadowing_factor(b.position, b.radius, tp, self.rx, lambda);
                }
                shadow *= self.partition_factor(self.tx, tp);
                shadow *= self.partition_factor(tp, self.rx);
            }
            paths.push(Path::reflection(
                &self.room, self.tx, self.rx, s, gamma, shadow,
            ));
        }

        // Second-order (double-bounce) wall reflections: tx → s1 → s2 →
        // rx via the double image. The two phase flips cancel, so the
        // amplitude is positive; shadowing is neglected at this order
        // (the paths are already ≥ 2× longer and doubly attenuated).
        if self.max_reflection_order >= 2 {
            for s1 in Surface::ALL {
                let gamma1 = self
                    .surfaces
                    .of(s1)
                    .reflectivity(self.temperature_c, self.humidity_pct);
                let img1 = self.room.mirror(self.tx, s1);
                for s2 in Surface::ALL {
                    if s1 == s2 {
                        continue;
                    }
                    let gamma2 = self
                        .surfaces
                        .of(s2)
                        .reflectivity(self.temperature_c, self.humidity_pct);
                    let img2 = self.room.mirror(img1, s2);
                    let d = img2.distance(self.rx).max(1e-6);
                    paths.push(Path {
                        length_m: d,
                        amplitude: gamma1 * gamma2 * crate::multipath::GAIN_REF / d,
                    });
                }
            }
        }

        // Furniture scatter paths, with both legs (tx → object → rx)
        // attenuated by any partitions they cross.
        for sc in &self.scatterers {
            let sigma = sc.effective_sigma(self.temperature_c, self.humidity_pct);
            let mut p = Path::scatter(self.tx, self.rx, sc.position, sigma);
            p.amplitude *= self.partition_factor(self.tx, sc.position);
            p.amplitude *= self.partition_factor(sc.position, self.rx);
            paths.push(p);
        }

        // Body scatter paths. An occupant in an adjacent room reaches
        // the radios through two wall crossings (or the doorway), so
        // their signature survives but strongly attenuated — the
        // through-wall sensing regime.
        for b in &self.bodies {
            let mut p = Path::scatter(self.tx, self.rx, b.position, b.sigma);
            p.amplitude *= self.partition_factor(self.tx, b.position);
            p.amplitude *= self.partition_factor(b.position, self.rx);
            paths.push(p);
        }

        paths
    }

    /// Complex frequency response `H[k]` over all subcarriers, including
    /// air absorption and the 802.11 null-subcarrier mask, but **without**
    /// receiver impairments (see [`crate::receiver::Receiver::measure`]).
    pub fn frequency_response(&self) -> Vec<Complex> {
        let paths = self.paths();
        let n = self.config.n_subcarriers;
        let mut h = vec![Complex::ZERO; n];
        // Precompute per-path amplitude including air absorption.
        let attenuated: Vec<(f64, f64)> = paths
            .iter()
            .map(|p| {
                let a =
                    p.amplitude * air::path_gain(self.temperature_c, self.humidity_pct, p.length_m);
                (a, p.length_m)
            })
            .collect();
        for (k, h_k) in h.iter_mut().enumerate() {
            let f = self.config.subcarrier_frequency_hz(k);
            let mask = self.config.subcarrier_mask(k);
            let mut acc = Complex::ZERO;
            for &(a, len) in &attenuated {
                let phase = -std::f64::consts::TAU * f * len / SPEED_OF_LIGHT;
                acc += Complex::from_polar(a, phase);
            }
            *h_k = acc.scale(mask);
        }
        h
    }

    /// CSI amplitude vector `|H[k]|` (noise-free).
    pub fn amplitudes(&self) -> Vec<f64> {
        self.frequency_response().iter().map(|h| h.abs()).collect()
    }
}

/// The default furniture layout: six desks and two cabinets spread through
/// the office. The simulator swaps this for an alternative layout at a
/// "furniture moved" epoch (§V-B's fold-4 hardness).
pub fn default_furniture_layout() -> Vec<Scatterer> {
    vec![
        Scatterer::furniture(Point3::new(2.0, 1.5, 0.75)),
        Scatterer::furniture(Point3::new(2.0, 4.5, 0.75)),
        Scatterer::furniture(Point3::new(6.0, 4.8, 0.75)),
        Scatterer::furniture(Point3::new(9.5, 1.5, 0.75)),
        Scatterer::furniture(Point3::new(9.5, 4.5, 0.75)),
        Scatterer::furniture(Point3::new(11.0, 3.0, 0.75)),
        // Tall cabinets.
        Scatterer {
            position: Point3::new(0.4, 5.5, 1.2),
            sigma: 0.18,
            material: Material::FURNITURE,
        },
        Scatterer {
            position: Point3::new(11.6, 0.4, 1.2),
            sigma: 0.18,
            material: Material::FURNITURE,
        },
    ]
}

/// An alternative furniture layout after occupants rearranged the room:
/// three desks move by roughly a metre, one cabinet crosses the room,
/// the rest stays put — a realistic partial rearrangement that shifts the
/// empty-room CSI fingerprint without replacing it wholesale.
pub fn moved_furniture_layout() -> Vec<Scatterer> {
    vec![
        Scatterer::furniture(Point3::new(2.9, 2.1, 0.75)), // desk moved
        Scatterer::furniture(Point3::new(2.0, 4.5, 0.75)),
        Scatterer::furniture(Point3::new(5.3, 5.1, 0.75)), // desk moved
        Scatterer::furniture(Point3::new(9.5, 1.5, 0.75)),
        Scatterer::furniture(Point3::new(10.3, 4.9, 0.75)), // desk moved
        Scatterer::furniture(Point3::new(11.0, 3.0, 0.75)),
        // One cabinet relocated across the room, one untouched.
        Scatterer {
            position: Point3::new(0.4, 0.6, 1.2),
            sigma: 0.18,
            material: Material::FURNITURE,
        },
        Scatterer {
            position: Point3::new(11.6, 0.4, 1.2),
            sigma: 0.18,
            material: Material::FURNITURE,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scene_geometry_matches_paper() {
        let s = Scene::office_default();
        assert_eq!(s.room.width, 12.0);
        assert_eq!(s.room.depth, 6.0);
        assert_eq!(s.room.height, 3.0);
        // AP and receiver 2 m apart at 1.4 m height (§IV-A).
        assert!((s.tx.distance(s.rx) - 2.0).abs() < 1e-12);
        assert_eq!(s.tx.z, 1.4);
        assert!(s.bodies.is_empty());
    }

    #[test]
    fn path_count_matches_scene_contents() {
        let mut s = Scene::office_default();
        let base = s.paths().len();
        assert_eq!(base, 1 + 6 + s.scatterers.len());
        s.bodies.push(Body::standing(Point3::new(6.0, 3.0, 0.0)));
        assert_eq!(s.paths().len(), base + 1);
    }

    #[test]
    fn response_has_64_bins_with_masked_nulls() {
        let s = Scene::office_default();
        let h = s.frequency_response();
        assert_eq!(h.len(), 64);
        let amps: Vec<f64> = h.iter().map(|c| c.abs()).collect();
        // Null bins are strongly attenuated relative to the median used bin.
        let mut used: Vec<f64> = (0..64)
            .filter(|&k| !s.config.is_null_subcarrier(k))
            .map(|k| amps[k])
            .collect();
        used.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_used = used[used.len() / 2];
        assert!(amps[32] < 0.2 * median_used);
        assert!(amps[0] < 0.2 * median_used);
    }

    #[test]
    fn response_is_frequency_selective() {
        // Multipath must make amplitudes differ across used subcarriers.
        let s = Scene::office_default();
        let amps = s.amplitudes();
        let used: Vec<f64> = (0..64)
            .filter(|&k| !s.config.is_null_subcarrier(k))
            .map(|k| amps[k])
            .collect();
        let mean = used.iter().sum::<f64>() / used.len() as f64;
        let var = used.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / used.len() as f64;
        assert!(var > 1e-6, "channel is flat: var {var}");
    }

    #[test]
    fn body_changes_subcarrier_profile() {
        let mut s = Scene::office_default();
        let empty = s.amplitudes();
        s.bodies.push(Body::standing(Point3::new(6.0, 3.0, 0.0)));
        let occupied = s.amplitudes();
        let delta: f64 = empty
            .iter()
            .zip(&occupied)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(delta > 0.01, "body invisible: delta {delta}");
    }

    #[test]
    fn body_effect_depends_on_position() {
        let mut s = Scene::office_default();
        s.bodies.push(Body::standing(Point3::new(3.0, 2.0, 0.0)));
        let at_a = s.amplitudes();
        s.bodies[0] = Body::standing(Point3::new(9.0, 4.0, 0.0));
        let at_b = s.amplitudes();
        let delta: f64 = at_a.iter().zip(&at_b).map(|(a, b)| (a - b).abs()).sum();
        assert!(delta > 1e-3, "position-independent body: {delta}");
    }

    #[test]
    fn environment_changes_response_subtly() {
        let mut s = Scene::office_default();
        let cool_dry = s.amplitudes();
        s.temperature_c = 26.0;
        s.humidity_pct = 48.0;
        let warm_humid = s.amplitudes();
        let delta: f64 = cool_dry
            .iter()
            .zip(&warm_humid)
            .map(|(a, b)| (a - b).abs())
            .sum();
        // Present but much smaller than a body's effect.
        assert!(delta > 1e-4, "environment invisible: {delta}");
        let mut s2 = Scene::office_default();
        s2.bodies.push(Body::standing(Point3::new(6.0, 1.0, 0.0)));
        let body_delta: f64 = cool_dry
            .iter()
            .zip(&s2.amplitudes())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(body_delta > delta, "env {delta} vs body {body_delta}");
    }

    #[test]
    fn furniture_layout_change_shifts_fingerprint() {
        let mut s = Scene::office_default();
        let before = s.amplitudes();
        s.scatterers = moved_furniture_layout();
        let after = s.amplitudes();
        let delta: f64 = before.iter().zip(&after).map(|(a, b)| (a - b).abs()).sum();
        assert!(delta > 1e-3, "layout change invisible: {delta}");
    }

    #[test]
    fn sitting_body_differs_from_standing() {
        let spot = Point3::new(6.0, 3.0, 0.0);
        let mut s1 = Scene::office_default();
        s1.bodies.push(Body::standing(spot));
        let mut s2 = Scene::office_default();
        s2.bodies.push(Body::sitting(spot));
        let d: f64 = s1
            .amplitudes()
            .iter()
            .zip(&s2.amplitudes())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-4, "posture invisible: {d}");
    }

    #[test]
    fn second_order_adds_thirty_paths() {
        let mut s = Scene::office_default();
        let first_order = s.paths().len();
        s.max_reflection_order = 2;
        assert_eq!(s.paths().len(), first_order + 30);
    }

    #[test]
    fn second_order_perturbs_without_dominating() {
        let mut s = Scene::office_default();
        let order1 = s.amplitudes();
        s.max_reflection_order = 2;
        let order2 = s.amplitudes();
        let delta: f64 = order1.iter().zip(&order2).map(|(a, b)| (a - b).abs()).sum();
        let total: f64 = order1.iter().sum();
        assert!(delta > 1e-4, "order-2 paths invisible: {delta}");
        assert!(delta < total, "order-2 paths dominate: {delta} vs {total}");
    }

    #[test]
    fn second_order_amplitudes_are_positive_and_long() {
        let mut s = Scene::office_default();
        s.max_reflection_order = 2;
        let paths = s.paths();
        let first_order_count = paths.len() - 30 - s.scatterers.len() - s.bodies.len();
        let max_first_order_len = paths[..first_order_count]
            .iter()
            .map(|p| p.length_m)
            .fold(0.0f64, f64::max);
        for p in &paths[first_order_count..first_order_count + 30] {
            assert!(p.amplitude > 0.0, "double bounce flipped sign");
            assert!(p.length_m >= 2.0, "double bounce too short: {}", p.length_m);
        }
        assert!(max_first_order_len > 0.0);
    }

    #[test]
    fn partition_leg_factor_geometry() {
        let p = Partition::office(4.0);
        // Same side: untouched.
        assert_eq!(
            p.leg_factor(Point3::new(1.0, 1.0, 1.0), Point3::new(3.0, 5.0, 1.0)),
            1.0
        );
        // Crossing through the wall: attenuated.
        assert_eq!(
            p.leg_factor(Point3::new(3.0, 1.0, 1.0), Point3::new(5.0, 1.0, 1.0)),
            p.transmission
        );
        // Crossing through the doorway (y ≈ 5.3 at the plane): free.
        assert_eq!(
            p.leg_factor(Point3::new(3.0, 5.3, 1.0), Point3::new(5.0, 5.3, 1.0)),
            1.0
        );
        // Symmetric in direction.
        assert_eq!(
            p.leg_factor(Point3::new(5.0, 1.0, 1.0), Point3::new(3.0, 1.0, 1.0)),
            p.transmission
        );
    }

    #[test]
    fn multiroom_rooms_and_radio_placement() {
        let s = Scene::office_multiroom(3);
        assert_eq!(s.partitions.len(), 2);
        assert_eq!(s.room_of(1.0), 0);
        assert_eq!(s.room_of(5.0), 1);
        assert_eq!(s.room_of(11.0), 2);
        // Both radios in the middle room, LoS unattenuated.
        assert_eq!(s.room_of(s.tx.x), 1);
        assert_eq!(s.room_of(s.rx.x), 1);
        let open = Scene::office_default();
        let los_open = open.paths()[0].amplitude;
        let los_multi = s.paths()[0].amplitude;
        assert_eq!(los_open, los_multi);
    }

    #[test]
    fn adjacent_room_body_is_attenuated_but_visible() {
        let spot = Point3::new(2.0, 2.0, 0.0); // room 0, away from the door
        let mut open = Scene::office_default();
        open.bodies.push(Body::standing(spot));
        let mut multi = Scene::office_multiroom(3);
        multi.bodies.push(Body::standing(spot));
        let empty_multi = Scene::office_multiroom(3);
        let body_scatter_open = open.paths().last().copied().unwrap().amplitude;
        let body_scatter_multi = multi.paths().last().copied().unwrap().amplitude;
        // The wall attenuates the through-wall scatter leg…
        assert!(
            body_scatter_multi < body_scatter_open,
            "{body_scatter_multi} vs {body_scatter_open}"
        );
        // …but the occupant still perturbs the CSI.
        let delta: f64 = empty_multi
            .amplitudes()
            .iter()
            .zip(&multi.amplitudes())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(delta > 1e-5, "adjacent-room body invisible: {delta}");
    }

    #[test]
    fn monitored_room_body_dominates_adjacent_room_body() {
        // The detector's physical basis: same posture, but inside the
        // radios' room the perturbation is much larger.
        let empty = Scene::office_multiroom(3);
        let mut inside = Scene::office_multiroom(3);
        inside
            .bodies
            .push(Body::standing(Point3::new(6.0, 3.0, 0.0)));
        let mut adjacent = Scene::office_multiroom(3);
        adjacent
            .bodies
            .push(Body::standing(Point3::new(2.0, 3.0, 0.0)));
        let base = empty.amplitudes();
        let d_in: f64 = base
            .iter()
            .zip(&inside.amplitudes())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let d_adj: f64 = base
            .iter()
            .zip(&adjacent.amplitudes())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d_in > d_adj, "in-room {d_in} vs adjacent {d_adj}");
    }

    #[test]
    fn scatterer_sigma_tracks_environment() {
        let sc = Scatterer::furniture(Point3::new(1.0, 1.0, 0.75));
        let dry = sc.effective_sigma(20.0, 20.0);
        let humid = sc.effective_sigma(20.0, 60.0);
        assert!(humid > dry);
        // Baseline environment gives the nominal sigma.
        assert!((sc.effective_sigma(20.0, 35.0) - sc.sigma).abs() < 1e-12);
    }
}
