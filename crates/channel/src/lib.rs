//! # occusense-channel
//!
//! RF substrate for the `occusense` workspace: a physics-based model of the
//! 2.4 GHz / 20 MHz OFDM WiFi channel that the paper's Nexmon-patched
//! Raspberry Pi sniffs. This crate replaces the physical hardware of the
//! paper's data-collection setup (Fig. 1–2) per the substitution policy in
//! `DESIGN.md`.
//!
//! The model is a deterministic, geometry-driven multipath ray model:
//!
//! * [`geometry`] — 3-D points, the office room box, segment geometry used
//!   for Fresnel-zone shadowing tests.
//! * [`materials`] — reflection coefficients of plasterboard, reinforced
//!   concrete, glass and furniture surfaces, with a *non-linear* dependence
//!   on moisture content and temperature (this is what lets the downstream
//!   network recover humidity and temperature from CSI, §V-D).
//! * [`air`] — water-vapour absorption of the air path, via the Magnus
//!   saturation-pressure formula (non-linear in temperature).
//! * [`ofdm`] — subcarrier frequency grid of an IEEE 802.11 20 MHz channel
//!   (64 subcarriers, d_H = 3.2 · bandwidth as in §II-A of the paper).
//! * [`multipath`] — path enumeration: line of sight, first-order image
//!   reflections off the six room surfaces, static furniture scatterers and
//!   dynamic human-body scatterers, plus body shadowing of paths whose
//!   Fresnel zone a body intrudes into.
//! * [`scene`] — a complete snapshot (room, radios, bodies, furniture,
//!   temperature, humidity) and the frequency response computed from it.
//! * [`receiver`] — receiver impairments: additive white Gaussian noise,
//!   automatic gain control with quantised gain steps, and amplitude
//!   quantisation, producing Nexmon-style CSI amplitude vectors.
//!
//! # Example
//!
//! ```
//! use occusense_channel::scene::{Scene, Body};
//! use occusense_channel::geometry::Point3;
//! use occusense_channel::receiver::Receiver;
//! use rand::SeedableRng;
//!
//! let mut scene = Scene::office_default();
//! let empty = scene.frequency_response();
//!
//! // A person standing in the room changes the subcarrier profile.
//! scene.bodies.push(Body::standing(Point3::new(6.0, 3.0, 0.0)));
//! let occupied = scene.frequency_response();
//!
//! let delta: f64 = empty
//!     .iter()
//!     .zip(&occupied)
//!     .map(|(a, b)| (a.abs() - b.abs()).abs())
//!     .sum();
//! assert!(delta > 0.0);
//!
//! // And the receiver turns the response into a noisy CSI amplitude vector.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let rx = Receiver::default();
//! let csi = rx.measure(&occupied, &mut rng);
//! assert_eq!(csi.len(), 64);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod air;
pub mod complex;
pub mod geometry;
pub mod materials;
pub mod multipath;
pub mod ofdm;
pub mod phase;
pub mod receiver;
pub mod scene;

pub use complex::Complex;
pub use scene::{Body, Partition, Scatterer, Scene};
