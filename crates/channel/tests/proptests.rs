//! Property-based tests for the channel model.

use occusense_channel::geometry::{point_segment_distance, Point3, Room, Surface};
use occusense_channel::materials::Material;
use occusense_channel::multipath::shadowing_factor;
use occusense_channel::receiver::Receiver;
use occusense_channel::scene::{Body, Scene};
use occusense_channel::Complex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn point_in_room() -> impl Strategy<Value = Point3> {
    (0.0f64..12.0, 0.0f64..6.0, 0.0f64..3.0).prop_map(|(x, y, z)| Point3::new(x, y, z))
}

proptest! {
    #[test]
    fn mirror_involution(p in point_in_room()) {
        let room = Room::office();
        for s in Surface::ALL {
            let back = room.mirror(room.mirror(p, s), s);
            prop_assert!(back.distance(p) < 1e-9);
        }
    }

    #[test]
    fn mirror_preserves_distance_to_surface_plane(p in point_in_room()) {
        let room = Room::office();
        // The image is outside the room (or on the boundary).
        for s in Surface::ALL {
            let img = room.mirror(p, s);
            let inside = room.contains(img);
            // Only boundary points map to themselves.
            if inside {
                prop_assert!(img.distance(p) < 1e-9);
            }
        }
    }

    #[test]
    fn segment_distance_nonnegative_t_in_unit(
        p in point_in_room(), a in point_in_room(), b in point_in_room()
    ) {
        let (d, t) = point_segment_distance(p, a, b);
        prop_assert!(d >= 0.0);
        prop_assert!((0.0..=1.0).contains(&t));
        // Distance to segment <= distance to either endpoint.
        prop_assert!(d <= p.distance(a) + 1e-9);
        prop_assert!(d <= p.distance(b) + 1e-9);
    }

    #[test]
    fn shadowing_in_unit_interval(
        obstacle in point_in_room(), a in point_in_room(), b in point_in_room(),
        radius in 0.05f64..0.5,
    ) {
        let f = shadowing_factor(obstacle, radius, a, b, 0.125);
        prop_assert!((0.0..=1.0).contains(&f), "factor {f}");
        prop_assert!(f >= 0.1 - 1e-9);
    }

    #[test]
    fn reflectivity_always_clamped(t in -10.0f64..50.0, h in 0.0f64..100.0) {
        for m in [
            Material::PLASTERBOARD,
            Material::CONCRETE,
            Material::GLASS,
            Material::FURNITURE,
            Material::CEILING_TILE,
        ] {
            let r = m.reflectivity(t, h);
            prop_assert!((0.02..=0.95).contains(&r), "{}: {r}", m.name);
        }
    }

    #[test]
    fn air_gain_monotone_decreasing_in_distance(
        t in 5.0f64..35.0, h in 5.0f64..95.0, d1 in 0.1f64..10.0, extra in 0.1f64..10.0
    ) {
        let g1 = occusense_channel::air::path_gain(t, h, d1);
        let g2 = occusense_channel::air::path_gain(t, h, d1 + extra);
        prop_assert!(g2 < g1);
        prop_assert!(g1 <= 1.0 && g2 > 0.0);
    }

    #[test]
    fn response_amplitudes_finite_and_nonnegative(
        n_bodies in 0usize..5,
        t in 15.0f64..35.0,
        h in 15.0f64..60.0,
        seed in 0u64..1000,
    ) {
        let mut scene = Scene::office_default();
        scene.temperature_c = t;
        scene.humidity_pct = h;
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n_bodies {
            let x = 1.0 + (seed as f64 * 0.37 + i as f64 * 2.3) % 10.0;
            let y = 1.0 + (seed as f64 * 0.73 + i as f64 * 1.1) % 4.0;
            scene.bodies.push(Body::standing(Point3::new(x, y, 0.0)));
        }
        let csi = Receiver::new().measure(&scene.frequency_response(), &mut rng);
        prop_assert_eq!(csi.len(), 64);
        for a in csi {
            prop_assert!(a.is_finite() && (0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn complex_abs_triangle_inequality(
        re1 in -10.0f64..10.0, im1 in -10.0f64..10.0,
        re2 in -10.0f64..10.0, im2 in -10.0f64..10.0,
    ) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        prop_assert!((a + b).abs() <= a.abs() + b.abs() + 1e-9);
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }
}
