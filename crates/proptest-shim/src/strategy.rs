//! Value-generation strategies and their combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of an associated type.
///
/// Upstream proptest couples generation with shrinking; this shim only
/// generates, so the trait is a thin wrapper over a seeded RNG draw.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.inner.generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::new_rng;

    #[test]
    fn ranges_tuples_and_combinators_generate_in_bounds() {
        let mut rng = new_rng("strategy_unit");
        let s = (1usize..=6, -2.0f64..2.0)
            .prop_flat_map(|(n, x)| crate::collection::vec(0u8..4, n).prop_map(move |v| (v, x)));
        for _ in 0..200 {
            let (v, x) = s.generate(&mut rng);
            assert!((1..=6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
            assert!((-2.0..2.0).contains(&x));
        }
        assert_eq!(Just(41).prop_map(|n| n + 1).generate(&mut rng), 42);
    }
}
