//! Runner configuration.

/// How many generated cases each `proptest!` test runs.
///
/// Upstream defaults to 256 with shrinking; this shim defaults lower
/// because several of the workspace's properties train networks or run
/// the channel model per case, and there is no shrinking phase to
/// amortise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}
