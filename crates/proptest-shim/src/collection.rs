//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A length specification for [`vec`]: either exact or a half-open
/// range of lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec: empty length range {r:?}");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size` and whose
/// elements are drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::new_rng;

    #[test]
    fn vec_lengths_and_elements_respect_bounds() {
        let mut rng = new_rng("collection_unit");
        let exact = vec(-1.0f64..1.0, 7usize);
        let ranged = vec(0u8..3, 2usize..9);
        for _ in 0..200 {
            assert_eq!(exact.generate(&mut rng).len(), 7);
            let v = ranged.generate(&mut rng);
            assert!((2..9).contains(&v.len()), "{}", v.len());
            assert!(v.iter().all(|&b| b < 3));
        }
    }
}
