//! # occusense-proptest
//!
//! A small, dependency-free stand-in for the subset of the `proptest`
//! API this workspace's property tests use. The build environment has
//! no crates.io access, so the workspace maps the dependency name
//! `proptest` onto this crate; `use proptest::prelude::*;` resolves
//! here.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   in the assertion message instead of a minimised counterexample.
//! * **Deterministic generation.** Each `proptest!` test derives its
//!   RNG seed from the test's name, so runs are reproducible without a
//!   persistence file.
//! * Only the combinators the workspace uses exist: range strategies,
//!   tuples, [`collection::vec`], `prop_map`, `prop_flat_map`,
//!   [`Just`], and the `proptest!` / `prop_compose!` /
//!   `prop_assert…!` / `prop_assume!` macros.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Upstream-style nested module path: `prop::collection::vec(..)`.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface used by the workspace's test files.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Builds the deterministic RNG for one property test (seeded from the
/// test name via FNV-1a). Public for use by the `proptest!` expansion.
pub fn new_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests: each `fn` runs its body for
/// `ProptestConfig::cases` generated inputs.
///
/// ```
/// use occusense_proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in -100i32..100, b in -100i32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
// The doctest's `#[test]` mirrors real call sites; rustdoc strips the
// attributed fn outside `--test`, so the doctest compile-checks the
// expansion rather than executing it (the shim's own unit tests and
// every workspace property test exercise it for real).
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::new_rng(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Composes named sub-strategies into a strategy for a derived value
/// (single-block form of upstream `prop_compose!`).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ( $($arg:ident : $argty:ty),* $(,)? )
        ( $($pat:pat in $strat:expr),+ $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current generated case when an assumption does not hold.
/// (Skipped cases still count towards the case budget, unlike
/// upstream, which is fine at this workspace's case counts.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}
