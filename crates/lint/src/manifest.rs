//! Manifest parsing and the layering rule.
//!
//! A tiny single-purpose TOML subset reader (section headers +
//! one-line `key = value` entries — exactly the shape of this
//! workspace's manifests), feeding the layering check: every
//! dependency edge in every `crates/*/Cargo.toml` must point to a
//! crate on a **strictly lower** layer of [`crate::config::LAYERS`].
//! Dev- and build-dependencies are held to the same standard — a
//! test-only back-edge still creates a build cycle hazard and an
//! architecture leak.
//!
//! Alias renames (`rand = { path = "crates/rand-shim", package =
//! "occusense-rand" }`) are resolved through the root manifest's
//! `[workspace.dependencies]` table, so rules always reason about real
//! package names.

use std::collections::BTreeMap;

use crate::config::layer_of;
use crate::diagnostics::{Diagnostic, Rule};

/// One `key = value` entry with its line number.
#[derive(Debug)]
struct Entry {
    key: String,
    value: String,
    line: u32,
}

/// Sections of a manifest: section name → entries.
fn sections(contents: &str) -> BTreeMap<String, Vec<Entry>> {
    let mut out: BTreeMap<String, Vec<Entry>> = BTreeMap::new();
    let mut current = String::new();
    for (idx, raw) in contents.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            current = line.trim_matches(|c| c == '[' || c == ']').to_string();
            out.entry(current.clone()).or_default();
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            out.entry(current.clone()).or_default().push(Entry {
                key: key.trim().trim_matches('"').to_string(),
                value: value.trim().to_string(),
                line: idx as u32 + 1,
            });
        }
    }
    out
}

/// Dependency-alias → package-name map from the root manifest's
/// `[workspace.dependencies]` (identity for entries without a
/// `package =` rename).
pub fn workspace_aliases(root_manifest: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    if let Some(entries) = sections(root_manifest).get("workspace.dependencies") {
        for e in entries {
            let package = e
                .value
                .split_once("package")
                .and_then(|(_, tail)| tail.split('"').nth(1))
                .unwrap_or(&e.key)
                .to_string();
            map.insert(e.key.clone(), package);
        }
    }
    map
}

/// Package name declared in a crate manifest's `[package]` section.
pub fn package_name(manifest: &str) -> Option<String> {
    sections(manifest)
        .get("package")?
        .iter()
        .find(|e| e.key == "name")
        .map(|e| e.value.trim_matches('"').to_string())
}

/// Layering + `publish` hygiene over one crate manifest.
///
/// `aliases` comes from [`workspace_aliases`]; dependency keys are
/// resolved through it (dotted keys like `rand.workspace` resolve on
/// the part before the first dot).
pub fn check_manifest(
    rel: &str,
    manifest: &str,
    aliases: &BTreeMap<String, String>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let secs = sections(manifest);
    let Some(package) = package_name(manifest) else {
        diags.push(Diagnostic::new(
            rel,
            1,
            1,
            Rule::Layering,
            "manifest has no [package] name",
        ));
        return diags;
    };
    let Some(layer) = layer_of(&package) else {
        diags.push(Diagnostic::new(
            rel,
            1,
            1,
            Rule::Layering,
            format!("crate `{package}` has no layer assignment; add it to config::LAYERS"),
        ));
        return diags;
    };

    for section in ["dependencies", "dev-dependencies", "build-dependencies"] {
        let Some(entries) = secs.get(section) else {
            continue;
        };
        for e in entries {
            let alias = e.key.split('.').next().unwrap_or(&e.key);
            let dep = aliases.get(alias).cloned().unwrap_or_else(|| {
                // In-line renames: `x = { ..., package = "y" }`.
                e.value
                    .split_once("package")
                    .and_then(|(_, tail)| tail.split('"').nth(1))
                    .unwrap_or(alias)
                    .to_string()
            });
            // Only police the in-tree graph; a genuinely external
            // dependency (none exist today — the tree is offline)
            // would surface as an unknown crate below only if it
            // collides with the occusense- prefix.
            if !dep.starts_with("occusense-") {
                continue;
            }
            match layer_of(&dep) {
                None => diags.push(Diagnostic::new(
                    rel,
                    e.line,
                    1,
                    Rule::Layering,
                    format!("dependency `{dep}` has no layer assignment; add it to config::LAYERS"),
                )),
                Some(dep_layer) if dep_layer >= layer => diags.push(Diagnostic::new(
                    rel,
                    e.line,
                    1,
                    Rule::Layering,
                    format!(
                        "layering violation: `{package}` (layer {layer}) must not depend on \
                         `{dep}` (layer {dep_layer}); edges point strictly down the \
                         tensor → nn → core → serve stack"
                    ),
                )),
                Some(_) => {}
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALIASES_TOML: &str = r#"
[workspace.dependencies]
occusense-tensor = { path = "crates/tensor" }
occusense-serve = { path = "crates/serve" }
occusense-bench = { path = "crates/bench" }
rand = { path = "crates/rand-shim", package = "occusense-rand" }
"#;

    #[test]
    fn aliases_resolve_renames() {
        let aliases = workspace_aliases(ALIASES_TOML);
        assert_eq!(
            aliases.get("rand").map(String::as_str),
            Some("occusense-rand")
        );
        assert_eq!(
            aliases.get("occusense-tensor").map(String::as_str),
            Some("occusense-tensor")
        );
    }

    #[test]
    fn downward_edges_pass_upward_edges_fail() {
        let aliases = workspace_aliases(ALIASES_TOML);
        let ok = r#"
[package]
name = "occusense-serve"

[dependencies]
occusense-tensor.workspace = true
rand.workspace = true
"#;
        assert!(check_manifest("crates/serve/Cargo.toml", ok, &aliases).is_empty());

        let bad = r#"
[package]
name = "occusense-tensor"

[dependencies]
occusense-serve.workspace = true
"#;
        let diags = check_manifest("crates/tensor/Cargo.toml", bad, &aliases);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("layering violation"));
    }

    #[test]
    fn unknown_crates_must_be_placed() {
        let aliases = workspace_aliases(ALIASES_TOML);
        let unknown = "[package]\nname = \"occusense-mystery\"\n";
        let diags = check_manifest("crates/mystery/Cargo.toml", unknown, &aliases);
        assert!(diags[0].message.contains("no layer assignment"));
    }
}
