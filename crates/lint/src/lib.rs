//! # occusense-lint
//!
//! The workspace's own static analyzer: a dependency-free source and
//! manifest checker that turns the contracts PRs 1–3 established —
//! bitwise-deterministic kernels, panic-supervised serve workers,
//! allocation-free steady-state hot paths, `tensor → nn → core →
//! serve` layering — into rules a CI gate can fail on. One stray
//! `unwrap()`, `HashMap` iteration or `Instant::now()` in a numeric
//! path silently breaks the reproducibility the paper's five
//! temporally-disjoint folds depend on; this crate makes that a
//! build-breaking diagnostic instead.
//!
//! The analyzer has **no dependencies** (not even the in-tree shims):
//! it carries its own lightweight Rust tokenizer
//! ([`tokenizer`] — string/char/raw-string/comment aware, no `syn`;
//! the build environment is offline), so rules can never be fooled by
//! `unwrap(` inside a string literal or a doc comment.
//!
//! ## Rule families
//!
//! | family | rules | scope |
//! |---|---|---|
//! | panic-freedom | `panic`, `index` | serve hot path, `tensor::kernels` |
//! | determinism | `determinism` | every numeric crate's `src` |
//! | allocation | `alloc` | `// lint:no_alloc` regions |
//! | unsafe/layering | `unsafe`, `layering` | crate roots + manifests |
//! | concurrency | `lock-order`, `condvar`, `atomics`, `swallow` | the hand-rolled concurrency subsystems |
//! | the hatch itself | `directive` | everywhere |
//!
//! The concurrency family is a **two-pass, cross-file** analysis
//! ([`concurrency`], DESIGN.md §13): pass one builds a symbol table of
//! lock/condvar/atomic fields over the whole
//! [`config::CONCURRENCY_SCOPE`] file set, pass two walks each file's
//! scope tree ([`model`]) tracking live guards, producing a global
//! lock-order graph (`--graph-dot` exports it as Graphviz DOT).
//!
//! Waivers are inline and **must carry a reason**:
//! `lint:allow(<rule>, reason = "...")` (see [`directives`]). The
//! `unsafe`, `layering`, `spawn`, `lock-order` and `condvar` rules
//! have no waiver. DESIGN.md §9 holds the full rule table and the
//! how-to-add-a-rule walkthrough.
//!
//! ## Exit codes
//!
//! The binary exits with the OR of the offended families' bits —
//! panic `1`, determinism `2`, alloc `4`, unsafe/layering `8`,
//! directive `16`, concurrency `32` — so a CI log identifies the
//! broken contract from the code alone. `0` is a clean tree.

#![deny(unsafe_code)]

pub mod concurrency;
pub mod config;
pub mod diagnostics;
pub mod directives;
pub mod manifest;
pub mod model;
pub mod rules;
pub mod tokenizer;
pub mod walk;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diagnostics::{byte_offset, json_escape, Diagnostic};

/// Result of linting a whole tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All surviving violations, sorted by
    /// (file, byte offset, line, col, rule) — see [`Self::normalize`].
    pub diagnostics: Vec<Diagnostic>,
    /// The cross-file lock-order graph of the concurrency pass.
    pub lock_graph: concurrency::LockGraph,
    /// Number of Rust sources scanned.
    pub sources_scanned: usize,
    /// Number of manifests checked.
    pub manifests_checked: usize,
}

impl LintReport {
    /// OR of the offended rule families' exit bits; `0` when clean.
    pub fn exit_code(&self) -> i32 {
        self.diagnostics
            .iter()
            .fold(0, |code, d| code | d.rule.exit_bit())
    }

    /// Human-readable rustc-style rendering, one line per violation
    /// plus a summary trailer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "occusense-lint: {} violation(s) across {} source file(s) and {} manifest(s)\n",
            self.diagnostics.len(),
            self.sources_scanned,
            self.manifests_checked
        ));
        out
    }

    /// Re-establishes the report's ordering invariant: diagnostics
    /// sorted by (file, byte offset, line, col, rule). The byte offset
    /// leads so the JSON artifact's order is stable under any future
    /// change to how rules report columns; line/col follow as
    /// tie-breakers for synthetic positions whose offset saturated.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.file, a.offset, a.line, a.col, a.rule)
                .cmp(&(&b.file, b.offset, b.line, b.col, b.rule))
        });
    }

    /// Machine-readable report (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"offset\": {}, \"line\": {}, \"col\": {}, \
                 \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&d.file),
                d.offset,
                d.line,
                d.col,
                d.rule,
                json_escape(&d.message)
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"sources_scanned\": {},\n  \"manifests_checked\": {},\n  \
             \"exit_code\": {}\n}}\n",
            self.sources_scanned,
            self.manifests_checked,
            self.exit_code()
        ));
        out
    }
}

/// Lints the workspace rooted at `root`: every in-scope Rust source
/// through the source rules, every crate manifest through the layering
/// rule.
pub fn run(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut texts: BTreeMap<String, String> = BTreeMap::new();

    let aliases = match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(ws) => manifest::workspace_aliases(&ws),
        Err(_) => Default::default(),
    };

    for path in walk::crate_manifests(root)? {
        let rel = walk::rel_path(root, &path);
        let contents = fs::read_to_string(&path)?;
        report
            .diagnostics
            .extend(manifest::check_manifest(&rel, &contents, &aliases));
        report.manifests_checked += 1;
        texts.insert(rel, contents);
    }

    // Pass one: the per-file rules, keeping every source so pass two
    // can read the concurrency scope as one program.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in walk::rust_sources(root)? {
        let rel = walk::rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        report.diagnostics.extend(rules::analyze_source(&rel, &src));
        report.sources_scanned += 1;
        sources.push((rel, src));
    }

    // Pass two: the cross-file concurrency analysis.
    let (conc_diags, lock_graph) = concurrency::analyze(&sources);
    report.diagnostics.extend(conc_diags);
    report.lock_graph = lock_graph;

    // Fill in byte offsets from the retained texts, then sort.
    for (rel, src) in sources {
        texts.entry(rel).or_insert(src);
    }
    for d in &mut report.diagnostics {
        if let Some(src) = texts.get(&d.file) {
            d.offset = byte_offset(src, d.line, d.col);
        }
    }
    report.normalize();
    Ok(report)
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
