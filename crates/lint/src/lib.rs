//! # occusense-lint
//!
//! The workspace's own static analyzer: a dependency-free source and
//! manifest checker that turns the contracts PRs 1–3 established —
//! bitwise-deterministic kernels, panic-supervised serve workers,
//! allocation-free steady-state hot paths, `tensor → nn → core →
//! serve` layering — into rules a CI gate can fail on. One stray
//! `unwrap()`, `HashMap` iteration or `Instant::now()` in a numeric
//! path silently breaks the reproducibility the paper's five
//! temporally-disjoint folds depend on; this crate makes that a
//! build-breaking diagnostic instead.
//!
//! The analyzer has **no dependencies** (not even the in-tree shims):
//! it carries its own lightweight Rust tokenizer
//! ([`tokenizer`] — string/char/raw-string/comment aware, no `syn`;
//! the build environment is offline), so rules can never be fooled by
//! `unwrap(` inside a string literal or a doc comment.
//!
//! ## Rule families
//!
//! | family | rules | scope |
//! |---|---|---|
//! | panic-freedom | `panic`, `index` | serve hot path, `tensor::kernels` |
//! | determinism | `determinism` | every numeric crate's `src` |
//! | allocation | `alloc` | `// lint:no_alloc` regions |
//! | unsafe/layering | `unsafe`, `layering` | crate roots + manifests |
//! | the hatch itself | `directive` | everywhere |
//!
//! Waivers are inline and **must carry a reason**:
//! `lint:allow(<rule>, reason = "...")` (see [`directives`]). The
//! `unsafe` and `layering` rules have no waiver. DESIGN.md §9 holds
//! the full rule table and the how-to-add-a-rule walkthrough.
//!
//! ## Exit codes
//!
//! The binary exits with the OR of the offended families' bits —
//! panic `1`, determinism `2`, alloc `4`, unsafe/layering `8`,
//! directive `16` — so a CI log identifies the broken contract from
//! the code alone. `0` is a clean tree.

#![deny(unsafe_code)]

pub mod config;
pub mod diagnostics;
pub mod directives;
pub mod manifest;
pub mod rules;
pub mod tokenizer;
pub mod walk;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diagnostics::{json_escape, Diagnostic};

/// Result of linting a whole tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All surviving violations, sorted by (file, line, col).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of Rust sources scanned.
    pub sources_scanned: usize,
    /// Number of manifests checked.
    pub manifests_checked: usize,
}

impl LintReport {
    /// OR of the offended rule families' exit bits; `0` when clean.
    pub fn exit_code(&self) -> i32 {
        self.diagnostics
            .iter()
            .fold(0, |code, d| code | d.rule.exit_bit())
    }

    /// Human-readable rustc-style rendering, one line per violation
    /// plus a summary trailer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "occusense-lint: {} violation(s) across {} source file(s) and {} manifest(s)\n",
            self.diagnostics.len(),
            self.sources_scanned,
            self.manifests_checked
        ));
        out
    }

    /// Machine-readable report (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
                 \"message\": \"{}\"}}",
                json_escape(&d.file),
                d.line,
                d.col,
                d.rule,
                json_escape(&d.message)
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"sources_scanned\": {},\n  \"manifests_checked\": {},\n  \
             \"exit_code\": {}\n}}\n",
            self.sources_scanned,
            self.manifests_checked,
            self.exit_code()
        ));
        out
    }
}

/// Lints the workspace rooted at `root`: every in-scope Rust source
/// through the source rules, every crate manifest through the layering
/// rule.
pub fn run(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();

    let aliases = match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(ws) => manifest::workspace_aliases(&ws),
        Err(_) => Default::default(),
    };

    for path in walk::crate_manifests(root)? {
        let rel = walk::rel_path(root, &path);
        let contents = fs::read_to_string(&path)?;
        report
            .diagnostics
            .extend(manifest::check_manifest(&rel, &contents, &aliases));
        report.manifests_checked += 1;
    }

    for path in walk::rust_sources(root)? {
        let rel = walk::rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        report.diagnostics.extend(rules::analyze_source(&rel, &src));
        report.sources_scanned += 1;
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
