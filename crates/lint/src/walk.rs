//! Deterministic file discovery: every `.rs` file under `crates/*/src`
//! and `crates/*/tests`, the workspace-level `tests/` and `examples/`
//! trees, and every `Cargo.toml` — sorted by path so diagnostics (and
//! the `--json` report) are byte-stable across runs and machines.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::WALK_EXCLUDE;

/// Root-relative path with forward slashes (the form every scope
/// pattern and diagnostic uses).
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn excluded(rel: &str) -> bool {
    WALK_EXCLUDE.iter().any(|p| match p.strip_suffix('/') {
        Some(dir) => rel.starts_with(dir) && rel.as_bytes().get(dir.len()) == Some(&b'/'),
        None => rel == *p,
    })
}

fn collect(root: &Path, dir: &Path, ext: &str, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if excluded(&rel_path(root, &path)) {
            continue;
        }
        if path.is_dir() {
            collect(root, &path, ext, out)?;
        } else if path.extension().is_some_and(|e| e == ext) {
            out.push(path);
        }
    }
    Ok(())
}

fn crate_dirs(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(crates)? {
            let path = entry?.path();
            if path.is_dir() {
                dirs.push(path);
            }
        }
    }
    dirs.sort();
    Ok(dirs)
}

/// Every Rust source file in scope, sorted.
pub fn rust_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in crate_dirs(root)? {
        collect(root, &dir.join("src"), "rs", &mut files)?;
        collect(root, &dir.join("tests"), "rs", &mut files)?;
    }
    collect(root, &root.join("tests"), "rs", &mut files)?;
    collect(root, &root.join("examples"), "rs", &mut files)?;
    files.sort();
    Ok(files)
}

/// Every crate manifest (excluding the workspace root's), sorted.
pub fn crate_manifests(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in crate_dirs(root)? {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            files.push(manifest);
        }
    }
    let tests_manifest = root.join("tests/Cargo.toml");
    if tests_manifest.is_file() {
        files.push(tests_manifest);
    }
    files.sort();
    Ok(files)
}
