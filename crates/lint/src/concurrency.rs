//! The cross-file concurrency pass: lock-order graph construction,
//! condvar predicate discipline, and the atomic-ordering audit
//! (DESIGN.md §13).
//!
//! Unlike the per-file rules in [`crate::rules`], this pass reads the
//! whole [`crate::config::CONCURRENCY_SCOPE`] file set as one program:
//! lock identity is by declared field name (`ctrl`, `inputs`,
//! `registry`, …), so a function in `gateway.rs` and one in
//! `reactor.rs` acquiring the same locks in opposite orders form a
//! cycle no single file shows. The pass is two-phase:
//!
//! 1. **Symbols** ([`crate::model::Symbols`]): every `Mutex`/`RwLock`/
//!    `Condvar`/`Atomic*` struct field and lock-typed alias across the
//!    set, plus *guard-returning function summaries* — a function whose
//!    return type names `MutexGuard`/`RwLock*Guard` and whose body
//!    acquires a known lock is itself an acquisition site at every
//!    call (`lock_ctrl()` → `ctrl`, `lock_registry()` → `registry`).
//! 2. **Scan**: a linear walk per file over the scope tree
//!    ([`crate::model::ScopeTree`]) tracking live guards. A guard
//!    bound by `let` lives until its scope closes or it is `drop`ped;
//!    an unbound (temporary) guard lives to the end of its statement.
//!    Acquiring lock B while a guard on lock A is live adds the edge
//!    `A → B` with a witness (file, function, line).
//!
//! Guard liveness over-approximates (see `model.rs`): extra edges are
//! possible, missing edges are not — the safe direction for a
//! deadlock detector. `#[cfg(test)]` spans are excluded entirely
//! (tests lock freely and on purpose).

use std::collections::{BTreeMap, BTreeSet};

use crate::config::CONCURRENCY_SCOPE;
use crate::diagnostics::{Diagnostic, Rule};
use crate::directives;
use crate::model::{ScopeKind, ScopeTree, Symbols};
use crate::rules::test_excluded_spans;
use crate::tokenizer::{tokenize, Token, TokenKind};

/// One observed "held A, acquired B" site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Witness {
    pub file: String,
    pub func: String,
    pub line: u32,
}

/// An aggregated lock-order edge with every witness site.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub witnesses: Vec<Witness>,
}

/// The global lock-order graph: one node per declared lock name, one
/// edge per observed acquisition order. Exported as DOT by
/// `occusense-lint --graph-dot`.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Every declared lock, edges or not — the DOT export shows
    /// coverage, not just conflicts.
    pub nodes: Vec<String>,
    pub edges: Vec<Edge>,
}

impl LockGraph {
    /// Elementary cycles, each as the node sequence `[a, b, …]`
    /// meaning `a → b → … → a`, canonicalized (smallest node first)
    /// and deduplicated.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &self.edges {
            adj.entry(&e.from).or_default().insert(&e.to);
        }
        let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut out = Vec::new();
        for start in adj.keys().copied().collect::<Vec<_>>() {
            // BFS for the shortest path start → … → start.
            let mut queue: Vec<Vec<&str>> = vec![vec![start]];
            'bfs: while !queue.is_empty() {
                let mut next = Vec::new();
                for path in queue.drain(..) {
                    let last = *path.last().unwrap_or(&start);
                    for &succ in adj.get(last).into_iter().flatten() {
                        if succ == start {
                            let cycle = canonical(&path);
                            if seen.insert(cycle.clone()) {
                                out.push(cycle);
                            }
                            break 'bfs;
                        }
                        if !path.contains(&succ) {
                            let mut p = path.clone();
                            p.push(succ);
                            next.push(p);
                        }
                    }
                }
                queue = next;
            }
        }
        out
    }

    /// Witnesses of the edge `from → to`, empty when absent.
    pub fn edge_witnesses(&self, from: &str, to: &str) -> &[Witness] {
        self.edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .map(|e| e.witnesses.as_slice())
            .unwrap_or(&[])
    }

    /// Graphviz DOT rendering, deterministically ordered. Cyclic
    /// edges are drawn red so the CI artifact shows the inversion at
    /// a glance.
    pub fn to_dot(&self) -> String {
        let cyclic: BTreeSet<(String, String)> = self
            .cycles()
            .iter()
            .flat_map(|cycle| {
                let mut pairs = Vec::new();
                for i in 0..cycle.len() {
                    let from = cycle[i].clone();
                    let to = cycle[(i + 1) % cycle.len()].clone();
                    pairs.push((from, to));
                }
                pairs
            })
            .collect();
        let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n  node [shape=box];\n");
        for n in &self.nodes {
            out.push_str(&format!("  \"{n}\";\n"));
        }
        for e in &self.edges {
            let label = e
                .witnesses
                .first()
                .map(|w| format!("{}:{} ({})", w.file, w.line, w.func))
                .unwrap_or_default();
            let color = if cyclic.contains(&(e.from.clone(), e.to.clone())) {
                ", color=red"
            } else {
                ""
            };
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"{}];\n",
                e.from, e.to, label, color
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn canonical(path: &[&str]) -> Vec<String> {
    let min = path
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| **s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    (0..path.len())
        .map(|k| path[(min + k) % path.len()].to_string())
        .collect()
}

/// Atomic methods whose arguments carry a memory ordering.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERED: &[&str] = &["Acquire", "Release", "AcqRel", "SeqCst"];

/// Guard-acquisition methods on `Mutex`/`RwLock`.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

#[derive(Debug)]
struct AtomicSite {
    field: String,
    file: String,
    func: String,
    line: u32,
    col: u32,
    relaxed: bool,
    ordered: bool,
    /// `.load(Relaxed)` inside the header of a `while` loop that
    /// parks on a condvar — the lost-wakeup shape the rule bans even
    /// without a conflicting site.
    gates_wait: bool,
    waived: bool,
}

#[derive(Debug)]
struct LiveGuard {
    lock: String,
    name: Option<String>,
    scope: usize,
    temp: bool,
}

/// Runs the concurrency pass over `(rel_path, source)` pairs. Files
/// outside [`CONCURRENCY_SCOPE`] are ignored, so callers can feed the
/// whole tree.
pub fn analyze(files: &[(String, String)]) -> (Vec<Diagnostic>, LockGraph) {
    let in_scope: Vec<(&str, Vec<Token>)> = files
        .iter()
        .filter(|(rel, _)| CONCURRENCY_SCOPE.contains(rel))
        .map(|(rel, src)| (rel.as_str(), tokenize(src)))
        .collect();

    // Phase 1: symbols (aliases across every file first), then
    // guard-returning function summaries.
    let mut symbols = Symbols::default();
    let codes: Vec<Vec<&Token>> = in_scope
        .iter()
        .map(|(_, toks)| toks.iter().filter(|t| !t.is_comment()).collect())
        .collect();
    for code in &codes {
        symbols.collect_aliases(code);
    }
    for code in &codes {
        symbols.collect_struct_fields(code);
    }
    let mut summaries: BTreeMap<String, String> = BTreeMap::new();
    for code in &codes {
        collect_guard_summaries(code, &symbols, &mut summaries);
    }

    // Phase 2: per-file scan.
    let mut diags = Vec::new();
    let mut edges: BTreeMap<(String, String), Vec<Witness>> = BTreeMap::new();
    let mut sites: Vec<AtomicSite> = Vec::new();
    for ((rel, tokens), code) in in_scope.iter().zip(&codes) {
        scan_file(
            rel, tokens, code, &symbols, &summaries, &mut diags, &mut edges, &mut sites,
        );
    }

    // Atomic-ordering audit: a field with both Relaxed and ordered
    // sites flags every (unwaived) Relaxed site; a Relaxed load
    // gating a condvar wait loop flags unconditionally.
    let mut ordered_by: BTreeMap<&str, &AtomicSite> = BTreeMap::new();
    for s in &sites {
        if s.ordered {
            ordered_by.entry(&s.field).or_insert(s);
        }
    }
    for s in &sites {
        if !s.relaxed || s.waived {
            continue;
        }
        if s.gates_wait {
            diags.push(Diagnostic::new(
                &s.file,
                s.line,
                s.col,
                Rule::Atomics,
                format!(
                    "`Ordering::Relaxed` load of `{}` gates a condvar wait loop; the predicate \
                     must synchronise with the release store it watches (use Acquire/SeqCst)",
                    s.field
                ),
            ));
        } else if let Some(o) = ordered_by.get(s.field.as_str()) {
            if (o.file.as_str(), o.line, o.col) != (s.file.as_str(), s.line, s.col) {
                diags.push(Diagnostic::new(
                    &s.file,
                    s.line,
                    s.col,
                    Rule::Atomics,
                    format!(
                        "`Ordering::Relaxed` on `{}`, which {}:{} (in `{}`) accesses with an \
                         acquire/release ordering; mixed orderings on one atomic hide the \
                         synchronisation contract",
                        s.field, o.file, o.line, o.func
                    ),
                ));
            }
        }
    }

    // The graph, then its cycles.
    let graph = LockGraph {
        nodes: symbols.locks.iter().cloned().collect(),
        edges: edges
            .into_iter()
            .map(|((from, to), mut witnesses)| {
                witnesses.sort();
                witnesses.dedup();
                Edge {
                    from,
                    to,
                    witnesses,
                }
            })
            .collect(),
    };
    for cycle in graph.cycles() {
        let mut legs = Vec::new();
        for i in 0..cycle.len() {
            let from = &cycle[i];
            let to = &cycle[(i + 1) % cycle.len()];
            let w = graph.edge_witnesses(from, to).first();
            legs.push(match w {
                Some(w) => format!("{from} -> {to} at {}:{} (in `{}`)", w.file, w.line, w.func),
                None => format!("{from} -> {to}"),
            });
        }
        let anchor = cycle
            .first()
            .and_then(|a| {
                let b = cycle.get(1).unwrap_or(a);
                graph.edge_witnesses(a, b).first()
            })
            .cloned();
        let (file, line) = anchor
            .as_ref()
            .map(|w| (w.file.clone(), w.line))
            .unwrap_or_else(|| ("<graph>".to_string(), 1));
        diags.push(Diagnostic::new(
            &file,
            line,
            1,
            Rule::LockOrder,
            format!(
                "lock-order cycle {}: {}",
                cycle.join(" -> "),
                legs.join("; ")
            ),
        ));
    }

    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    (diags, graph)
}

/// Functions whose return type names a guard and whose body acquires a
/// known lock: calling them *is* acquiring that lock.
fn collect_guard_summaries(
    code: &[&Token],
    symbols: &Symbols,
    summaries: &mut BTreeMap<String, String>,
) {
    let tree = ScopeTree::build(code);
    for node in &tree.nodes {
        if node.kind != ScopeKind::Fn {
            continue;
        }
        let Some(name) = &node.fn_name else { continue };
        let header = &code[node.kw..node.open];
        let returns_guard = header.iter().any(|t| {
            t.is_ident("MutexGuard")
                || t.is_ident("RwLockReadGuard")
                || t.is_ident("RwLockWriteGuard")
        });
        if !returns_guard {
            continue;
        }
        let body = &code[node.open..=node.close.min(code.len() - 1)];
        for i in 2..body.len() {
            if body[i].kind == TokenKind::Ident
                && ACQUIRE_METHODS.contains(&body[i].text.as_str())
                && body[i - 1].is_punct('.')
                && body[i - 2].kind == TokenKind::Ident
                && symbols.locks.contains(&body[i - 2].text)
                && body.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                summaries.insert(name.clone(), body[i - 2].text.clone());
                break;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_file(
    rel: &str,
    tokens: &[Token],
    code: &[&Token],
    symbols: &Symbols,
    summaries: &BTreeMap<String, String>,
    diags: &mut Vec<Diagnostic>,
    edges: &mut BTreeMap<(String, String), Vec<Witness>>,
    sites: &mut Vec<AtomicSite>,
) {
    let dirs = directives::parse(rel, tokens);
    let test_spans = test_excluded_spans(tokens);
    let in_test = |line: u32| test_spans.iter().any(|&(s, e)| s <= line && line <= e);
    let tree = ScopeTree::build(code);

    let fn_name_at = |i: usize| {
        tree.enclosing_fn(i)
            .and_then(|n| n.fn_name.clone())
            .unwrap_or_else(|| "<file>".to_string())
    };

    // Wait sites, collected first so while-headers can be checked for
    // gating Relaxed loads afterwards.
    let mut wait_whiles: BTreeSet<usize> = BTreeSet::new();

    let mut live: Vec<LiveGuard> = Vec::new();
    for i in 0..code.len() {
        // Retire guards whose scope has closed behind us.
        live.retain(|g| tree.nodes[g.scope].close >= i);
        let tok = code[i];

        // End-of-statement retires temporaries of the current scope.
        if tok.is_punct(';') {
            if let Some(scope) = tree.innermost(i) {
                live.retain(|g| !(g.temp && g.scope == scope));
            }
        }

        // `drop(name)` retires a named guard early.
        if tok.is_ident("drop")
            && code.get(i + 1).is_some_and(|t| t.is_punct('('))
            && code.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(name) = code.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                live.retain(|g| g.name.as_deref() != Some(name.text.as_str()));
            }
        }

        if tok.kind != TokenKind::Ident || in_test(tok.line) {
            continue;
        }
        let next_is_call = code.get(i + 1).is_some_and(|t| t.is_punct('('));
        let prev_dot = i > 0 && code[i - 1].is_punct('.');

        // Acquisition, direct or through a guard-returning summary.
        let acquired: Option<(String, usize)> = if ACQUIRE_METHODS.contains(&tok.text.as_str())
            && next_is_call
            && prev_dot
            && i >= 2
            && code[i - 2].kind == TokenKind::Ident
            && symbols.locks.contains(&code[i - 2].text)
        {
            Some((code[i - 2].text.clone(), i))
        } else if next_is_call
            && !prev_dot
            && summaries.contains_key(&tok.text)
            && !(i > 0 && code[i - 1].is_ident("fn"))
        {
            Some((summaries[&tok.text].clone(), i))
        } else if next_is_call
            && prev_dot
            && summaries.contains_key(&tok.text)
        {
            Some((summaries[&tok.text].clone(), i))
        } else {
            None
        };
        if let Some((lock, site)) = acquired {
            let func = fn_name_at(site);
            for g in &live {
                if g.lock != lock {
                    edges
                        .entry((g.lock.clone(), lock.clone()))
                        .or_default()
                        .push(Witness {
                            file: rel.to_string(),
                            func: func.clone(),
                            line: code[site].line,
                        });
                }
            }
            let scope = tree.innermost(site).unwrap_or(0);
            let bound = binding_name(code, site);
            live.push(LiveGuard {
                lock,
                temp: bound.is_none(),
                name: bound,
                scope,
            });
            continue;
        }

        // Condvar wait discipline.
        if matches!(tok.text.as_str(), "wait" | "wait_timeout")
            && next_is_call
            && prev_dot
            && i >= 2
            && symbols.condvars.contains(&code[i - 2].text)
        {
            let inner = tree.innermost(i);
            let mut looped = false;
            if let Some(inner) = inner {
                for anc in tree.ancestors(inner) {
                    match anc.kind {
                        ScopeKind::While | ScopeKind::Loop => {
                            looped = true;
                            // Remember the loop header for the
                            // gating-load audit.
                            if anc.kind == ScopeKind::While {
                                wait_whiles.insert(anc.kw);
                            }
                            break;
                        }
                        ScopeKind::Fn => break,
                        _ => {}
                    }
                }
            }
            if !looped {
                diags.push(Diagnostic::new(
                    rel,
                    tok.line,
                    tok.col,
                    Rule::Condvar,
                    format!(
                        "`{}.{}` without an enclosing `while`/`loop` re-checking the predicate: \
                         condvar waits can wake spuriously, so an `if`-guarded or bare wait \
                         loses wakeups (or acts on a stale predicate)",
                        code[i - 2].text, tok.text
                    ),
                ));
            }
            continue;
        }

        // Atomic-ordering sites.
        if ATOMIC_METHODS.contains(&tok.text.as_str())
            && next_is_call
            && prev_dot
            && i >= 2
            && symbols.atomics.contains(&code[i - 2].text)
        {
            let (relaxed, ordered) = orderings_in_args(code, i + 1);
            sites.push(AtomicSite {
                field: code[i - 2].text.clone(),
                file: rel.to_string(),
                func: fn_name_at(i),
                line: tok.line,
                col: tok.col,
                relaxed,
                ordered,
                gates_wait: false, // patched below
                waived: dirs.allowed(Rule::Atomics, tok.line),
            });
        }
    }

    // Mark Relaxed loads that sit in the header of a while loop whose
    // body parks on a condvar.
    for &kw in &wait_whiles {
        let open = tree
            .nodes
            .iter()
            .find(|n| n.kw == kw && n.kind == ScopeKind::While)
            .map(|n| n.open)
            .unwrap_or(kw);
        for s in sites.iter_mut() {
            if s.file != rel || !s.relaxed {
                continue;
            }
            let in_header = code[kw..open]
                .iter()
                .any(|t| t.line == s.line && t.col == s.col);
            if in_header {
                s.gates_wait = true;
            }
        }
    }
}

/// If the statement containing the acquisition at `site` starts with
/// `let [mut] <name> =`, returns the bound name.
fn binding_name(code: &[&Token], site: usize) -> Option<String> {
    let mut j = site;
    let mut steps = 0;
    while j > 0 && steps < 48 {
        let t = code[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
        steps += 1;
    }
    if !code.get(j).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut k = j + 1;
    if code.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    let name = code.get(k).filter(|t| t.kind == TokenKind::Ident)?;
    code.get(k + 1)
        .filter(|t| t.is_punct('='))
        .map(|_| name.text.clone())
}

/// Scans the argument list opening at `open_paren` for ordering
/// idents; returns `(any_relaxed, any_ordered)`.
fn orderings_in_args(code: &[&Token], open_paren: usize) -> (bool, bool) {
    let mut depth = 0usize;
    let mut relaxed = false;
    let mut ordered = false;
    for t in code.iter().skip(open_paren) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident {
            if t.text == "Relaxed" {
                relaxed = true;
            } else if ORDERED.contains(&t.text.as_str()) {
                ordered = true;
            }
        }
    }
    (relaxed, ordered)
}
