//! Inline `lint:` directive parsing — the escape hatch and the
//! `no_alloc` region markers.
//!
//! Directives live in **plain `//` line comments** (never doc comments,
//! so rustdoc prose can quote the grammar without tripping the
//! parser). The grammar:
//!
//! ```text
//! // lint:allow(<rule>, reason = "<non-empty>")      single line
//! // lint:allow-region(<rule>, reason = "<non-empty>")
//! // lint:end-region(<rule>)
//! // lint:no_alloc                                   open alloc region
//! // lint:end_no_alloc                               close alloc region
//! ```
//!
//! A line-form `allow` waives the rule on its own line (trailing
//! comment) **and** the immediately following line (standalone comment
//! above the offending statement) — nothing further, so an allow can
//! never drift away from the code it excuses. The `reason` string is
//! **required and must be non-empty**: an exemption without a recorded
//! justification is itself a `directive` violation, as is an unknown
//! rule name, an unmatched region marker, or any `lint:`-prefixed
//! comment the parser cannot understand (typos fail loudly instead of
//! silently not applying).

use crate::diagnostics::{Diagnostic, Rule};
use crate::tokenizer::{Token, TokenKind};

/// An inclusive line span on which `rule` is waived.
#[derive(Debug, Clone)]
struct AllowSpan {
    rule: String,
    start: u32,
    end: u32,
}

/// Parsed directives of one file, plus any violations in the
/// directives themselves.
#[derive(Debug, Default)]
pub struct Directives {
    allows: Vec<AllowSpan>,
    no_alloc: Vec<(u32, u32)>,
    pub diags: Vec<Diagnostic>,
}

impl Directives {
    /// Whether `rule` is waived on `line` by an in-scope allow.
    pub fn allowed(&self, rule: Rule, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule.name() && a.start <= line && line <= a.end)
    }

    /// Whether `line` falls inside a `// lint:no_alloc` region.
    pub fn in_no_alloc(&self, line: u32) -> bool {
        self.no_alloc
            .iter()
            .any(|&(start, end)| start < line && line < end)
    }

    /// True when the file declares at least one `no_alloc` region.
    pub fn has_no_alloc_regions(&self) -> bool {
        !self.no_alloc.is_empty()
    }
}

/// Extracts directives from the comment tokens of `file`.
pub fn parse(file: &str, tokens: &[Token]) -> Directives {
    let mut d = Directives::default();
    let mut open_regions: Vec<AllowSpan> = Vec::new();
    let mut open_no_alloc: Vec<u32> = Vec::new();
    let mut last_line = 1u32;

    for tok in tokens {
        last_line = last_line.max(tok.line);
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        // Strip `//`; skip doc comments (`///`, `//!`).
        let body = &tok.text[2..];
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let body = body.trim();
        let Some(directive) = body.strip_prefix("lint:") else {
            continue;
        };
        let bad = |d: &mut Directives, msg: String| {
            d.diags.push(Diagnostic::new(
                file,
                tok.line,
                tok.col,
                Rule::Directive,
                msg,
            ));
        };
        if directive == "no_alloc" {
            if !open_no_alloc.is_empty() {
                bad(
                    &mut d,
                    "lint:no_alloc opened inside an already-open no_alloc region".into(),
                );
            }
            open_no_alloc.push(tok.line);
        } else if directive == "end_no_alloc" {
            match open_no_alloc.pop() {
                Some(start) => d.no_alloc.push((start, tok.line)),
                None => bad(&mut d, "lint:end_no_alloc without an open region".into()),
            }
        } else if let Some(rest) = directive.strip_prefix("allow-region(") {
            match parse_allow_args(rest) {
                Ok((rule, _reason)) => {
                    // Nested same-rule regions are a hard error: the
                    // inner end-region would silently close the outer
                    // span early, shrinking a reviewed waiver.
                    if open_regions.iter().any(|r| r.rule == rule) {
                        bad(
                            &mut d,
                            format!(
                                "lint:allow-region({rule}) nested inside an open \
                                 allow-region({rule})"
                            ),
                        );
                    }
                    open_regions.push(AllowSpan {
                        rule,
                        start: tok.line,
                        end: 0,
                    });
                }
                Err(msg) => bad(&mut d, msg),
            }
        } else if let Some(rest) = directive.strip_prefix("end-region(") {
            let rule = rest.trim_end_matches(')').trim();
            match open_regions.iter().rposition(|r| r.rule == rule) {
                Some(i) => {
                    let mut span = open_regions.remove(i);
                    span.end = tok.line;
                    d.allows.push(span);
                }
                None => bad(
                    &mut d,
                    format!("lint:end-region({rule}) without a matching allow-region"),
                ),
            }
        } else if let Some(rest) = directive.strip_prefix("allow(") {
            match parse_allow_args(rest) {
                Ok((rule, _reason)) => d.allows.push(AllowSpan {
                    rule,
                    start: tok.line,
                    end: tok.line + 1,
                }),
                Err(msg) => bad(&mut d, msg),
            }
        } else {
            bad(
                &mut d,
                format!("unrecognised lint directive `lint:{directive}`"),
            );
        }
    }

    for span in open_regions {
        d.diags.push(Diagnostic::new(
            file,
            span.start,
            1,
            Rule::Directive,
            format!("lint:allow-region({}) is never closed", span.rule),
        ));
    }
    for start in open_no_alloc {
        d.diags.push(Diagnostic::new(
            file,
            start,
            1,
            Rule::Directive,
            "lint:no_alloc region is never closed".to_string(),
        ));
    }
    d
}

/// Parses `<rule>, reason = "<text>")` — the argument tail shared by
/// `allow` and `allow-region`. Returns `(rule, reason)`.
fn parse_allow_args(rest: &str) -> Result<(String, String), String> {
    let Some((rule, tail)) = rest.split_once(',') else {
        return Err("lint:allow needs `(<rule>, reason = \"...\")`".into());
    };
    let rule = rule.trim().to_string();
    if !Rule::allowable(&rule) {
        return Err(format!(
            "`{rule}` is not an allowable rule (panic, index, determinism, alloc, atomics, \
             swallow)"
        ));
    }
    let tail = tail.trim();
    let Some(eq_tail) = tail.strip_prefix("reason") else {
        return Err("lint:allow requires a `reason = \"...\"` argument".into());
    };
    let Some(quoted) = eq_tail.trim_start().strip_prefix('=') else {
        return Err("lint:allow reason must use `reason = \"...\"`".into());
    };
    let quoted = quoted.trim_start();
    let Some(inner) = quoted.strip_prefix('"') else {
        return Err("lint:allow reason must be a quoted string".into());
    };
    let Some(end) = inner.rfind('"') else {
        return Err("lint:allow reason string is unterminated".into());
    };
    let reason = &inner[..end];
    if reason.trim().is_empty() {
        return Err("lint:allow reason must not be empty".into());
    }
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn directives(src: &str) -> Directives {
        parse("f.rs", &tokenize(src))
    }

    #[test]
    fn line_allow_covers_its_line_and_the_next() {
        let d = directives("// lint:allow(panic, reason = \"bounded\")\nx.unwrap();\ny();");
        assert!(d.diags.is_empty());
        assert!(d.allowed(Rule::Panic, 1));
        assert!(d.allowed(Rule::Panic, 2));
        assert!(!d.allowed(Rule::Panic, 3));
        assert!(!d.allowed(Rule::Index, 2));
    }

    #[test]
    fn missing_or_empty_reason_is_a_directive_violation() {
        assert_eq!(directives("// lint:allow(panic)").diags.len(), 1);
        assert_eq!(
            directives("// lint:allow(panic, reason = \"  \")")
                .diags
                .len(),
            1
        );
        assert_eq!(
            directives("// lint:alow(panic, reason = \"x\")")
                .diags
                .len(),
            1
        );
        assert_eq!(
            directives("// lint:allow(gravity, reason = \"x\")")
                .diags
                .len(),
            1
        );
    }

    #[test]
    fn regions_must_balance() {
        let ok = directives(
            "// lint:allow-region(index, reason = \"tiled\")\na[0];\n// lint:end-region(index)",
        );
        assert!(ok.diags.is_empty());
        assert!(ok.allowed(Rule::Index, 2));

        let unclosed = directives("// lint:no_alloc\nlet v = Vec::new();");
        assert_eq!(unclosed.diags.len(), 1);
    }

    #[test]
    fn nested_same_rule_allow_regions_are_hard_errors() {
        let d = directives(
            "// lint:allow-region(index, reason = \"outer\")\n\
             // lint:allow-region(index, reason = \"inner\")\n\
             a[0];\n\
             // lint:end-region(index)\n\
             // lint:end-region(index)",
        );
        assert_eq!(d.diags.len(), 1, "{:?}", d.diags);
        assert!(d.diags[0].message.contains("nested"), "{:?}", d.diags);
    }

    #[test]
    fn overlapping_different_rule_regions_stay_legal() {
        // The pool overlaps an allow-region(index) with a no_alloc
        // region — different kinds, no nesting error.
        let d = directives(
            "// lint:allow-region(index, reason = \"tiled\")\n\
             // lint:no_alloc\n\
             a[0];\n\
             // lint:end_no_alloc\n\
             // lint:end-region(index)",
        );
        assert!(d.diags.is_empty(), "{:?}", d.diags);
    }

    #[test]
    fn nested_no_alloc_regions_are_hard_errors() {
        let d = directives(
            "// lint:no_alloc\n// lint:no_alloc\nbody();\n\
             // lint:end_no_alloc\n// lint:end_no_alloc",
        );
        assert_eq!(d.diags.len(), 1, "{:?}", d.diags);
    }

    #[test]
    fn unterminated_region_at_eof_is_a_hard_error() {
        let d = directives("// lint:allow-region(panic, reason = \"x\")\nx.unwrap();");
        assert_eq!(d.diags.len(), 1, "{:?}", d.diags);
        assert!(d.diags[0].message.contains("never closed"), "{:?}", d.diags);
        // ...and the unterminated region waives nothing.
        assert!(!d.allowed(Rule::Panic, 2));
    }

    #[test]
    fn atomics_and_swallow_are_allowable_lock_order_and_condvar_are_not() {
        assert!(directives("// lint:allow(atomics, reason = \"x\")")
            .diags
            .is_empty());
        assert!(directives("// lint:allow(swallow, reason = \"x\")")
            .diags
            .is_empty());
        assert_eq!(
            directives("// lint:allow(lock-order, reason = \"x\")")
                .diags
                .len(),
            1
        );
        assert_eq!(
            directives("// lint:allow(condvar, reason = \"x\")")
                .diags
                .len(),
            1
        );
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let d = directives("/// // lint:allow(panic, reason = \"doc example\")\nfn f() {}");
        assert!(d.diags.is_empty());
        assert!(!d.allowed(Rule::Panic, 2));
    }

    #[test]
    fn no_alloc_region_is_exclusive_of_marker_lines() {
        let d = directives("// lint:no_alloc\nbody();\n// lint:end_no_alloc");
        assert!(d.in_no_alloc(2));
        assert!(!d.in_no_alloc(1));
        assert!(!d.in_no_alloc(3));
    }
}
