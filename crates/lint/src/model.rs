//! A lightweight structural model over the token stream: the brace
//! scope tree and the concurrency symbol table the cross-file pass
//! ([`crate::concurrency`]) runs on.
//!
//! This is deliberately *not* a Rust parser. It classifies each brace
//! scope by the keyword that introduced it (`fn`/`while`/`loop`/…),
//! which is exactly the shape information the condvar-predicate rule
//! needs ("is this wait re-checked by an enclosing loop?") and the
//! lock-order pass needs ("which function does this acquisition belong
//! to, and when does its guard's scope close?"). Token streams the
//! tokenizer produces are already string/comment-clean, so a `{` in a
//! string literal can never open a phantom scope.
//!
//! Known approximations, chosen for a dependency-free analyzer:
//!
//! * A closure body is a plain `Block` — acquisitions inside it are
//!   attributed to the enclosing named function.
//! * A brace-bearing closure *inside a loop condition* would consume
//!   the pending loop keyword; none of the audited files do this.
//! * Guard liveness (in the concurrency pass) over-approximates: a
//!   `let`-bound acquisition is considered held until its scope ends
//!   or it is `drop`ped, even if the binding was actually a value
//!   projected out of a temporary guard. Over-approximation can only
//!   add lock-order edges, never hide one.

use crate::tokenizer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// What introduced a brace scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// `fn name(...) { ... }` — a function body.
    Fn,
    /// `while cond { ... }` (including `while let`).
    While,
    /// `loop { ... }`.
    Loop,
    /// `for pat in iter { ... }`.
    For,
    /// `if cond { ... }` (including `if let`).
    If,
    /// `else { ... }`.
    Else,
    /// `match expr { ... }`.
    Match,
    /// Anything else: plain blocks, struct/impl bodies, match arms,
    /// closure bodies.
    Block,
}

/// One brace scope: `open`/`close` are indices into the comment-free
/// token slice the tree was built from (`close` points at the `}`, or
/// the last token when unterminated at EOF).
#[derive(Debug, Clone)]
pub struct ScopeNode {
    pub kind: ScopeKind,
    pub parent: Option<usize>,
    pub open: usize,
    pub close: usize,
    /// Token index of the introducing keyword (`while`, `fn`, …) —
    /// `open` for plain blocks. The span `kw..open` is the header
    /// (condition / signature) of the scope.
    pub kw: usize,
    /// For `Fn` scopes: the function's name.
    pub fn_name: Option<String>,
}

/// The scope tree of one file.
#[derive(Debug, Default)]
pub struct ScopeTree {
    pub nodes: Vec<ScopeNode>,
}

impl ScopeTree {
    /// Builds the tree over a comment-free token slice.
    pub fn build(code: &[&Token]) -> ScopeTree {
        let mut nodes: Vec<ScopeNode> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        // The keyword waiting for its `{`, with the paren/bracket
        // depth at which it was seen (a `;` at that depth cancels it:
        // a body-less trait fn, `fn f() -> T;`).
        let mut pending: Option<(ScopeKind, usize, Option<String>)> = None;
        let mut depth = 0usize;

        for (i, tok) in code.iter().enumerate() {
            match tok.kind {
                TokenKind::Ident => {
                    let kind = match tok.text.as_str() {
                        "fn" => Some(ScopeKind::Fn),
                        "while" => Some(ScopeKind::While),
                        "loop" => Some(ScopeKind::Loop),
                        "for" => Some(ScopeKind::For),
                        "if" => Some(ScopeKind::If),
                        "else" => Some(ScopeKind::Else),
                        "match" => Some(ScopeKind::Match),
                        _ => None,
                    };
                    if let Some(kind) = kind {
                        let name = (kind == ScopeKind::Fn)
                            .then(|| {
                                code.get(i + 1)
                                    .filter(|t| t.kind == TokenKind::Ident)
                                    .map(|t| t.text.clone())
                            })
                            .flatten();
                        pending = Some((kind, depth, name));
                    }
                }
                TokenKind::Punct => match tok.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    ";" => {
                        if let Some((_, d, _)) = pending {
                            if depth <= d {
                                pending = None;
                            }
                        }
                    }
                    "{" => {
                        let (kind, kw, fn_name) = match pending.take() {
                            Some((k, _, name)) => {
                                // Recover the keyword index: scan back
                                // for the nearest introducing keyword
                                // at this statement.
                                let kw = find_kw_back(code, i, k);
                                (k, kw, name)
                            }
                            None => (ScopeKind::Block, i, None),
                        };
                        let idx = nodes.len();
                        nodes.push(ScopeNode {
                            kind,
                            parent: stack.last().copied(),
                            open: i,
                            close: code.len().saturating_sub(1),
                            kw,
                            fn_name,
                        });
                        stack.push(idx);
                    }
                    "}" => {
                        if let Some(idx) = stack.pop() {
                            nodes[idx].close = i;
                        }
                    }
                    _ => {}
                },
                _ => {}
            }
        }
        ScopeTree { nodes }
    }

    /// Index of the innermost scope containing token `tok` (strictly
    /// inside: the `{`/`}` themselves belong to the scope).
    pub fn innermost(&self, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.open <= tok && tok <= n.close {
                match best {
                    Some(b) if self.nodes[b].open >= n.open => {}
                    _ => best = Some(i),
                }
            }
        }
        best
    }

    /// Walks `scope` and its ancestors, innermost first.
    pub fn ancestors(&self, scope: usize) -> impl Iterator<Item = &ScopeNode> {
        let mut cur = Some(scope);
        std::iter::from_fn(move || {
            let idx = cur?;
            cur = self.nodes[idx].parent;
            Some(&self.nodes[idx])
        })
    }

    /// The enclosing `Fn` scope of token `tok`, if any.
    pub fn enclosing_fn(&self, tok: usize) -> Option<&ScopeNode> {
        let inner = self.innermost(tok)?;
        self.ancestors(inner).find(|n| n.kind == ScopeKind::Fn)
    }
}

/// Finds the introducing keyword token for the scope whose `{` sits at
/// `open`, scanning backwards no further than the previous `;`/`{`/`}`.
fn find_kw_back(code: &[&Token], open: usize, kind: ScopeKind) -> usize {
    let kw_text = match kind {
        ScopeKind::Fn => "fn",
        ScopeKind::While => "while",
        ScopeKind::Loop => "loop",
        ScopeKind::For => "for",
        ScopeKind::If => "if",
        ScopeKind::Else => "else",
        ScopeKind::Match => "match",
        ScopeKind::Block => return open,
    };
    let mut j = open;
    while j > 0 {
        j -= 1;
        let t = code[j];
        if t.kind == TokenKind::Ident && t.text == kw_text {
            return j;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
    }
    open
}

/// The concurrency symbol table of a file set: every named lock,
/// condvar and atomic the audited subsystems declare. Identity is by
/// *field name* — `ctrl` in the pool and `ctrl` in a fixture are the
/// same node — which is what makes the graph cross-file without type
/// resolution. The scope config keeps unrelated modules out, so the
/// name space stays honest.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Field (or alias-derived) names of `Mutex`/`RwLock` values.
    pub locks: BTreeSet<String>,
    /// Field names of `Condvar` values.
    pub condvars: BTreeSet<String>,
    /// Field names of `Atomic*` values.
    pub atomics: BTreeSet<String>,
    /// Type aliases whose right-hand side contains a lock
    /// (`type Registry = Arc<Mutex<…>>`): alias name → snake_case
    /// binding convention (`Registry` → `registry`), both of which
    /// register a lock name.
    pub lock_aliases: BTreeMap<String, String>,
}

impl Symbols {
    /// Collects declarations from one file's comment-free tokens into
    /// the table. For a multi-file set, run [`Self::collect_aliases`]
    /// over every file *first*, then [`Self::collect_struct_fields`] —
    /// a field typed by another file's lock alias resolves regardless
    /// of walk order.
    pub fn collect(&mut self, code: &[&Token]) {
        self.collect_aliases(code);
        self.collect_struct_fields(code);
    }

    /// Sweep 1: `type Name = … Mutex/RwLock …;` aliases.
    pub fn collect_aliases(&mut self, code: &[&Token]) {
        let mut i = 0;
        while i < code.len() {
            if code[i].is_ident("type") && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                let name = code[i + 1].text.clone();
                let mut j = i + 2;
                let mut is_lock = false;
                while j < code.len() && !code[j].is_punct(';') {
                    if code[j].is_ident("Mutex") || code[j].is_ident("RwLock") {
                        is_lock = true;
                    }
                    j += 1;
                }
                if is_lock {
                    let snake = snake_case(&name);
                    self.locks.insert(snake.clone());
                    self.lock_aliases.insert(name, snake);
                }
                i = j;
            }
            i += 1;
        }
    }

    /// Sweep 2: struct fields, classified by their type tokens.
    pub fn collect_struct_fields(&mut self, code: &[&Token]) {
        let mut i = 0;
        while i < code.len() {
            if !code[i].is_ident("struct") {
                i += 1;
                continue;
            }
            // Skip to the body `{` (tuple structs and unit structs hit
            // `;`/`(` first and are skipped — none of the audited
            // primitives are tuple structs).
            let mut j = i + 1;
            while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
                if code[j].is_punct('(') {
                    break;
                }
                j += 1;
            }
            if j >= code.len() || !code[j].is_punct('{') {
                i = j + 1;
                continue;
            }
            // Walk the body at depth 1, splitting `name : type…` runs.
            let mut depth = 1usize;
            let mut k = j + 1;
            while k < code.len() && depth > 0 {
                let t = code[k];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                } else if depth == 1
                    && t.kind == TokenKind::Ident
                    && code.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    && !code.get(k + 2).is_some_and(|n| n.is_punct(':'))
                    && field_position(code, k)
                {
                    let field = t.text.clone();
                    // Type tokens run to the `,` at angle-depth 0 or
                    // the closing `}`.
                    let mut angle = 0i32;
                    let mut m = k + 2;
                    let mut kind = FieldKind::Other;
                    while m < code.len() {
                        let ty = code[m];
                        if ty.is_punct('<') {
                            angle += 1;
                        } else if ty.is_punct('>') {
                            angle -= 1;
                        } else if (ty.is_punct(',') && angle <= 0) || ty.is_punct('}') {
                            break;
                        } else if ty.kind == TokenKind::Ident {
                            if ty.text == "Mutex"
                                || ty.text == "RwLock"
                                || self.lock_aliases.contains_key(&ty.text)
                            {
                                kind = FieldKind::Lock;
                            } else if ty.text == "Condvar" {
                                kind = FieldKind::Condvar;
                            } else if ty.text.starts_with("Atomic") {
                                kind = FieldKind::Atomic;
                            }
                        }
                        m += 1;
                    }
                    match kind {
                        FieldKind::Lock => {
                            self.locks.insert(field);
                        }
                        FieldKind::Condvar => {
                            self.condvars.insert(field);
                        }
                        FieldKind::Atomic => {
                            self.atomics.insert(field);
                        }
                        FieldKind::Other => {}
                    }
                    k = m;
                    continue;
                }
                k += 1;
            }
            i = k;
        }
    }
}

#[derive(PartialEq)]
enum FieldKind {
    Lock,
    Condvar,
    Atomic,
    Other,
}

/// Whether the ident at `k` sits in field-name position: preceded by
/// `{`, `,`, `pub` or the `)` of `pub(crate)` — never by `:` (which
/// would make it a path segment inside a type).
fn field_position(code: &[&Token], k: usize) -> bool {
    let Some(prev) = k.checked_sub(1).and_then(|p| code.get(p)) else {
        return false;
    };
    prev.is_punct('{') || prev.is_punct(',') || prev.is_ident("pub") || prev.is_punct(')')
}

/// `Registry` → `registry`, `DeadLetterQueue` → `dead_letter_queue`:
/// the binding-name convention lock-typed aliases register under.
pub fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn tree(src: &str) -> (Vec<crate::tokenizer::Token>, ScopeTree) {
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let tree = ScopeTree::build(&code);
        (tokens, tree)
    }

    #[test]
    fn loops_conditionals_and_fns_are_classified() {
        let src = "fn f() { while x { if y { loop { } } else { } } match z { _ => { } } }";
        let (_, t) = tree(src);
        let kinds: Vec<ScopeKind> = t.nodes.iter().map(|n| n.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ScopeKind::Fn,
                ScopeKind::While,
                ScopeKind::If,
                ScopeKind::Loop,
                ScopeKind::Else,
                ScopeKind::Match,
                ScopeKind::Block, // the match arm
            ]
        );
        assert_eq!(t.nodes[0].fn_name.as_deref(), Some("f"));
    }

    #[test]
    fn while_let_and_struct_bodies() {
        let src = "struct S { a: u32 }\nfn g() { while let Some(v) = it.next() { use_(v); } }";
        let (_, t) = tree(src);
        let kinds: Vec<ScopeKind> = t.nodes.iter().map(|n| n.kind).collect();
        assert_eq!(kinds, vec![ScopeKind::Block, ScopeKind::Fn, ScopeKind::While]);
    }

    #[test]
    fn bodyless_trait_fns_do_not_leak_their_keyword() {
        let src = "trait T { fn a(&self) -> u32; }\nfn b() { }";
        let (_, t) = tree(src);
        // trait body = Block, then b's Fn — a's `fn` must not claim
        // the trait's or b's braces.
        let fns: Vec<_> = t
            .nodes
            .iter()
            .filter(|n| n.kind == ScopeKind::Fn)
            .collect();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].fn_name.as_deref(), Some("b"));
    }

    #[test]
    fn enclosing_fn_walks_past_blocks_and_arms() {
        let src = "fn outer() { match x { _ => { inner_site(); } } }";
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let t = ScopeTree::build(&code);
        let site = code
            .iter()
            .position(|tk| tk.is_ident("inner_site"))
            .unwrap();
        assert_eq!(
            t.enclosing_fn(site).and_then(|n| n.fn_name.as_deref()),
            Some("outer")
        );
    }

    #[test]
    fn symbols_classify_fields_and_aliases() {
        let src = "type Registry = Arc<Mutex<BTreeMap<String, Q>>>;\n\
                   struct Shared { ctrl: Mutex<Ctrl>, work_ready: Condvar,\n\
                   epoch: AtomicU64, inputs: RwLock<Inputs>,\n\
                   staging: Vec<Mutex<Staging>>, map: BTreeMap<String, u64>,\n\
                   reg: Registry }";
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut sym = Symbols::default();
        sym.collect(&code);
        for lock in ["ctrl", "inputs", "staging", "registry", "reg"] {
            assert!(sym.locks.contains(lock), "{lock}: {sym:?}");
        }
        assert!(sym.condvars.contains("work_ready"));
        assert!(sym.atomics.contains("epoch"));
        assert!(!sym.locks.contains("map"));
        assert!(!sym.locks.contains("work_ready"));
    }

    #[test]
    fn generic_commas_do_not_split_fields() {
        let src = "struct S { m: Mutex<BTreeMap<String, Arc<Q>>>, n: u32 }";
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut sym = Symbols::default();
        sym.collect(&code);
        assert!(sym.locks.contains("m"));
        assert!(!sym.locks.contains("n"));
        assert!(!sym.locks.contains("String"));
    }

    #[test]
    fn snake_case_convention() {
        assert_eq!(snake_case("Registry"), "registry");
        assert_eq!(snake_case("DeadLetterQueue"), "dead_letter_queue");
        assert_eq!(snake_case("already_snake"), "already_snake");
    }
}
