//! `occusense-lint` — the CLI entry point.
//!
//! ```text
//! cargo run -p occusense-lint             # lint the workspace, rustc-style output
//! cargo run -p occusense-lint -- --json   # machine-readable report on stdout
//! cargo run -p occusense-lint -- --graph-dot lock_order.dot
//! cargo run -p occusense-lint -- --root <dir>
//! ```
//!
//! `--graph-dot <path>` writes the cross-file lock-order graph as
//! Graphviz DOT (cyclic edges drawn red) — CI uploads it as a build
//! artifact.
//!
//! Exit code: OR of the offended rule families' bits (panic `1`,
//! determinism `2`, alloc `4`, unsafe/layering `8`, directive `16`,
//! concurrency `32`); `0` on a clean tree, `64` on usage errors.

#![deny(unsafe_code)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use occusense_lint::{find_workspace_root, run};

const USAGE: &str = "usage: occusense-lint [--json] [--graph-dot <path>] [--root <workspace-dir>]";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut graph_dot: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(64);
                }
            },
            "--graph-dot" => match args.next() {
                Some(path) => graph_dot = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--graph-dot needs a file path\n{USAGE}");
                    return ExitCode::from(64);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(64);
            }
        }
    }

    let root = match root.or_else(|| {
        env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("occusense-lint: no workspace root found (try --root)");
            return ExitCode::from(64);
        }
    };

    match run(&root) {
        Ok(report) => {
            if let Some(path) = graph_dot {
                if let Err(err) = fs::write(&path, report.lock_graph.to_dot()) {
                    eprintln!("occusense-lint: cannot write {}: {err}", path.display());
                    return ExitCode::from(64);
                }
            }
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            ExitCode::from(report.exit_code().clamp(0, 255) as u8)
        }
        Err(err) => {
            eprintln!("occusense-lint: io error: {err}");
            ExitCode::from(64)
        }
    }
}
