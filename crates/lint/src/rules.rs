//! The source-level rule families: panic-freedom, slice-indexing,
//! determinism, allocation hygiene, and the `unsafe` contract.
//!
//! Every rule walks the token stream of [`crate::tokenizer`] — never
//! raw text — so occurrences inside strings, char literals and
//! comments are invisible to it. `#[cfg(test)]` modules and `#[test]`
//! functions are exempt from the behavioural rules (tests unwrap
//! freely); the `unsafe` rule has no exemptions at all.

use crate::config::{DETERMINISM_SCOPE, INDEX_SCOPE, PANIC_SCOPE, SPAWN_SCOPE, SWALLOW_SCOPE};
use crate::diagnostics::{Diagnostic, Rule};
use crate::directives;
use crate::tokenizer::{tokenize, Token, TokenKind};

/// Methods that panic on `None`/`Err` (flagged when called, i.e.
/// preceded by `.` and followed by `(`).
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Identifiers whose presence in a numeric path threatens
/// reproducibility, with the suggested replacement.
const NONDETERMINISM: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order varies per process; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order varies per process; use BTreeSet",
    ),
    ("RandomState", "per-process random hasher seed"),
    ("Instant", "wall-clock readings are not reproducible"),
    ("SystemTime", "wall-clock readings are not reproducible"),
    (
        "available_parallelism",
        "output must not depend on the host's core count",
    ),
    (
        "thread_rng",
        "unseeded RNG; thread a seeded StdRng through instead",
    ),
    ("from_entropy", "OS-entropy seeding; use seed_from_u64"),
];

/// Methods that (may) allocate, flagged inside `lint:no_alloc` regions
/// when called.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "extend",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "reserve",
    "resize",
    "resize_with",
    "insert",
    "append",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Types whose associated constructors allocate (`X::new`,
/// `X::with_capacity`, `X::from`).
const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "String", "Box", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

/// Keywords after which a `[` opens an array literal or pattern, not an
/// index expression.
const ARRAY_CONTEXT_KEYWORDS: &[&str] = &[
    "in", "return", "break", "else", "match", "move", "ref", "mut", "let", "const", "static", "as",
    "yield",
];

/// Runs every source rule that applies to `rel` over `src` and returns
/// the surviving diagnostics (allow-annotated and test-module hits
/// already filtered), sorted by position.
pub fn analyze_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let tokens = tokenize(src);
    let dir = directives::parse(rel, &tokens);
    let test_spans = test_excluded_spans(&tokens);
    let in_test = |line: u32| test_spans.iter().any(|&(s, e)| s <= line && line <= e);

    let mut diags = Vec::new();
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();

    if PANIC_SCOPE.contains(rel) {
        scan_panic(rel, &code, &mut diags);
    }
    if INDEX_SCOPE.contains(rel) {
        scan_index(rel, &code, &mut diags);
    }
    if DETERMINISM_SCOPE.contains(rel) {
        scan_determinism(rel, &code, &mut diags);
    }
    if SPAWN_SCOPE.contains(rel) {
        scan_spawn(rel, &code, &mut diags);
    }
    if SWALLOW_SCOPE.contains(rel) {
        scan_swallow(rel, &code, &mut diags);
    }
    if dir.has_no_alloc_regions() {
        scan_alloc(rel, &code, &dir, &mut diags);
    }
    scan_unsafe(rel, &code, &mut diags);

    diags.retain(|d| {
        let test_exempt = in_test(d.line) && d.rule != Rule::Unsafe;
        let waived = Rule::allowable(d.rule.name()) && dir.allowed(d.rule, d.line);
        !test_exempt && !waived
    });
    diags.extend(dir.diags);
    diags.sort_by_key(|d| (d.line, d.col, d.rule));
    diags
}

/// Line spans (inclusive) covered by `#[cfg(test)]` items or `#[test]`
/// functions — token-based, so braces in strings cannot derail the
/// matcher. Shared with [`crate::concurrency`], whose rules exempt
/// test code the same way.
pub(crate) fn test_excluded_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let toks: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        // Collect the attribute's tokens up to its matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let attr_start = j;
        while j < toks.len() {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let attr = &toks[attr_start..j.min(toks.len())];
        if !is_test_attr(attr) {
            i = j + 1;
            continue;
        }
        // Find the item body: first `{` (then match braces) or a
        // top-level `;` (body-less item). Square brackets are tracked
        // so a `[u8; 4]` return type cannot fake an item end.
        let mut k = j + 1;
        let mut sq = 0usize;
        let mut end_line = attr_line;
        while k < toks.len() {
            let t = toks[k];
            if t.is_punct('[') {
                sq += 1;
            } else if t.is_punct(']') {
                sq = sq.saturating_sub(1);
            } else if t.is_punct(';') && sq == 0 {
                end_line = t.line;
                break;
            } else if t.is_punct('{') && sq == 0 {
                let mut braces = 1usize;
                k += 1;
                while k < toks.len() && braces > 0 {
                    if toks[k].is_punct('{') {
                        braces += 1;
                    } else if toks[k].is_punct('}') {
                        braces -= 1;
                    }
                    end_line = toks[k].line;
                    k += 1;
                }
                break;
            }
            k += 1;
        }
        spans.push((attr_line, end_line.max(attr_line)));
        i = k.max(j + 1);
    }
    spans
}

/// `#[test]` exactly, or any attribute containing the `cfg ( test )`
/// sequence (`#[cfg(not(test))]` does not match).
fn is_test_attr(attr: &[&Token]) -> bool {
    if attr.len() == 1 && attr[0].is_ident("test") {
        return true;
    }
    attr.windows(4).any(|w| {
        w[0].is_ident("cfg") && w[1].is_punct('(') && w[2].is_ident("test") && w[3].is_punct(')')
    })
}

fn scan_panic(rel: &str, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |c: char| code.get(i + 1).is_some_and(|t| t.is_punct(c));
        let prev_is_dot = i > 0 && code[i - 1].is_punct('.');
        if PANIC_METHODS.contains(&tok.text.as_str()) && prev_is_dot && next_is('(') {
            diags.push(Diagnostic::new(
                rel,
                tok.line,
                tok.col,
                Rule::Panic,
                format!(
                    "`.{}()` in a panic-free scope; return a Result or handle the None case",
                    tok.text
                ),
            ));
        } else if PANIC_MACROS.contains(&tok.text.as_str()) && next_is('!') {
            diags.push(Diagnostic::new(
                rel,
                tok.line,
                tok.col,
                Rule::Panic,
                format!("`{}!` in a panic-free scope", tok.text),
            ));
        }
    }
}

fn scan_index(rel: &str, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    for (i, tok) in code.iter().enumerate() {
        if !tok.is_punct('[') || i == 0 {
            continue;
        }
        let prev = code[i - 1];
        let indexes = match prev.kind {
            TokenKind::Ident => !ARRAY_CONTEXT_KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            _ => false,
        };
        if indexes {
            diags.push(Diagnostic::new(
                rel,
                tok.line,
                tok.col,
                Rule::Index,
                "slice/array indexing in a panic-free scope; use get()/iterators or annotate \
                 the bounds proof",
            ));
        }
    }
}

fn scan_determinism(rel: &str, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    for tok in code {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if let Some((name, why)) = NONDETERMINISM.iter().find(|(n, _)| *n == tok.text) {
            diags.push(Diagnostic::new(
                rel,
                tok.line,
                tok.col,
                Rule::Determinism,
                format!("`{name}` in a numeric path: {why}"),
            ));
        }
    }
}

/// Thread-creation calls banned where parallelism must route through
/// the persistent compute pool.
const SPAWN_CALLS: &[&str] = &["spawn", "scope", "Builder"];

fn scan_spawn(rel: &str, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    for (i, tok) in code.iter().enumerate() {
        if !tok.is_ident("thread") {
            continue;
        }
        let is_path_sep = code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'));
        if !is_path_sep {
            continue;
        }
        if let Some(what) = code
            .get(i + 3)
            .filter(|t| SPAWN_CALLS.contains(&t.text.as_str()))
        {
            diags.push(Diagnostic::new(
                rel,
                what.line,
                what.col,
                Rule::Spawn,
                format!(
                    "raw `thread::{}` bypasses the persistent compute pool; route row-block \
                     work through `pool::run_gemm`/`pool::run_fused`",
                    what.text
                ),
            ));
        }
    }
}

fn scan_alloc(
    rel: &str,
    code: &[&Token],
    dir: &directives::Directives,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || !dir.in_no_alloc(tok.line) {
            continue;
        }
        let next_is = |c: char| code.get(i + 1).is_some_and(|t| t.is_punct(c));
        let prev_is_dot = i > 0 && code[i - 1].is_punct('.');
        let flagged = if ALLOC_METHODS.contains(&tok.text.as_str()) && prev_is_dot && next_is('(') {
            Some(format!("`.{}()` allocates", tok.text))
        } else if ALLOC_MACROS.contains(&tok.text.as_str()) && next_is('!') {
            Some(format!("`{}!` allocates", tok.text))
        } else if ALLOC_TYPES.contains(&tok.text.as_str())
            && next_is(':')
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code
                .get(i + 3)
                .is_some_and(|t| matches!(t.text.as_str(), "new" | "with_capacity" | "from"))
        {
            Some(format!("`{}::{}` allocates", tok.text, code[i + 3].text))
        } else {
            None
        };
        if let Some(what) = flagged {
            diags.push(Diagnostic::new(
                rel,
                tok.line,
                tok.col,
                Rule::Alloc,
                format!("{what} inside a lint:no_alloc region"),
            ));
        }
    }
}

/// `Result`-bearing calls whose discarded outcome hides a shutdown-
/// ordering or backpressure bug on the serve/wire hot paths: a
/// swallowed `join` loses a worker panic, a swallowed `push`/`send`
/// loses a frame with no counter recording it.
const SWALLOW_METHODS: &[&str] = &[
    "lock", "read", "write", "join", "send", "try_send", "push", "try_push",
];

fn scan_swallow(rel: &str, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    let mut i = 0;
    while i < code.len() {
        let tok = code[i];

        // `let _ = <expr calling .m(...)>;` — scan the discarded
        // expression (to its `;` at bracket depth 0, so closure bodies
        // cannot end the statement early) for the first swallowed call.
        if tok.is_ident("let")
            && code.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && code.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            let mut j = i + 3;
            let mut depth = 0usize;
            let mut hit: Option<&Token> = None;
            while j < code.len() {
                let t = code[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if t.is_punct(';') && depth == 0 {
                    break;
                }
                if hit.is_none()
                    && t.kind == TokenKind::Ident
                    && SWALLOW_METHODS.contains(&t.text.as_str())
                    && code[j - 1].is_punct('.')
                    && code.get(j + 1).is_some_and(|p| p.is_punct('('))
                {
                    hit = Some(t);
                }
                j += 1;
            }
            if let Some(t) = hit {
                diags.push(Diagnostic::new(
                    rel,
                    t.line,
                    t.col,
                    Rule::Swallow,
                    format!(
                        "`let _ =` discards the `{}` result on a hot path; propagate the error \
                         or count the failure in a metric",
                        t.text
                    ),
                ));
            }
            i = j;
            continue;
        }

        // `<expr>.m(...).ok();` with no binding — the trailing-`.ok()`
        // discard idiom. A `let`-bound `.ok()` observes the outcome and
        // stays legal.
        if tok.is_ident("ok")
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|t| t.is_punct('('))
            && code.get(i + 2).is_some_and(|t| t.is_punct(')'))
            && code.get(i + 3).is_some_and(|t| t.is_punct(';'))
        {
            let mut s = i;
            let mut steps = 0;
            while s > 0 && steps < 64 {
                let t = code[s - 1];
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                s -= 1;
                steps += 1;
            }
            let bound = code.get(s).is_some_and(|t| t.is_ident("let"));
            let swallowed = (s.max(1)..i).find_map(|k| {
                (code[k].kind == TokenKind::Ident
                    && SWALLOW_METHODS.contains(&code[k].text.as_str())
                    && code[k - 1].is_punct('.')
                    && code.get(k + 1).is_some_and(|p| p.is_punct('(')))
                .then(|| code[k].text.clone())
            });
            if !bound {
                if let Some(m) = swallowed {
                    diags.push(Diagnostic::new(
                        rel,
                        tok.line,
                        tok.col,
                        Rule::Swallow,
                        format!(
                            "`.ok()` discards the `{m}` error on a hot path; propagate the \
                             error or count the failure in a metric"
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
}

fn scan_unsafe(rel: &str, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    for tok in code {
        if tok.is_ident("unsafe") {
            diags.push(Diagnostic::new(
                rel,
                tok.line,
                tok.col,
                Rule::Unsafe,
                "`unsafe` is banned workspace-wide (no escape hatch)",
            ));
        }
    }
    if rel.starts_with("crates/") && rel.ends_with("/src/lib.rs") && !has_deny_unsafe(code) {
        diags.push(Diagnostic::new(
            rel,
            1,
            1,
            Rule::Unsafe,
            "crate root is missing `#![deny(unsafe_code)]`",
        ));
    }
}

/// Looks for `#![deny(unsafe_code)]` / `#![forbid(unsafe_code)]`.
fn has_deny_unsafe(code: &[&Token]) -> bool {
    for i in 0..code.len() {
        if code[i].is_punct('#')
            && code.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && code.get(i + 2).is_some_and(|t| t.is_punct('['))
            && code
                .get(i + 3)
                .is_some_and(|t| t.is_ident("deny") || t.is_ident("forbid"))
        {
            let mut j = i + 4;
            while j < code.len() && !code[j].is_punct(']') {
                if code[j].is_ident("unsafe_code") {
                    return true;
                }
                j += 1;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_excluded() {
        let src = "fn hot() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let diags = analyze_source("crates/serve/src/worker.rs", src);
        let panics: Vec<_> = diags.iter().filter(|d| d.rule == Rule::Panic).collect();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_not_excluded() {
        let src = "#[cfg(not(test))]\nfn hot() { x.unwrap(); }\n";
        let diags = analyze_source("crates/serve/src/worker.rs", src);
        assert!(diags.iter().any(|d| d.rule == Rule::Panic));
    }

    #[test]
    fn array_literals_after_keywords_are_not_indexing() {
        let src = "fn f() { for t in [2, 4] { g(t); } let a = x[t]; }";
        let diags = analyze_source("crates/serve/src/worker.rs", src);
        let idx: Vec<_> = diags.iter().filter(|d| d.rule == Rule::Index).collect();
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn out_of_scope_files_are_silent() {
        let src = "fn f() { x.unwrap(); let h = HashMap::new(); }";
        assert!(analyze_source("crates/channel/tests/proptests.rs", src).is_empty());
    }
}
