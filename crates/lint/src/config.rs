//! Rule scopes and the crate layering — the single place that encodes
//! *where* each contract applies.
//!
//! Scopes are path predicates over workspace-root-relative paths
//! (forward slashes). An entry ending in `/` matches as a directory
//! prefix; anything else matches the exact file. `exclude` entries win
//! over `include` entries.
//!
//! # Adding a crate
//!
//! New workspace crates must be given a layer in [`LAYERS`] — the
//! layering rule fails on manifests whose package it does not know,
//! which is deliberate: an unplaced crate has an unchecked dependency
//! direction. Pick the smallest layer strictly above everything the
//! crate depends on (dev-dependencies included).

/// A set of include/exclude path patterns.
pub struct Scope {
    include: &'static [&'static str],
    exclude: &'static [&'static str],
}

impl Scope {
    pub const fn new(include: &'static [&'static str], exclude: &'static [&'static str]) -> Self {
        Self { include, exclude }
    }

    /// Whether `rel` (root-relative, forward slashes) is in scope.
    pub fn contains(&self, rel: &str) -> bool {
        let matches = |pat: &str| {
            if let Some(dir) = pat.strip_suffix('/') {
                rel.starts_with(dir) && rel.as_bytes().get(dir.len()) == Some(&b'/')
            } else {
                rel == pat
            }
        };
        self.include.iter().any(|p| matches(p)) && !self.exclude.iter().any(|p| matches(p))
    }
}

/// Panic-freedom scope: the serve library hot path, the wire
/// codec/transport/gateway (a malformed network frame must become a
/// typed error or a NACK, never an abort), and the tensor
/// micro-kernels plus their persistent compute pool (a worker that
/// panics mid-job would deadlock every caller parked on the pool's
/// condvars). Driver binaries are excluded — a CLI may abort on
/// misuse. `#[cfg(test)]` modules are always exempt.
pub const PANIC_SCOPE: Scope = Scope::new(
    &[
        "crates/serve/src/",
        "crates/wire/src/",
        "crates/tensor/src/kernels.rs",
        "crates/tensor/src/pool.rs",
    ],
    &["crates/serve/src/bin/", "crates/wire/src/bin/"],
);

/// Slice-indexing scope — same surface as [`PANIC_SCOPE`]: an
/// out-of-bounds index is a panic with worse diagnostics.
pub const INDEX_SCOPE: Scope = PANIC_SCOPE;

/// Determinism scope: every numeric path that feeds the paper's
/// reproduction or the bitwise-reproducibility contracts. Driver
/// binaries are excluded (flag parsing over a `HashMap` cannot change
/// a score); serve and bench are excluded because wall-clock timing is
/// their job — scores stay deterministic because everything they call
/// lives inside this scope. One serve file is pulled *in* by exact
/// path: the per-sensor state table, whose iteration order assembles
/// the temporal scoring batches and must be a pure function of the
/// sensor ids (`BTreeMap`, never a seeded hasher).
pub const DETERMINISM_SCOPE: Scope = Scope::new(
    &[
        "crates/tensor/src/",
        "crates/nn/src/",
        "crates/stats/src/",
        "crates/channel/src/",
        "crates/dataset/src/",
        "crates/baselines/src/",
        "crates/sim/src/",
        "crates/core/src/",
        "crates/serve/src/state.rs",
    ],
    &["crates/core/src/bin/"],
);

/// Raw-threading ban: files whose parallelism must route through the
/// persistent compute pool (`crates/tensor/src/pool.rs`). A stray
/// `thread::spawn`/`thread::scope` in the kernels would silently
/// bypass the pool — per-call spawn/join overhead creeping back in is
/// exactly the regression the pool PR removed, so the ban is
/// structural (no `lint:allow` escape hatch). The pool module itself
/// is excluded: it is the one place allowed to create worker threads.
pub const SPAWN_SCOPE: Scope = Scope::new(&["crates/tensor/src/kernels.rs"], &[]);

/// Concurrency-model scope: the files the cross-file pass (lock-order
/// graph, condvar predicate discipline, atomic-ordering audit of
/// DESIGN.md §13) reads as one program. Exactly the three hand-rolled
/// concurrency subsystems — the condvar/epoch compute pool, the
/// readiness reactor gateway, and the supervised serve pipeline — by
/// explicit file list: lock identity is by field *name*, so widening
/// this to unrelated modules would merge unrelated names into one
/// graph.
pub const CONCURRENCY_SCOPE: Scope = Scope::new(
    &[
        "crates/tensor/src/pool.rs",
        "crates/wire/src/reactor.rs",
        "crates/wire/src/gateway.rs",
        "crates/serve/src/queue.rs",
        "crates/serve/src/supervisor.rs",
        "crates/serve/src/worker.rs",
        "crates/serve/src/trainer.rs",
        "crates/serve/src/runtime.rs",
    ],
    &[],
);

/// Result-swallow scope: the serve and wire hot paths, where a
/// `let _ =` on a lock, join or send result silently converts a
/// shutdown-ordering bug into a hang or a lost panic. Driver binaries
/// are excluded (a CLI may discard its final flush).
pub const SWALLOW_SCOPE: Scope = Scope::new(
    &["crates/serve/src/", "crates/wire/src/"],
    &["crates/serve/src/bin/", "crates/wire/src/bin/"],
);

/// Paths the file walker skips entirely. The fixture corpus contains
/// *deliberate* violations the self-tests assert on.
pub const WALK_EXCLUDE: &[&str] = &["crates/lint/tests/fixtures/", "target/"];

/// The dependency layering, lowest (most fundamental) first. Every
/// manifest dependency edge must point to a **strictly lower** layer:
/// `tensor → nn → core → serve` with no back- or lateral edges.
pub const LAYERS: &[(&str, u32)] = &[
    // Offline shims and the linter itself: depend on nothing in-tree.
    ("occusense-rand", 0),
    ("occusense-criterion", 0),
    ("occusense-lint", 0),
    // proptest-shim sits above rand-shim (seeded case generation).
    ("occusense-proptest", 1),
    // The numeric substrate.
    ("occusense-tensor", 2),
    // Domain crates over tensor.
    ("occusense-stats", 3),
    ("occusense-channel", 3),
    ("occusense-dataset", 3),
    ("occusense-nn", 3),
    ("occusense-baselines", 3),
    // The simulator composes channel + dataset.
    ("occusense-sim", 4),
    // The paper pipeline composes everything below.
    ("occusense-core", 5),
    // The serving runtime sits on core.
    ("occusense-serve", 6),
    // The wire protocol + gateway feed records into serve.
    ("occusense-wire", 7),
    // The fleet controller orchestrates whole wire gateways as
    // processes.
    ("occusense-fleet", 8),
    // Harnesses see the whole stack, wire included.
    ("occusense-bench", 8),
    ("occusense-integration", 8),
];

/// Layer of `package`, if known.
pub fn layer_of(package: &str) -> Option<u32> {
    LAYERS
        .iter()
        .find(|(name, _)| *name == package)
        .map(|&(_, layer)| layer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_scopes_match_prefixes_not_substrings() {
        assert!(PANIC_SCOPE.contains("crates/serve/src/worker.rs"));
        assert!(PANIC_SCOPE.contains("crates/wire/src/codec.rs"));
        // The readiness reactor sits on the network boundary: its
        // in-place frame parsing and write-ring arithmetic must stay
        // panic- and index-free like the codec beneath it.
        assert!(PANIC_SCOPE.contains("crates/wire/src/reactor.rs"));
        assert!(INDEX_SCOPE.contains("crates/wire/src/reactor.rs"));
        assert!(PANIC_SCOPE.contains("crates/wire/src/gateway.rs"));
        assert!(PANIC_SCOPE.contains("crates/tensor/src/kernels.rs"));
        // The compute pool: a panicking worker would strand every
        // caller parked on the pool condvars, so panic- and index-
        // freedom extend to it.
        assert!(PANIC_SCOPE.contains("crates/tensor/src/pool.rs"));
        assert!(INDEX_SCOPE.contains("crates/tensor/src/pool.rs"));
        assert!(!PANIC_SCOPE.contains("crates/serve/src/bin/serve_sim.rs"));
        assert!(!PANIC_SCOPE.contains("crates/wire/src/bin/wire_storm.rs"));
        assert!(!PANIC_SCOPE.contains("crates/serve/srcx/worker.rs"));
        assert!(!PANIC_SCOPE.contains("crates/tensor/src/lib.rs"));
    }

    #[test]
    fn spawn_scope_bans_raw_threading_in_the_kernels_only() {
        assert!(SPAWN_SCOPE.contains("crates/tensor/src/kernels.rs"));
        // The pool is the one module allowed to create threads; the
        // rest of the tensor crate never needed them.
        assert!(!SPAWN_SCOPE.contains("crates/tensor/src/pool.rs"));
        assert!(!SPAWN_SCOPE.contains("crates/tensor/src/matrix.rs"));
        assert!(!SPAWN_SCOPE.contains("crates/nn/src/train.rs"));
    }

    #[test]
    fn concurrency_scope_is_the_exact_file_list() {
        for file in [
            "crates/tensor/src/pool.rs",
            "crates/wire/src/reactor.rs",
            "crates/wire/src/gateway.rs",
            "crates/serve/src/queue.rs",
            "crates/serve/src/supervisor.rs",
            "crates/serve/src/worker.rs",
            "crates/serve/src/trainer.rs",
            "crates/serve/src/runtime.rs",
        ] {
            assert!(CONCURRENCY_SCOPE.contains(file), "{file}");
        }
        // Exact files, not directories: other serve modules carry no
        // locks and must not leak their field names into the graph.
        assert!(!CONCURRENCY_SCOPE.contains("crates/serve/src/state.rs"));
        assert!(!CONCURRENCY_SCOPE.contains("crates/tensor/src/kernels.rs"));
        assert!(!CONCURRENCY_SCOPE.contains("crates/wire/src/bin/wire_storm.rs"));
    }

    #[test]
    fn swallow_scope_covers_serve_and_wire_sources_not_bins() {
        assert!(SWALLOW_SCOPE.contains("crates/serve/src/worker.rs"));
        assert!(SWALLOW_SCOPE.contains("crates/wire/src/gateway.rs"));
        assert!(!SWALLOW_SCOPE.contains("crates/serve/src/bin/serve_sim.rs"));
        assert!(!SWALLOW_SCOPE.contains("crates/wire/src/bin/wire_storm.rs"));
        assert!(!SWALLOW_SCOPE.contains("crates/tensor/src/pool.rs"));
    }

    #[test]
    fn determinism_scope_covers_the_gru_and_the_serve_state_table() {
        assert!(DETERMINISM_SCOPE.contains("crates/nn/src/gru.rs"));
        // The one exact-file serve entry: temporal batch assembly.
        assert!(DETERMINISM_SCOPE.contains("crates/serve/src/state.rs"));
        // ...and it pulls in nothing else from serve, which keeps its
        // wall clocks and timing histograms legal.
        assert!(!DETERMINISM_SCOPE.contains("crates/serve/src/worker.rs"));
        assert!(!DETERMINISM_SCOPE.contains("crates/serve/src/metrics.rs"));
        assert!(!DETERMINISM_SCOPE.contains("crates/serve/src/state.rs/nested.rs"));
    }

    #[test]
    fn layers_are_known_for_every_workspace_crate() {
        for name in [
            "occusense-tensor",
            "occusense-nn",
            "occusense-core",
            "occusense-serve",
            "occusense-wire",
        ] {
            assert!(layer_of(name).is_some(), "{name}");
        }
        assert!(layer_of("left-pad").is_none());
    }

    #[test]
    fn wire_sits_between_serve_and_the_harnesses() {
        let serve = layer_of("occusense-serve").unwrap();
        let wire = layer_of("occusense-wire").unwrap();
        let bench = layer_of("occusense-bench").unwrap();
        let integration = layer_of("occusense-integration").unwrap();
        assert!(serve < wire, "serve must never depend on wire");
        assert!(
            wire < bench && wire < integration,
            "harnesses may bench/test wire"
        );
    }
}
