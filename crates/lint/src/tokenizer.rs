//! A lightweight Rust tokenizer: the lexical substrate every source
//! rule runs on.
//!
//! The analyzer must never mistake `unwrap(` inside a string literal or
//! a comment for a real call site, so rules do not grep raw text — they
//! walk this token stream, in which strings, char literals, lifetimes
//! and (nested) comments are single opaque tokens. The lexer is *not* a
//! full Rust grammar (no `syn` — the build environment is offline); it
//! recognises exactly the lexical classes the rules need:
//!
//! * line comments (kept, with text — lint directives live there),
//! * block comments (kept, nestable),
//! * string literals: plain, byte (`b"…"`), raw (`r#"…"#`, any hash
//!   count), raw byte (`br#"…"#`),
//! * char and byte-char literals vs lifetimes (`'a'` vs `'a`),
//! * raw identifiers (`r#match`),
//! * identifiers, numbers, and single-character punctuation.
//!
//! Every token carries a 1-based `line`/`col` so diagnostics point at
//! the exact source position.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, stored
    /// without the `r#` prefix).
    Ident,
    /// Lifetime such as `'a` (text includes the quote).
    Lifetime,
    /// Numeric literal.
    Number,
    /// String literal of any flavour (text includes delimiters).
    Str,
    /// Char or byte-char literal.
    Char,
    /// `// …` comment (text includes the slashes).
    LineComment,
    /// `/* … */` comment, possibly nested.
    BlockComment,
    /// A single punctuation character (text is that character).
    Punct,
}

/// One lexeme with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based source column (in characters) of the first character.
    pub col: u32,
    /// 0-based byte offset of the token's first character — the
    /// stable sort key diagnostics are ordered by (lines and columns
    /// are for humans; offsets make CI artifact diffs byte-exact).
    pub offset: u32,
}

impl Token {
    /// True for `Punct` tokens equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for `Ident` tokens equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    offset: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        self.offset += c.len_utf8() as u32;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn take_while(&mut self, out: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if pred(c) {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Unterminated literals and comments end at EOF
/// rather than erroring — the linter reports on what it can see.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        offset: 0,
    };
    let mut tokens = Vec::new();

    while let Some(c) = lx.peek(0) {
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let (line, col, offset) = (lx.line, lx.col, lx.offset);
        let mut text = String::new();
        let kind = match c {
            '/' if lx.peek(1) == Some('/') => {
                lx.take_while(&mut text, |c| c != '\n');
                TokenKind::LineComment
            }
            '/' if lx.peek(1) == Some('*') => {
                lex_block_comment(&mut lx, &mut text);
                TokenKind::BlockComment
            }
            '"' => {
                lex_string(&mut lx, &mut text);
                TokenKind::Str
            }
            'b' if lx.peek(1) == Some('"') => {
                text.push('b');
                lx.bump();
                lex_string(&mut lx, &mut text);
                TokenKind::Str
            }
            'b' if lx.peek(1) == Some('\'') => {
                text.push('b');
                lx.bump();
                lex_char(&mut lx, &mut text);
                TokenKind::Char
            }
            'r' | 'b' if raw_string_hashes(&lx, c).is_some() => {
                let hashes = raw_string_hashes(&lx, c).unwrap_or(0);
                lex_raw_string(&mut lx, &mut text, hashes);
                TokenKind::Str
            }
            'r' if lx.peek(1) == Some('#') && lx.peek(2).is_some_and(is_ident_start) => {
                lx.bump();
                lx.bump();
                lx.take_while(&mut text, is_ident_continue);
                TokenKind::Ident
            }
            '\'' => {
                if lx.peek(1) == Some('\\')
                    || (lx.peek(1).is_some_and(|c| c != '\'') && lx.peek(2) == Some('\''))
                {
                    lex_char(&mut lx, &mut text);
                    TokenKind::Char
                } else {
                    text.push('\'');
                    lx.bump();
                    lx.take_while(&mut text, is_ident_continue);
                    TokenKind::Lifetime
                }
            }
            c if is_ident_start(c) => {
                lx.take_while(&mut text, is_ident_continue);
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => {
                lex_number(&mut lx, &mut text);
                TokenKind::Number
            }
            c => {
                text.push(c);
                lx.bump();
                TokenKind::Punct
            }
        };
        tokens.push(Token {
            kind,
            text,
            line,
            col,
            offset,
        });
    }
    tokens
}

/// If the lexer sits on a raw-string opener (`r"`, `r#…#"`, `br"`,
/// `br#…#"`), returns the hash count; `None` otherwise.
fn raw_string_hashes(lx: &Lexer, first: char) -> Option<usize> {
    let mut j = 1;
    if first == 'b' {
        if lx.peek(1) != Some('r') {
            return None;
        }
        j = 2;
    }
    let mut hashes = 0;
    while lx.peek(j) == Some('#') {
        hashes += 1;
        j += 1;
    }
    (lx.peek(j) == Some('"')).then_some(hashes)
}

fn lex_block_comment(lx: &mut Lexer, text: &mut String) {
    let mut depth = 0usize;
    while let Some(c) = lx.peek(0) {
        if c == '/' && lx.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            lx.bump();
            lx.bump();
        } else if c == '*' && lx.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            lx.bump();
            lx.bump();
            if depth == 0 {
                return;
            }
        } else {
            text.push(c);
            lx.bump();
        }
    }
}

fn lex_string(lx: &mut Lexer, text: &mut String) {
    text.push('"');
    lx.bump(); // opening quote
    while let Some(c) = lx.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(esc) = lx.bump() {
                text.push(esc);
            }
        } else if c == '"' {
            return;
        }
    }
}

fn lex_raw_string(lx: &mut Lexer, text: &mut String, hashes: usize) {
    // Consume the full opener: optional `b`, `r`, hashes, quote.
    while let Some(c) = lx.peek(0) {
        text.push(c);
        lx.bump();
        if c == '"' {
            break;
        }
    }
    while let Some(c) = lx.bump() {
        text.push(c);
        if c == '"' {
            let mut matched = 0;
            while matched < hashes && lx.peek(0) == Some('#') {
                text.push('#');
                lx.bump();
                matched += 1;
            }
            if matched == hashes {
                return;
            }
        }
    }
}

fn lex_char(lx: &mut Lexer, text: &mut String) {
    text.push('\'');
    lx.bump(); // opening quote
    while let Some(c) = lx.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(esc) = lx.bump() {
                text.push(esc);
            }
        } else if c == '\'' {
            return;
        }
    }
}

fn lex_number(lx: &mut Lexer, text: &mut String) {
    while let Some(c) = lx.peek(0) {
        // Digits/idents, a decimal point followed by a digit (so `1..`
        // and `1.method()` stop at the dot), or an exponent sign.
        let continues = is_ident_continue(c)
            || (c == '.' && lx.peek(1).is_some_and(|d| d.is_ascii_digit()))
            || ((c == '+' || c == '-') && text.ends_with(['e', 'E']));
        if continues {
            text.push(c);
            lx.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn unwrap_in_string_and_comment_is_not_an_ident() {
        let src = r#"
            let msg = "please call unwrap() later"; // never unwrap() here
            /* unwrap( in a block comment */
            value.unwrap();
        "#;
        let idents: Vec<String> = tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text == "unwrap")
            .map(|t| t.text)
            .collect();
        assert_eq!(idents.len(), 1, "only the real call site is an ident");
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let toks = kinds(r###"let x = r#"has "quotes" and unwrap("#;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap(")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = kinds("/* outer /* inner */ still outer */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "ident".into()));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = tokenize("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn offsets_are_byte_offsets() {
        let toks = tokenize("ab\n  cd");
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 5);
        // Multi-byte characters advance the offset by their UTF-8
        // width, not by one.
        let toks = tokenize("\"é\" x");
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 5);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let toks = kinds(r#"let s = "with \" escaped"; next"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "next"));
    }
}
