//! Diagnostic types, rule identities, and the text / JSON renderers.

use std::fmt;

/// Every rule the analyzer can fire, grouped into the contract
/// families of DESIGN.md §9. The family decides the process exit bit,
/// so CI logs show *which* contract broke from the exit code alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in a panic-free scope.
    Panic,
    /// Slice/array indexing (`x[i]`, `&x[a..b]`) in a panic-free scope.
    Index,
    /// Nondeterminism source (`HashMap`, `Instant::now`, …) in a
    /// numeric path.
    Determinism,
    /// Allocating call inside a `// lint:no_alloc` region.
    Alloc,
    /// Missing `#![deny(unsafe_code)]` crate-root attribute, or an
    /// `unsafe` token anywhere.
    Unsafe,
    /// A manifest dependency edge that points up (or sideways) in the
    /// crate layering.
    Layering,
    /// Raw `thread::spawn`/`thread::scope` in a file whose threading
    /// must route through the persistent compute pool.
    Spawn,
    /// A cycle in the cross-file lock-order graph: two functions that
    /// acquire the same named locks in opposite orders.
    LockOrder,
    /// A `Condvar::wait`/`wait_timeout` not re-checked by an enclosing
    /// `while`/`loop` predicate (an `if`-guarded or bare wait loses
    /// wakeups).
    Condvar,
    /// `Ordering::Relaxed` on an atomic that other sites access with
    /// an acquire/release ordering, or that gates a condvar wait loop.
    Atomics,
    /// `let _ =` / `.ok()` discarding the `Result` of a lock, send,
    /// join or queue call on a serve/wire hot path.
    Swallow,
    /// Malformed/unknown `lint:` directive, missing reason, unmatched
    /// region marker.
    Directive,
}

/// Exit-code bits per rule family (OR-ed together; 0 = clean).
pub const EXIT_PANIC: i32 = 1;
pub const EXIT_DETERMINISM: i32 = 2;
pub const EXIT_ALLOC: i32 = 4;
pub const EXIT_LAYERING: i32 = 8;
pub const EXIT_DIRECTIVE: i32 = 16;
pub const EXIT_CONCURRENCY: i32 = 32;

impl Rule {
    /// Every rule the analyzer knows, in diagnostic sort order — the
    /// roster the DESIGN.md §9 table is asserted against.
    pub const ALL: [Rule; 12] = [
        Rule::Panic,
        Rule::Index,
        Rule::Determinism,
        Rule::Alloc,
        Rule::Unsafe,
        Rule::Layering,
        Rule::Spawn,
        Rule::LockOrder,
        Rule::Condvar,
        Rule::Atomics,
        Rule::Swallow,
        Rule::Directive,
    ];

    /// The name used in diagnostics and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::Determinism => "determinism",
            Rule::Alloc => "alloc",
            Rule::Unsafe => "unsafe",
            Rule::Layering => "layering",
            Rule::Spawn => "spawn",
            Rule::LockOrder => "lock-order",
            Rule::Condvar => "condvar",
            Rule::Atomics => "atomics",
            Rule::Swallow => "swallow",
            Rule::Directive => "directive",
        }
    }

    /// The family bit this rule contributes to the process exit code.
    pub fn exit_bit(self) -> i32 {
        match self {
            Rule::Panic | Rule::Index => EXIT_PANIC,
            Rule::Determinism => EXIT_DETERMINISM,
            Rule::Alloc => EXIT_ALLOC,
            Rule::Unsafe | Rule::Layering | Rule::Spawn => EXIT_LAYERING,
            Rule::LockOrder | Rule::Condvar | Rule::Atomics | Rule::Swallow => EXIT_CONCURRENCY,
            Rule::Directive => EXIT_DIRECTIVE,
        }
    }

    /// Rules an inline `lint:allow` may waive. `unsafe`/`layering`/
    /// `spawn` are structural contracts with no escape hatch, as are
    /// `lock-order` (a deadlock cannot be waived into correctness) and
    /// `condvar` (a lost wakeup neither); `directive` violations are
    /// errors in the escape hatch itself.
    pub fn allowable(name: &str) -> bool {
        matches!(
            name,
            "panic" | "index" | "determinism" | "alloc" | "atomics" | "swallow"
        )
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation at a source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Workspace-root-relative path with forward slashes.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// 0-based byte offset of the violation in the file — the stable
    /// sort key (filled in by [`crate::run`] from the file contents;
    /// `0` until then).
    pub offset: u32,
    pub rule: Rule,
    pub message: String,
}

impl Diagnostic {
    pub fn new(file: &str, line: u32, col: u32, rule: Rule, message: impl Into<String>) -> Self {
        Self {
            file: file.to_string(),
            line,
            col,
            offset: 0,
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Byte offset of 1-based (`line`, `col`) in `src` (columns count
/// characters, offsets count bytes). Positions past the end of the
/// text saturate at its length, so a diagnostic on a synthetic
/// position still gets a stable key.
pub fn byte_offset(src: &str, line: u32, col: u32) -> u32 {
    let mut cur_line = 1u32;
    let mut cur_col = 1u32;
    let mut offset = 0u32;
    for c in src.chars() {
        if cur_line == line && cur_col == col {
            return offset;
        }
        if cur_line > line {
            break;
        }
        offset += c.len_utf8() as u32;
        if c == '\n' {
            cur_line += 1;
            cur_col = 1;
        } else {
            cur_col += 1;
        }
    }
    offset
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_a_distinct_name_and_a_family_bit() {
        let mut names = Vec::new();
        for rule in Rule::ALL {
            assert!(rule.exit_bit().count_ones() == 1, "{rule:?}");
            names.push(rule.name());
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Rule::ALL.len());
    }

    #[test]
    fn concurrency_rules_share_bit_32() {
        for rule in [Rule::LockOrder, Rule::Condvar, Rule::Atomics, Rule::Swallow] {
            assert_eq!(rule.exit_bit(), EXIT_CONCURRENCY);
        }
    }

    #[test]
    fn lock_order_and_condvar_have_no_hatch() {
        assert!(!Rule::allowable("lock-order"));
        assert!(!Rule::allowable("condvar"));
        assert!(Rule::allowable("atomics"));
        assert!(Rule::allowable("swallow"));
    }

    #[test]
    fn byte_offset_counts_bytes_not_chars() {
        let src = "ab\n\u{e9}cd\n";
        assert_eq!(byte_offset(src, 1, 1), 0);
        assert_eq!(byte_offset(src, 2, 1), 3);
        // `é` is two bytes, so column 2 of line 2 is offset 5.
        assert_eq!(byte_offset(src, 2, 2), 5);
        // Past-the-end saturates.
        assert_eq!(byte_offset(src, 9, 9), src.len() as u32);
    }
}
