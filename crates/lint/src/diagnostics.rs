//! Diagnostic types, rule identities, and the text / JSON renderers.

use std::fmt;

/// Every rule the analyzer can fire, grouped into the four contract
/// families of DESIGN.md §9. The family decides the process exit bit,
/// so CI logs show *which* contract broke from the exit code alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in a panic-free scope.
    Panic,
    /// Slice/array indexing (`x[i]`, `&x[a..b]`) in a panic-free scope.
    Index,
    /// Nondeterminism source (`HashMap`, `Instant::now`, …) in a
    /// numeric path.
    Determinism,
    /// Allocating call inside a `// lint:no_alloc` region.
    Alloc,
    /// Missing `#![deny(unsafe_code)]` crate-root attribute, or an
    /// `unsafe` token anywhere.
    Unsafe,
    /// A manifest dependency edge that points up (or sideways) in the
    /// crate layering.
    Layering,
    /// Raw `thread::spawn`/`thread::scope` in a file whose threading
    /// must route through the persistent compute pool.
    Spawn,
    /// Malformed/unknown `lint:` directive, missing reason, unmatched
    /// region marker.
    Directive,
}

/// Exit-code bits per rule family (OR-ed together; 0 = clean).
pub const EXIT_PANIC: i32 = 1;
pub const EXIT_DETERMINISM: i32 = 2;
pub const EXIT_ALLOC: i32 = 4;
pub const EXIT_LAYERING: i32 = 8;
pub const EXIT_DIRECTIVE: i32 = 16;

impl Rule {
    /// The kebab-free name used in diagnostics and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::Determinism => "determinism",
            Rule::Alloc => "alloc",
            Rule::Unsafe => "unsafe",
            Rule::Layering => "layering",
            Rule::Spawn => "spawn",
            Rule::Directive => "directive",
        }
    }

    /// The family bit this rule contributes to the process exit code.
    pub fn exit_bit(self) -> i32 {
        match self {
            Rule::Panic | Rule::Index => EXIT_PANIC,
            Rule::Determinism => EXIT_DETERMINISM,
            Rule::Alloc => EXIT_ALLOC,
            Rule::Unsafe | Rule::Layering | Rule::Spawn => EXIT_LAYERING,
            Rule::Directive => EXIT_DIRECTIVE,
        }
    }

    /// Rules an inline `lint:allow` may waive. `unsafe`/`layering`/
    /// `spawn` are structural contracts with no escape hatch, and
    /// `directive` violations are errors in the escape hatch itself.
    pub fn allowable(name: &str) -> bool {
        matches!(name, "panic" | "index" | "determinism" | "alloc")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation at a source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Workspace-root-relative path with forward slashes.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: Rule,
    pub message: String,
}

impl Diagnostic {
    pub fn new(file: &str, line: u32, col: u32, rule: Rule, message: impl Into<String>) -> Self {
        Self {
            file: file.to_string(),
            line,
            col,
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
