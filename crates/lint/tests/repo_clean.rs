//! The gate itself: linting the real workspace tree must come back
//! clean. This is the in-test mirror of the CI job, so a PR that
//! introduces a violation fails `cargo test` locally before it ever
//! reaches CI.

use std::path::Path;

#[test]
fn the_workspace_tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root");
    let report = occusense_lint::run(root).expect("walk the workspace");
    assert!(
        report.sources_scanned > 100,
        "suspiciously few sources scanned ({}) — walk broken?",
        report.sources_scanned
    );
    assert!(
        report.manifests_checked >= 10,
        "suspiciously few manifests checked ({})",
        report.manifests_checked
    );
    assert_eq!(
        report.exit_code(),
        0,
        "workspace has lint violations:\n{}",
        report.render_text()
    );
}

#[test]
fn the_real_lock_graph_is_populated_and_acyclic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root");
    let report = occusense_lint::run(root).expect("walk the workspace");
    // The declared locks of the three concurrency subsystems all show
    // up as nodes — the graph covers the scope even when (as today)
    // no path holds two named locks at once.
    for lock in ["ctrl", "inputs", "state", "registry", "incoming"] {
        assert!(
            report.lock_graph.nodes.iter().any(|n| n == lock),
            "lock `{lock}` missing from graph nodes: {:?}",
            report.lock_graph.nodes
        );
    }
    assert!(
        report.lock_graph.cycles().is_empty(),
        "the real tree has a lock-order cycle:\n{}",
        report.lock_graph.to_dot()
    );
    // The DOT export renders and is deterministic.
    let dot = report.lock_graph.to_dot();
    assert!(dot.starts_with("digraph lock_order {"));
    assert_eq!(dot, report.lock_graph.to_dot());
}

#[test]
fn report_diagnostics_come_back_sorted() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root");
    let report = occusense_lint::run(root).expect("walk the workspace");
    let keys: Vec<_> = report
        .diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.offset, d.line, d.col, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "run() must return normalized diagnostics");
}
