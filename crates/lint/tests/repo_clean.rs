//! The gate itself: linting the real workspace tree must come back
//! clean. This is the in-test mirror of the CI job, so a PR that
//! introduces a violation fails `cargo test` locally before it ever
//! reaches CI.

use std::path::Path;

#[test]
fn the_workspace_tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root");
    let report = occusense_lint::run(root).expect("walk the workspace");
    assert!(
        report.sources_scanned > 100,
        "suspiciously few sources scanned ({}) — walk broken?",
        report.sources_scanned
    );
    assert!(
        report.manifests_checked >= 10,
        "suspiciously few manifests checked ({})",
        report.manifests_checked
    );
    assert_eq!(
        report.exit_code(),
        0,
        "workspace has lint violations:\n{}",
        report.render_text()
    );
}
