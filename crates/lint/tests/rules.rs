//! Fixture-corpus tests: every rule family must fire on its seeded
//! violation fixture and stay silent on the clean twin.
//!
//! Fixtures live under `tests/fixtures/` — a directory the repo walk
//! explicitly excludes ([`occusense_lint::config::WALK_EXCLUDE`]), so
//! the corpus never trips the gate on the real tree. Each fixture is
//! analyzed under a *pretended* in-scope path (rule scopes match on
//! root-relative paths, not file contents), which also pins the scope
//! table itself: a fixture scored under a serve path must behave
//! differently from one scored under an out-of-scope path.

use occusense_lint::concurrency::{self, LockGraph};
use occusense_lint::diagnostics::{Diagnostic, Rule};
use occusense_lint::manifest;
use occusense_lint::rules::analyze_source;

const SERVE_PATH: &str = "crates/serve/src/fixture.rs";
const SERVE_ROOT: &str = "crates/serve/src/lib.rs";
const NUMERIC_PATH: &str = "crates/nn/src/fixture.rs";
const NO_SCOPE_PATH: &str = "crates/lint/src/fixture.rs";
const STATE_TABLE_PATH: &str = "crates/serve/src/state.rs";
const KERNELS_PATH: &str = "crates/tensor/src/kernels.rs";
const POOL_PATH: &str = "crates/tensor/src/pool.rs";
const QUEUE_PATH: &str = "crates/serve/src/queue.rs";

fn count(diags: &[Diagnostic], rule: Rule) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

/// Runs the cross-file concurrency pass on fixtures under pretended
/// in-scope paths.
fn conc(files: &[(&str, &str)]) -> (Vec<Diagnostic>, LockGraph) {
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    concurrency::analyze(&files)
}

// ---------------------------------------------------------------- panic

#[test]
fn panic_rule_fires_on_every_seeded_site() {
    let diags = analyze_source(SERVE_PATH, include_str!("fixtures/panic_violation.rs"));
    // unwrap, expect, panic!, unreachable!, todo!
    assert_eq!(count(&diags, Rule::Panic), 5, "{diags:?}");
}

#[test]
fn panic_rule_is_silent_on_the_clean_twin() {
    let diags = analyze_source(SERVE_PATH, include_str!("fixtures/panic_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_rule_respects_scope() {
    // The same violations under an out-of-scope path are not panic
    // violations (the file has no directives, so nothing else fires).
    let diags = analyze_source(NO_SCOPE_PATH, include_str!("fixtures/panic_violation.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- index

#[test]
fn index_rule_fires_on_every_seeded_site() {
    let diags = analyze_source(SERVE_PATH, include_str!("fixtures/index_violation.rs"));
    // v[i], rows[0], [1] chained, as_slice()[2]
    assert_eq!(count(&diags, Rule::Index), 4, "{diags:?}");
}

#[test]
fn index_rule_is_silent_on_the_clean_twin() {
    // Array literals, types, attributes and slice patterns all use `[`
    // without being indexing.
    let diags = analyze_source(SERVE_PATH, include_str!("fixtures/index_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------- determinism

#[test]
fn determinism_rule_fires_on_every_seeded_source() {
    let diags = analyze_source(
        NUMERIC_PATH,
        include_str!("fixtures/determinism_violation.rs"),
    );
    // HashMap and HashSet appear in use + annotation + constructor
    // positions; clocks and thread-count once each.
    assert!(count(&diags, Rule::Determinism) >= 5, "{diags:?}");
    for needle in [
        "HashMap",
        "HashSet",
        "Instant",
        "SystemTime",
        "available_parallelism",
    ] {
        assert!(
            diags.iter().any(|d| d.message.contains(needle)),
            "no diagnostic mentions {needle}: {diags:?}"
        );
    }
}

#[test]
fn determinism_rule_is_silent_on_the_clean_twin() {
    let diags = analyze_source(NUMERIC_PATH, include_str!("fixtures/determinism_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn determinism_rule_respects_scope() {
    // serve is allowed wall clocks and hash maps (it is not a numeric
    // path); the same source under the serve path raises nothing.
    let diags = analyze_source(
        SERVE_PATH,
        include_str!("fixtures/determinism_violation.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn determinism_rule_fires_on_a_hashmap_state_table() {
    // The one serve file inside the determinism scope, by exact path:
    // a hasher-keyed state table makes temporal batch assembly depend
    // on the per-process seed. `HashMap` appears in use, annotation
    // and constructor position.
    let diags = analyze_source(
        STATE_TABLE_PATH,
        include_str!("fixtures/state_table_violation.rs"),
    );
    assert_eq!(count(&diags, Rule::Determinism), 3, "{diags:?}");
    assert!(
        diags.iter().all(|d| d.message.contains("HashMap")),
        "{diags:?}"
    );
}

#[test]
fn determinism_rule_is_silent_on_the_btreemap_state_table() {
    let diags = analyze_source(
        STATE_TABLE_PATH,
        include_str!("fixtures/state_table_clean.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn the_state_table_entry_does_not_leak_onto_other_serve_files() {
    // The same HashMap table under any *other* serve path is legal —
    // the exact-file entry must not widen into a directory scope.
    let diags = analyze_source(
        SERVE_PATH,
        include_str!("fixtures/state_table_violation.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- alloc

#[test]
fn alloc_rule_fires_inside_declared_regions() {
    let diags = analyze_source(NUMERIC_PATH, include_str!("fixtures/alloc_violation.rs"));
    // Vec::new, push, extend, to_vec, format!, vec!
    assert_eq!(count(&diags, Rule::Alloc), 6, "{diags:?}");
}

#[test]
fn alloc_rule_is_silent_on_the_clean_twin() {
    // Allocation outside a region (cold paths) is legal; inside, the
    // waived one-time growth is excused.
    let diags = analyze_source(NUMERIC_PATH, include_str!("fixtures/alloc_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- spawn

#[test]
fn spawn_rule_fires_on_every_raw_threading_site() {
    let diags = analyze_source(KERNELS_PATH, include_str!("fixtures/spawn_violation.rs"));
    // thread::scope, thread::spawn, thread::Builder
    assert_eq!(count(&diags, Rule::Spawn), 3, "{diags:?}");
    assert!(
        diags
            .iter()
            .filter(|d| d.rule == Rule::Spawn)
            .all(|d| d.message.contains("compute pool")),
        "{diags:?}"
    );
}

#[test]
fn spawn_rule_is_silent_on_the_clean_twin() {
    let diags = analyze_source(KERNELS_PATH, include_str!("fixtures/spawn_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn spawn_rule_does_not_reach_the_pool_itself() {
    // pool.rs is the one module allowed to create worker threads; the
    // same sources under its path raise no spawn diagnostics (the pool
    // is still under the panic/index scopes, which these fixtures do
    // not trip).
    let diags = analyze_source(POOL_PATH, include_str!("fixtures/spawn_violation.rs"));
    assert_eq!(count(&diags, Rule::Spawn), 0, "{diags:?}");
}

#[test]
fn spawn_rule_has_no_escape_hatch() {
    // A lint:allow(spawn, ...) is itself a directive violation, and the
    // spawn diagnostic still stands.
    let src = "use std::thread;\n\
               pub fn f() {\n\
               // lint:allow(spawn, reason = \"testing the hatch\")\n\
               thread::spawn(|| 1);\n\
               }\n";
    let diags = analyze_source(KERNELS_PATH, src);
    assert_eq!(count(&diags, Rule::Spawn), 1, "{diags:?}");
    assert_eq!(count(&diags, Rule::Directive), 1, "{diags:?}");
}

// --------------------------------------------------------------- unsafe

#[test]
fn unsafe_rule_fires_on_block_and_missing_deny() {
    let diags = analyze_source(SERVE_ROOT, include_str!("fixtures/unsafe_violation.rs"));
    assert_eq!(count(&diags, Rule::Unsafe), 2, "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("crate root")),
        "{diags:?}"
    );
}

#[test]
fn unsafe_rule_is_silent_on_the_clean_twin() {
    let diags = analyze_source(SERVE_ROOT, include_str!("fixtures/unsafe_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn missing_deny_only_applies_to_crate_roots() {
    // A non-root file without the attribute is fine (the attribute is
    // crate-level; inner files cannot carry it).
    let diags = analyze_source(SERVE_PATH, include_str!("fixtures/unsafe_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------------ directive

#[test]
fn directive_rule_fires_on_every_malformed_hatch() {
    let diags = analyze_source(
        NO_SCOPE_PATH,
        include_str!("fixtures/directive_violation.rs"),
    );
    // missing reason, empty reason, unknown rule, unwaivable rule,
    // unknown directive, unmatched end-region, unclosed no_alloc
    assert_eq!(count(&diags, Rule::Directive), 7, "{diags:?}");
}

#[test]
fn directive_rule_is_silent_on_well_formed_hatches() {
    // Includes the grammar quoted inside doc comments, which must
    // never parse as directives — and live waivers that suppress real
    // violations under the panic scope.
    let diags = analyze_source(SERVE_PATH, include_str!("fixtures/directive_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------------- layering

#[test]
fn layering_rule_fires_on_a_back_edge() {
    let diags = manifest::check_manifest(
        "crates/tensor/Cargo.toml",
        include_str!("fixtures/layering_violation.toml"),
        &Default::default(),
    );
    assert_eq!(count(&diags, Rule::Layering), 1, "{diags:?}");
    assert!(diags[0].message.contains("occusense-serve"), "{diags:?}");
}

#[test]
fn layering_rule_is_silent_on_downward_edges() {
    let diags = manifest::check_manifest(
        "crates/serve/Cargo.toml",
        include_str!("fixtures/layering_clean.toml"),
        &Default::default(),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn layering_rule_fires_when_serve_reaches_into_wire() {
    let diags = manifest::check_manifest(
        "crates/serve/Cargo.toml",
        include_str!("fixtures/layering_wire_violation.toml"),
        &Default::default(),
    );
    assert_eq!(count(&diags, Rule::Layering), 1, "{diags:?}");
    assert!(diags[0].message.contains("occusense-wire"), "{diags:?}");
}

#[test]
fn layering_rule_is_silent_on_the_wire_crates_real_edges() {
    let diags = manifest::check_manifest(
        "crates/wire/Cargo.toml",
        include_str!("fixtures/layering_wire_clean.toml"),
        &Default::default(),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ----------------------------------------------------------- lock-order

#[test]
fn lock_order_fires_on_the_two_function_inversion() {
    let (diags, graph) = conc(&[(POOL_PATH, include_str!("fixtures/lock_order_violation.rs"))]);
    assert_eq!(count(&diags, Rule::LockOrder), 1, "{diags:?}");
    let msg = &diags[0].message;
    // Both witness paths are in the one diagnostic: the forward leg
    // and the inverted leg, each with its function.
    for needle in ["ctrl", "inputs", "`forward`", "`backward`"] {
        assert!(msg.contains(needle), "missing {needle} in: {msg}");
    }
    assert_eq!(graph.cycles().len(), 1, "{:?}", graph.cycles());
}

#[test]
fn lock_order_is_silent_on_the_clean_twin() {
    let (diags, graph) = conc(&[(POOL_PATH, include_str!("fixtures/lock_order_clean.rs"))]);
    assert!(diags.is_empty(), "{diags:?}");
    // The acyclic order is still recorded: one `ctrl -> inputs` edge
    // (the block-scoped and dropped guards contribute none).
    assert_eq!(graph.nodes, vec!["ctrl".to_string(), "inputs".to_string()]);
    assert_eq!(graph.edges.len(), 1, "{:?}", graph.edges);
    assert_eq!(
        (graph.edges[0].from.as_str(), graph.edges[0].to.as_str()),
        ("ctrl", "inputs")
    );
    assert!(graph.cycles().is_empty());
}

#[test]
fn lock_order_fires_across_files() {
    let pool = include_str!("fixtures/lock_order_cross_pool.rs");
    let queue = include_str!("fixtures/lock_order_cross_queue.rs");
    // Each half alone is clean...
    let (alone, _) = conc(&[(POOL_PATH, pool)]);
    assert!(alone.is_empty(), "{alone:?}");
    let (alone, _) = conc(&[(QUEUE_PATH, queue)]);
    assert!(alone.is_empty(), "{alone:?}");
    // ...together they invert, and the diagnostic names both files.
    let (diags, graph) = conc(&[(POOL_PATH, pool), (QUEUE_PATH, queue)]);
    assert_eq!(count(&diags, Rule::LockOrder), 1, "{diags:?}");
    let msg = &diags[0].message;
    assert!(msg.contains("pool.rs"), "{msg}");
    assert!(msg.contains("queue.rs"), "{msg}");
    assert_eq!(graph.cycles().len(), 1);
}

#[test]
fn lock_order_respects_scope() {
    // The same inversion outside the concurrency scope is invisible —
    // no diagnostics, no graph nodes.
    let (diags, graph) = conc(&[(
        NO_SCOPE_PATH,
        include_str!("fixtures/lock_order_violation.rs"),
    )]);
    assert!(diags.is_empty(), "{diags:?}");
    assert!(graph.nodes.is_empty());
}

#[test]
fn lock_graph_dot_export_marks_the_cycle() {
    let (_, graph) = conc(&[(POOL_PATH, include_str!("fixtures/lock_order_violation.rs"))]);
    let dot = graph.to_dot();
    assert!(dot.starts_with("digraph lock_order {"), "{dot}");
    assert!(dot.contains("\"ctrl\" -> \"inputs\""), "{dot}");
    assert!(dot.contains("\"inputs\" -> \"ctrl\""), "{dot}");
    assert!(dot.contains("color=red"), "{dot}");
    // Determinism: two renders are byte-identical.
    assert_eq!(dot, graph.to_dot());
}

// -------------------------------------------------------------- condvar

#[test]
fn condvar_fires_on_unlooped_waits_and_ignores_the_hatch() {
    let (diags, _) = conc(&[(QUEUE_PATH, include_str!("fixtures/condvar_violation.rs"))]);
    // Bare wait (its lint:allow is inert — condvar has no hatch),
    // if-guarded wait, if-guarded wait_timeout.
    assert_eq!(count(&diags, Rule::Condvar), 3, "{diags:?}");
}

#[test]
fn condvar_is_silent_on_the_clean_twin() {
    let (diags, _) = conc(&[(QUEUE_PATH, include_str!("fixtures/condvar_clean.rs"))]);
    assert!(diags.is_empty(), "{diags:?}");
}

// -------------------------------------------------------------- atomics

#[test]
fn atomics_fires_on_mixed_orderings_and_gated_waits() {
    let (diags, _) = conc(&[(POOL_PATH, include_str!("fixtures/atomics_violation.rs"))]);
    assert_eq!(count(&diags, Rule::Atomics), 3, "{diags:?}");
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("gates a condvar wait loop")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .filter(|d| d.message.contains("mixed orderings"))
            .count()
            == 2,
        "{diags:?}"
    );
}

#[test]
fn atomics_is_silent_on_consistent_or_waived_sites() {
    let (diags, _) = conc(&[(POOL_PATH, include_str!("fixtures/atomics_clean.rs"))]);
    assert!(diags.is_empty(), "{diags:?}");
}

// -------------------------------------------------------------- swallow

#[test]
fn swallow_fires_on_discarded_results() {
    let diags = analyze_source(SERVE_PATH, include_str!("fixtures/swallow_violation.rs"));
    // let _ = push, let _ = join, trailing send(...).ok()
    assert_eq!(count(&diags, Rule::Swallow), 3, "{diags:?}");
}

#[test]
fn swallow_is_silent_on_handled_bound_or_waived_results() {
    let diags = analyze_source(SERVE_PATH, include_str!("fixtures/swallow_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn swallow_respects_scope() {
    // The tensor pool joins its own workers with its own accounting;
    // the swallow rule is a serve/wire hot-path contract.
    let diags = analyze_source(POOL_PATH, include_str!("fixtures/swallow_violation.rs"));
    assert_eq!(count(&diags, Rule::Swallow), 0, "{diags:?}");
}

// ------------------------------------------------------------ exit bits

#[test]
fn concurrency_family_sets_exit_bit_32() {
    let mut report = occusense_lint::LintReport::default();
    report.diagnostics.extend(analyze_source(
        SERVE_PATH,
        include_str!("fixtures/swallow_violation.rs"),
    ));
    assert_eq!(report.exit_code(), 32);
    let (diags, _) = conc(&[(POOL_PATH, include_str!("fixtures/lock_order_violation.rs"))]);
    report.diagnostics.extend(diags);
    assert_eq!(report.exit_code(), 32);
}

#[test]
fn exit_code_is_the_or_of_offended_families() {
    let mut report = occusense_lint::LintReport::default();
    assert_eq!(report.exit_code(), 0);
    report.diagnostics.extend(analyze_source(
        SERVE_PATH,
        include_str!("fixtures/panic_violation.rs"),
    ));
    assert_eq!(report.exit_code(), 1);
    report.diagnostics.extend(analyze_source(
        NUMERIC_PATH,
        include_str!("fixtures/determinism_violation.rs"),
    ));
    assert_eq!(report.exit_code(), 1 | 2);
    report.diagnostics.extend(analyze_source(
        NO_SCOPE_PATH,
        include_str!("fixtures/directive_violation.rs"),
    ));
    assert_eq!(report.exit_code(), 1 | 2 | 16);
}

// --------------------------------------------------------- report order

#[test]
fn report_orders_by_path_then_offset_then_rule_and_json_is_stable() {
    let mk = |file: &str, offset: u32, rule: Rule| {
        let mut d = Diagnostic::new(file, 1, 1, rule, "x");
        d.offset = offset;
        d
    };
    let mut report = occusense_lint::LintReport::default();
    // Deliberately shuffled input.
    report.diagnostics = vec![
        mk("b.rs", 10, Rule::Panic),
        mk("a.rs", 20, Rule::Swallow),
        mk("a.rs", 5, Rule::Atomics),
        mk("a.rs", 5, Rule::Panic),
    ];
    report.normalize();
    let order: Vec<(&str, u32, Rule)> = report
        .diagnostics
        .iter()
        .map(|d| (d.file.as_str(), d.offset, d.rule))
        .collect();
    assert_eq!(
        order,
        vec![
            // Same file and offset: rule order breaks the tie.
            ("a.rs", 5, Rule::Panic),
            ("a.rs", 5, Rule::Atomics),
            ("a.rs", 20, Rule::Swallow),
            ("b.rs", 10, Rule::Panic),
        ]
    );
    // The JSON artifact carries the offset and renders in that order,
    // byte-identically across calls.
    let json = report.to_json();
    assert_eq!(json, report.to_json());
    let first_a = json.find("\"offset\": 5").expect("offset field");
    let then_a = json.find("\"offset\": 20").expect("offset field");
    let then_b = json.find("\"file\": \"b.rs\"").expect("file field");
    assert!(first_a < then_a && then_a < then_b, "{json}");
}
