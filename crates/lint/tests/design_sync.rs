//! DESIGN.md §9 ↔ code synchronisation: the documented rule table and
//! the analyzer's actual rule roster must match *exactly* — same
//! rules, same order, same exit bits. Adding a rule without its row
//! (or documenting a rule the code no longer has, or changing a
//! family's bit in only one place) is a test failure, not a silent
//! documentation drift.

use occusense_lint::diagnostics::Rule;

const DESIGN: &str = include_str!("../../../DESIGN.md");

/// Parses the §9 rule table: rows are `| \`name\` | … | bit |`.
fn documented_rules() -> Vec<(String, i32)> {
    let table = DESIGN
        .find("### Rule table")
        .map(|i| &DESIGN[i..])
        .expect("DESIGN.md has a '### Rule table' heading in §9");
    let mut rows = Vec::new();
    let mut started = false;
    for line in table.lines() {
        if line.starts_with("| `") {
            started = true;
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            // cells[0] and cells.last() are the empty fringes of the
            // leading/trailing pipes.
            let name = cells
                .get(1)
                .and_then(|c| c.strip_prefix('`'))
                .and_then(|c| c.split('`').next())
                .expect("rule cell wraps the name in backticks");
            let bit = cells
                .get(cells.len() - 2)
                .expect("exit-bit cell")
                .parse::<i32>()
                .expect("exit-bit cell is an integer");
            rows.push((name.to_string(), bit));
        } else if started && !line.starts_with('|') {
            break;
        }
    }
    rows
}

#[test]
fn design_rule_table_matches_the_rule_roster_exactly() {
    let documented = documented_rules();
    let actual: Vec<(String, i32)> = Rule::ALL
        .iter()
        .map(|r| (r.name().to_string(), r.exit_bit()))
        .collect();
    assert_eq!(
        documented, actual,
        "DESIGN.md §9 rule table is out of sync with diagnostics::Rule::ALL \
         (same rules, same order, same exit bits required)"
    );
}

#[test]
fn every_documented_exit_bit_is_a_real_family_bit() {
    use occusense_lint::diagnostics::{
        EXIT_ALLOC, EXIT_CONCURRENCY, EXIT_DETERMINISM, EXIT_DIRECTIVE, EXIT_LAYERING, EXIT_PANIC,
    };
    let families = [
        EXIT_PANIC,
        EXIT_DETERMINISM,
        EXIT_ALLOC,
        EXIT_LAYERING,
        EXIT_DIRECTIVE,
        EXIT_CONCURRENCY,
    ];
    for (name, bit) in documented_rules() {
        assert!(
            families.contains(&bit),
            "rule `{name}` documents exit bit {bit}, which is no family's bit"
        );
    }
    // ...and every family bit is claimed by at least one rule.
    for fam in families {
        assert!(
            Rule::ALL.iter().any(|r| r.exit_bit() == fam),
            "family bit {fam} has no rule"
        );
    }
}
