//! Lock-order fixture, clean twin: every path that holds both locks
//! takes `ctrl` before `inputs`, so the graph is one acyclic edge.
//! Block-scoped and explicitly dropped guards release before the next
//! acquisition and contribute no edge at all.

use std::sync::Mutex;

pub struct Shared {
    ctrl: Mutex<u64>,
    inputs: Mutex<Vec<f32>>,
}

pub fn forward(s: &Shared) {
    let mut ctrl = s.ctrl.lock().unwrap();
    let mut inputs = s.inputs.lock().unwrap();
    *ctrl += 1;
    inputs.clear();
}

pub fn block_scoped(s: &Shared) {
    {
        let mut ctrl = s.ctrl.lock().unwrap();
        *ctrl += 1;
    }
    let mut inputs = s.inputs.lock().unwrap();
    inputs.push(0.0);
}

pub fn reversed_after_drop(s: &Shared) {
    let inputs = s.inputs.lock().unwrap();
    let staged = inputs.len();
    drop(inputs);
    let mut ctrl = s.ctrl.lock().unwrap();
    *ctrl += staged as u64;
}
