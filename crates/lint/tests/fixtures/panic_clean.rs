//! Fixture twin: the same shapes, panic-free — plus the decoys the
//! tokenizer must see through: `unwrap(` inside strings, chars and
//! comments, and idents that merely *contain* the method names.

pub fn handled(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

pub fn propagated(x: Option<u32>) -> Option<u32> {
    let y = x?;
    Some(y + 1)
}

// A comment saying unwrap() or expect() or panic!() is not a call.
pub fn decoys() -> String {
    let s = "call .unwrap() then .expect(\"x\") then panic!(now)";
    let raw = r#"more .unwrap( and panic!( inside a raw string"#;
    /* block comment: .unwrap() .expect("y") unreachable!() */
    format!("{s}{raw}")
}

pub fn lookalike_idents() {
    fn unwrap_all() {}
    fn expect_many() {}
    unwrap_all();
    expect_many();
}

pub fn waived(x: Option<u32>) -> u32 {
    // lint:allow(panic, reason = "fixture: exercising the waiver path")
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        Some(1u32).unwrap();
    }
}
