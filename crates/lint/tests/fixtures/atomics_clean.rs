//! Atomics fixture, clean twin: `hits` is Relaxed at every site (a
//! pure counter needs no ordering), `epoch` pairs Release stores with
//! Acquire loads, `stop` is SeqCst throughout, and the one deliberate
//! Relaxed read of `epoch` carries a reviewed waiver.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Pool {
    epoch: AtomicU64,
    hits: AtomicU64,
    stop: AtomicBool,
}

pub fn publish(p: &Pool) {
    p.epoch.store(1, Ordering::Release);
    p.stop.store(true, Ordering::SeqCst);
}

pub fn observe(p: &Pool) -> u64 {
    while !p.stop.load(Ordering::SeqCst) {
        p.hits.fetch_add(1, Ordering::Relaxed);
    }
    p.epoch.load(Ordering::Acquire)
}

pub fn tally(p: &Pool) -> u64 {
    p.hits.load(Ordering::Relaxed)
}

pub fn gauge(p: &Pool) -> u64 {
    // lint:allow(atomics, reason = "monotonic progress gauge; a stale read only under-reports and the next Acquire load catches up")
    p.epoch.load(Ordering::Relaxed)
}
