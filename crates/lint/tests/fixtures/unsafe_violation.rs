//! Fixture: a crate root with no `#![deny(unsafe_code)]` and an
//! `unsafe` block in the body — both arms of the `unsafe` rule.

pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
