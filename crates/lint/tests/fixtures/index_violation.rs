//! Fixture: slice/array indexing forms the `index` rule must catch.

pub fn direct(v: &[f64], i: usize) -> f64 {
    v[i]
}

pub fn chained(rows: &[Vec<f64>]) -> f64 {
    rows[0][1]
}

pub fn through_call(v: Vec<f64>) -> f64 {
    v.as_slice()[2]
}
