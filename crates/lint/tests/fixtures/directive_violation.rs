//! Fixture: every way to get the escape hatch itself wrong.

// lint:allow(panic)
pub fn missing_reason() {}

// lint:allow(panic, reason = "")
pub fn empty_reason() {}

// lint:allow(frobnicate, reason = "no such rule")
pub fn unknown_rule() {}

// lint:allow(unsafe, reason = "unsafe has no waiver")
pub fn unwaivable_rule() {}

// lint:frobnicate
pub fn unknown_directive() {}

// lint:end-region(panic)
pub fn unmatched_end() {}

pub fn unclosed_region() {
    // lint:no_alloc
}
