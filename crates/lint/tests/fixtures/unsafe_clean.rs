//! Fixture twin: the deny attribute present, no unsafe anywhere —
//! and the word in prose staying invisible to the rule.

#![deny(unsafe_code)]

// A comment about unsafe code is not unsafe code.
pub fn read_first(v: &[u8]) -> u8 {
    let msg = "the string unsafe is not the keyword";
    v.first().copied().unwrap_or(msg.len() as u8)
}
