//! Swallow fixture, fire twin: a discarded queue push, a discarded
//! join (a lost worker panic), and a trailing-`.ok()` discard of a
//! send result.

pub fn run(q: &Queue, h: JoinHandle, out: &Sender) {
    let _ = q.push(1u64);
    let _ = h.join();
    out.send(2u64).ok();
}
