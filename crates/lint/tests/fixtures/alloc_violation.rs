//! Fixture: allocating constructs inside a declared `no_alloc` region.

pub fn hot_path(input: &[f64], out: &mut Vec<f64>) -> String {
    // lint:no_alloc
    let mut v = Vec::new();
    v.push(1.0);
    out.extend(input.iter().copied());
    let owned = input.to_vec();
    let s = format!("{}", owned.len());
    let b = vec![0u8; 4];
    // lint:end_no_alloc
    let _ = b;
    s
}
