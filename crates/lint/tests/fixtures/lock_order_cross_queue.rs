//! Cross-file lock-order fixture, queue half: `refill` takes this
//! file's `state` and then the pool file's `ctrl` — the opposite
//! order from `drain` in the pool half.

use std::sync::Mutex;

pub struct QueueShared {
    state: Mutex<Inner>,
}

pub fn refill(q: &QueueShared, s: &PoolShared) {
    let mut state = q.state.lock().unwrap();
    let ctrl = s.ctrl.lock().unwrap();
    state.pending = *ctrl as usize;
}
