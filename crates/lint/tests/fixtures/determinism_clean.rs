//! Fixture twin: the deterministic equivalents — ordered containers,
//! no clocks, fixed iteration order.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn ordered_iteration() -> f64 {
    let m: BTreeMap<u32, f64> = BTreeMap::new();
    m.values().sum()
}

pub fn ordered_set() -> usize {
    let s: BTreeSet<u32> = BTreeSet::new();
    s.len()
}

// Mentioning HashMap or Instant::now() in a comment is not a use.
pub fn documented() -> &'static str {
    "a string saying HashMap and SystemTime is not a use either"
}

pub fn waived() -> usize {
    // lint:allow(determinism, reason = "fixture: exercising the waiver path")
    let s: std::collections::HashSet<u32> = std::collections::HashSet::new();
    s.len()
}
