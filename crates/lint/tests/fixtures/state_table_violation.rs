//! Fixture: a per-sensor state table keyed by `HashMap`. Iteration
//! order then depends on the per-process hasher seed, so temporal
//! batch assembly (and the sensor census) stops being a pure function
//! of the sensor ids — exactly what the exact-file determinism entry
//! for `crates/serve/src/state.rs` exists to forbid.

use std::collections::HashMap;
use std::sync::Mutex;

pub struct SensorState {
    pub h: Vec<f64>,
    pub model_version: u64,
}

pub struct StateTable {
    shards: Vec<Mutex<HashMap<String, SensorState>>>,
}

impl StateTable {
    pub fn new(n_shards: usize) -> Self {
        Self {
            shards: (0..n_shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    pub fn active_sensors(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|m| m.lock().ok())
            .map(|g| g.len())
            .sum()
    }
}
