//! Fixture twin: in-range access without the indexing operator, plus
//! the bracket forms the `index` rule must NOT confuse with indexing:
//! array literals/types, attributes, and slice patterns.

pub fn checked(v: &[f64], i: usize) -> f64 {
    v.get(i).copied().unwrap_or(0.0)
}

pub fn iterated(v: &[f64]) -> f64 {
    v.iter().sum()
}

pub fn array_literal() -> [u8; 4] {
    [1, 2, 3, 4]
}

#[derive(Clone, Copy)]
pub struct Tagged;

pub fn slice_pattern(v: &[u8]) -> u8 {
    match v {
        [first, ..] => *first,
        [] => 0,
    }
}

pub fn waived(v: &[f64]) -> f64 {
    // lint:allow(index, reason = "fixture: bounds proven by the caller")
    v[0]
}
