//! Condvar fixture, clean twin: every wait is re-checked by an
//! enclosing `while`/`loop` predicate (including one reached through a
//! `match` arm), and `wait_while` carries its predicate inherently.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

pub struct Queue {
    state: Mutex<State>,
    not_empty: Condvar,
}

pub fn pop_while(q: &Queue) -> u64 {
    let mut state = q.state.lock().unwrap();
    while state.items == 0 {
        state = q.not_empty.wait(state).unwrap();
    }
    state.items
}

pub fn pop_loop(q: &Queue) -> u64 {
    let mut state = q.state.lock().unwrap();
    loop {
        if state.items > 0 {
            return state.items;
        }
        state = q.not_empty.wait(state).unwrap();
    }
}

pub fn pop_deadline(q: &Queue, budget: Duration) -> u64 {
    let mut state = q.state.lock().unwrap();
    while state.items == 0 {
        state = match q.not_empty.wait_timeout(state, budget) {
            Ok((s, _timed_out)) => s,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
    state.items
}

pub fn pop_predicated(q: &Queue) -> u64 {
    let state = q
        .not_empty
        .wait_while(q.state.lock().unwrap(), |s| s.items == 0)
        .unwrap();
    state.items
}
