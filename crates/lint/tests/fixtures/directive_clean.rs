//! Fixture twin: well-formed directives of every kind, plus the
//! grammar quoted in doc comments (which the parser must skip).

//! A doc comment may say lint:allow(panic) without a reason — rustdoc
//! prose is never parsed as a directive.

/// Same for item docs: lint:frobnicate is fine here.
pub fn single_line(x: Option<u32>) -> u32 {
    // lint:allow(panic, reason = "fixture: waiver on the next line")
    x.unwrap()
}

// lint:allow-region(panic, reason = "fixture: a region waiver")
pub fn region_a(x: Option<u32>) -> u32 {
    x.unwrap()
}
// lint:end-region(panic)

pub fn regions(out: &mut [f64]) {
    // lint:no_alloc
    out.fill(0.0);
    // lint:end_no_alloc
}
