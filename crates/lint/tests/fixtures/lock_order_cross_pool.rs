//! Cross-file lock-order fixture, pool half: `drain` takes this
//! file's `ctrl` and then the queue file's `state`. Neither file is a
//! violation alone; together they invert.

use std::sync::Mutex;

pub struct PoolShared {
    ctrl: Mutex<u64>,
}

pub fn drain(s: &PoolShared, q: &QueueShared) {
    let mut ctrl = s.ctrl.lock().unwrap();
    let state = q.state.lock().unwrap();
    *ctrl += state.pending as u64;
}
