//! Condvar fixture, fire twin: a bare wait, an `if`-guarded wait and
//! an `if`-guarded `wait_timeout` — all three lose wakeups or act on a
//! stale predicate. The inline `lint:allow` is inert: `condvar` has no
//! escape hatch.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

pub struct Queue {
    state: Mutex<State>,
    not_empty: Condvar,
}

pub fn pop_bare(q: &Queue) -> u64 {
    let mut state = q.state.lock().unwrap();
    // lint:allow(condvar, reason = "not waivable; this changes nothing")
    state = q.not_empty.wait(state).unwrap();
    state.items
}

pub fn pop_if(q: &Queue) -> u64 {
    let mut state = q.state.lock().unwrap();
    if state.items == 0 {
        state = q.not_empty.wait(state).unwrap();
    }
    state.items
}

pub fn pop_if_deadline(q: &Queue, budget: Duration) -> u64 {
    let mut state = q.state.lock().unwrap();
    if state.items == 0 {
        let (s, _timed_out) = q.not_empty.wait_timeout(state, budget).unwrap();
        state = s;
    }
    state.items
}
