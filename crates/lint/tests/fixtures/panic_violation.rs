//! Fixture: every panic-family construct the `panic` rule must catch.

pub fn unwrap_site(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expect_site(x: Option<u32>) -> u32 {
    x.expect("boom")
}

pub fn panic_site() {
    panic!("boom");
}

pub fn unreachable_site() {
    unreachable!();
}

pub fn todo_site() {
    todo!()
}
