//! Fixture twin: kernel-style code with no raw thread creation — the
//! pool is reached through its run helpers — plus the decoys the
//! tokenizer must see through: `thread::spawn` inside strings and
//! comments, and idents that merely *contain* the banned names.

pub fn pooled_dispatch(rows: usize, threads: usize) -> usize {
    // The real kernels hand row blocks to pool::run_gemm; modelling
    // that shape here: a plain function call, no thread::spawn in
    // sight (and this comment must not count as one).
    let per = rows.div_ceil(threads.max(1));
    per * threads
}

pub fn decoys() -> String {
    let s = "calling thread::spawn or thread::scope in a string";
    let raw = r#"thread::Builder::new() inside a raw string"#;
    /* block comment: thread::spawn(|| {}) */
    format!("{s}{raw}")
}

pub fn lookalike_idents() {
    fn thread_count() -> usize {
        1
    }
    fn spawn_rate() -> usize {
        2
    }
    let threads = thread_count();
    let spawned = spawn_rate();
    assert!(threads < spawned);
}
