//! Fixture twin: the same shapes kept allocation-free inside the
//! region — and the rule staying silent on allocations *outside* any
//! declared region.

pub fn hot_path(input: &[f64], out: &mut [f64]) -> f64 {
    // lint:no_alloc
    let mut acc = 0.0;
    for (o, &x) in out.iter_mut().zip(input) {
        *o = x * 2.0;
        acc += x;
    }
    // lint:end_no_alloc
    acc
}

pub fn cold_path(input: &[f64]) -> Vec<f64> {
    // Outside a region: allocation is fine (setup/teardown code).
    input.iter().map(|x| x * 2.0).collect()
}

pub fn waived(out: &mut Vec<f64>) {
    // lint:no_alloc
    out.clear();
    // lint:allow(alloc, reason = "fixture: one-time growth into a reusable buffer")
    out.push(1.0);
    // lint:end_no_alloc
}
