//! Lock-order fixture, fire twin: `forward` holds `ctrl` while taking
//! `inputs`, `backward` holds `inputs` while taking `ctrl` — the
//! two-function inversion whose interleaving deadlocks.

use std::sync::Mutex;

pub struct Shared {
    ctrl: Mutex<u64>,
    inputs: Mutex<Vec<f32>>,
}

pub fn forward(s: &Shared) {
    let mut ctrl = s.ctrl.lock().unwrap();
    let mut inputs = s.inputs.lock().unwrap();
    *ctrl += 1;
    inputs.clear();
}

pub fn backward(s: &Shared) {
    let mut inputs = s.inputs.lock().unwrap();
    let mut ctrl = s.ctrl.lock().unwrap();
    inputs.push(*ctrl as f32);
    *ctrl += 1;
}
