//! Fixture: every nondeterminism source the `determinism` rule bans
//! from numeric paths.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use std::time::SystemTime;

pub fn random_iteration_order() -> f64 {
    let m: HashMap<u32, f64> = HashMap::new();
    m.values().sum()
}

pub fn random_set_order() -> usize {
    let s: HashSet<u32> = HashSet::new();
    s.len()
}

pub fn wall_clock_in_math() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}

pub fn epoch_in_math() -> bool {
    SystemTime::now().elapsed().is_ok()
}

pub fn thread_count_dependent() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
