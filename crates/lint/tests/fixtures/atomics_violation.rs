//! Atomics fixture, fire twin: `remaining` mixes an AcqRel
//! read-modify-write with Relaxed loads (one of which gates a condvar
//! wait loop — the lost-wakeup shape), and `stop` mixes SeqCst stores
//! with a Relaxed load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

pub struct Pool {
    remaining: AtomicU64,
    stop: AtomicBool,
    ctrl: Mutex<u64>,
    work_done: Condvar,
}

pub fn finish(p: &Pool) {
    p.remaining.fetch_sub(1, Ordering::AcqRel);
    p.stop.store(true, Ordering::SeqCst);
}

pub fn spin(p: &Pool) -> bool {
    while p.remaining.load(Ordering::Relaxed) != 0 {
        std::hint::spin_loop();
    }
    p.stop.load(Ordering::Relaxed)
}

pub fn park(p: &Pool) {
    let mut ctrl = p.ctrl.lock().unwrap();
    while p.remaining.load(Ordering::Relaxed) != 0 {
        ctrl = p.work_done.wait(ctrl).unwrap();
    }
}
