//! Swallow fixture, clean twin: every lock/join/send outcome is
//! propagated, counted, or bound — and the one deliberate discard
//! carries a reviewed waiver. `let _ =` on a non-swallow call stays
//! legal.

pub fn run(q: &Queue, h: JoinHandle, out: &Sender, panics: &Counter) -> Result<(), Error> {
    if q.push(1u64).is_err() {
        return Err(Error::Full);
    }
    if h.join().is_err() {
        panics.inc();
    }
    let delivered = out.send(2u64).ok();
    if delivered.is_none() {
        return Err(Error::Gone);
    }
    // lint:allow(swallow, reason = "loss is counted by the routed-minus-sent identity in the report")
    let _ = q.push(3u64);
    let _ = recompute_watermark(q);
    Ok(())
}
