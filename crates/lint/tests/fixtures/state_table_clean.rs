//! Clean twin of `state_table_violation.rs`: the same per-sensor
//! state table keyed by `BTreeMap`, whose iteration order is a pure
//! function of the sensor ids — reproducible batch assembly, no
//! hasher seed in sight.

use std::collections::BTreeMap;
use std::sync::Mutex;

pub struct SensorState {
    pub h: Vec<f64>,
    pub model_version: u64,
}

pub struct StateTable {
    shards: Vec<Mutex<BTreeMap<String, SensorState>>>,
}

impl StateTable {
    pub fn new(n_shards: usize) -> Self {
        Self {
            shards: (0..n_shards).map(|_| Mutex::new(BTreeMap::new())).collect(),
        }
    }

    pub fn active_sensors(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|m| m.lock().ok())
            .map(|g| g.len())
            .sum()
    }
}
