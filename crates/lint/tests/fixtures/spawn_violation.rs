//! Fixture: every raw thread-creation path the `spawn` rule must
//! catch inside the kernels — the exact calls the compute pool PR
//! removed from the GEMM dispatch.

use std::thread;

pub fn scoped_spawn_site(work: &[f64]) -> f64 {
    let mut total = 0.0;
    thread::scope(|s| {
        for chunk in work.chunks(4) {
            s.spawn(move || chunk.iter().sum::<f64>());
        }
    });
    total += 1.0;
    total
}

pub fn detached_spawn_site() {
    thread::spawn(|| 1 + 1);
}

pub fn builder_site() {
    let _ = thread::Builder::new().name("rogue-worker".into());
}
