//! Wire-layer integration tests: multi-sensor loopback soak with
//! bitwise verification against in-process scoring, NACK accounting
//! under `RejectNewest` backpressure, and a TCP-localhost gateway
//! round trip. These are the executable form of the wire contract:
//! the network boundary adds latency, never drift — and every record
//! that crosses it is accounted for in `ServeReport`.

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_serve::{BackpressurePolicy, BatchConfig, ServeConfig};
use occusense_sim::{fleet_stream, simulate, ScenarioConfig};
use occusense_wire::{
    connect, loopback, tcp_connect, tcp_listen, ClientEvent, Gateway, GatewayConfig,
    LoopbackConfig, NackReason, PredictionFrame, TcpConfig,
};
use std::time::Duration;

fn quick_detector() -> OccupancyDetector {
    let train = simulate(&ScenarioConfig::quick(300.0, 7));
    OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            mlp_epochs: 2,
            seed: 7,
            ..DetectorConfig::default()
        },
    )
}

/// Pinned-model gateway config: online training disabled so wire
/// predictions can be compared bitwise against a local clone.
fn pinned(policy: BackpressurePolicy, capacity: usize, batch: BatchConfig) -> ServeConfig {
    ServeConfig {
        online: None,
        policy,
        queue_capacity: capacity,
        batch,
        ..ServeConfig::default()
    }
}

/// Drains one receiver until the gateway's Goodbye (or Closed),
/// collecting predictions and NACK count.
fn drain(mut rx: occusense_wire::WireReceiver) -> (Vec<PredictionFrame>, u64) {
    let mut preds = Vec::new();
    let mut nacks = 0;
    loop {
        match rx.recv().expect("receive") {
            ClientEvent::Prediction(p) => preds.push(p),
            ClientEvent::Nack(_) => nacks += 1,
            ClientEvent::Goodbye(_) | ClientEvent::Closed => break,
            ClientEvent::TimedOut => continue,
        }
    }
    (preds, nacks)
}

#[test]
fn loopback_soak_is_bitwise_identical_to_direct_scoring() {
    const SENSORS: usize = 4;
    const RECORDS: usize = 200;
    let detector = quick_detector();
    let direct = detector.clone();
    let (acceptor, connector) = loopback(LoopbackConfig::default());
    let gateway = Gateway::start(
        detector,
        pinned(BackpressurePolicy::Block, 1024, BatchConfig::default()),
        GatewayConfig {
            outbound_policy: BackpressurePolicy::Block,
            ..GatewayConfig::default()
        },
        Box::new(acceptor),
    )
    .expect("gateway");

    let handles: Vec<_> = (0..SENSORS)
        .map(|i| {
            let conn = connector.connect().expect("connect");
            std::thread::spawn(move || {
                let records: Vec<_> = fleet_stream(110.0, 500, i as u64).take(RECORDS).collect();
                let (mut tx, rx) =
                    connect(conn, &format!("s{i}"), Duration::from_secs(5)).expect("handshake");
                // Mix singles and batches on the same connection.
                let labelled: Vec<_> = records.iter().map(|r| (*r, Some(r.occupancy()))).collect();
                let (head, tail) = labelled.split_at(RECORDS / 2);
                for (r, l) in head {
                    tx.send(*r, *l).expect("send");
                }
                tx.send_batch(tail).expect("send batch");
                let sent = tx.finish().expect("finish");
                let (preds, nacks) = drain(rx);
                (records, sent, preds, nacks)
            })
        })
        .collect();

    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("sensor"))
        .collect();
    let report = gateway.shutdown();

    for (records, sent, mut preds, nacks) in outcomes {
        assert_eq!(sent as usize, RECORDS);
        assert_eq!(nacks, 0, "Block policy must never NACK");
        assert_eq!(preds.len(), RECORDS, "every record must come back scored");
        preds.sort_by_key(|p| p.seq);
        for (i, p) in preds.iter().enumerate() {
            assert_eq!(p.seq, i as u64);
            let (occupied, proba) = direct.predict_record(&records[i]);
            assert_eq!(p.occupied, occupied, "seq {i}");
            assert_eq!(
                p.proba.to_bits(),
                proba.to_bits(),
                "seq {i}: the wire must add latency, never drift"
            );
        }
    }
    assert_eq!(report.unaccounted_records(), 0);
    assert_eq!(report.wire.connections, SENSORS as u64);
    assert_eq!(report.wire.records_decoded, (SENSORS * RECORDS) as u64);
    assert_eq!(report.wire.records_ingested, (SENSORS * RECORDS) as u64);
    assert_eq!(report.wire.records_rejected, 0);
    assert_eq!(report.faults.transport_rejections, 0);
}

#[test]
fn reject_newest_surfaces_as_nacks_and_stays_accounted() {
    const RECORDS: usize = 300;
    let detector = quick_detector();
    let (acceptor, connector) = loopback(LoopbackConfig::default());
    // Capacity-1 ingress under RejectNewest, with a slow micro-batch
    // deadline so the queue drains far slower than the loopback
    // delivers: rejections are essentially guaranteed, and every one
    // must come back as a QueueFull NACK carrying the refused seq.
    let gateway = Gateway::start(
        detector,
        pinned(
            BackpressurePolicy::RejectNewest,
            1,
            BatchConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(2),
            },
        ),
        GatewayConfig {
            outbound_policy: BackpressurePolicy::Block,
            ..GatewayConfig::default()
        },
        Box::new(acceptor),
    )
    .expect("gateway");

    let conn = connector.connect().expect("connect");
    let (mut tx, rx) = connect(conn, "burst", Duration::from_secs(5)).expect("handshake");
    let records: Vec<_> = fleet_stream(160.0, 900, 0).take(RECORDS).collect();
    let mut sent_seqs = Vec::new();
    for r in &records {
        sent_seqs.push(tx.send(*r, None).expect("send"));
    }
    let sent = tx.finish().expect("finish");
    assert_eq!(sent as usize, RECORDS);

    let mut preds = Vec::new();
    let mut nack_seqs = Vec::new();
    let mut rx = rx;
    loop {
        match rx.recv().expect("receive") {
            ClientEvent::Prediction(p) => preds.push(p),
            ClientEvent::Nack(n) => {
                assert_eq!(n.reason, NackReason::QueueFull);
                nack_seqs.push(n.seq);
            }
            ClientEvent::Goodbye(_) | ClientEvent::Closed => break,
            ClientEvent::TimedOut => continue,
        }
    }
    let report = gateway.shutdown();

    // Every sent record resolved exactly once: a prediction or a NACK.
    assert_eq!(preds.len() + nack_seqs.len(), RECORDS);
    let mut resolved: Vec<u64> = preds
        .iter()
        .map(|p| p.seq)
        .chain(nack_seqs.iter().copied())
        .collect();
    resolved.sort_unstable();
    assert_eq!(resolved, (0..RECORDS as u64).collect::<Vec<_>>());

    // The transport loss is visible in the report, and the extended
    // accounting identity still closes to zero.
    assert_eq!(report.wire.records_rejected, nack_seqs.len() as u64);
    assert_eq!(report.faults.transport_rejections, nack_seqs.len() as u64);
    assert_eq!(
        report.wire.records_ingested + report.wire.records_rejected,
        RECORDS as u64
    );
    assert_eq!(report.unaccounted_records(), 0);
}

#[test]
fn tcp_gateway_round_trips_bitwise_over_localhost() {
    const RECORDS: usize = 100;
    let detector = quick_detector();
    let direct = detector.clone();
    let (acceptor, addr) = tcp_listen("127.0.0.1:0", TcpConfig::default()).expect("listen");
    let gateway = Gateway::start(
        detector,
        pinned(BackpressurePolicy::Block, 1024, BatchConfig::default()),
        GatewayConfig {
            outbound_policy: BackpressurePolicy::Block,
            ..GatewayConfig::default()
        },
        Box::new(acceptor),
    )
    .expect("gateway");

    let conn = tcp_connect(&addr.to_string(), TcpConfig::default()).expect("connect");
    let (mut tx, rx) = connect(conn, "tcp-sensor", Duration::from_secs(5)).expect("handshake");
    let records: Vec<_> = fleet_stream(60.0, 777, 0).take(RECORDS).collect();
    let labelled: Vec<_> = records.iter().map(|r| (*r, None)).collect();
    tx.send_batch(&labelled).expect("send batch");
    let sent = tx.finish().expect("finish");
    assert_eq!(sent as usize, RECORDS);
    let (mut preds, nacks) = drain(rx);
    let report = gateway.shutdown();

    assert_eq!(nacks, 0);
    assert_eq!(preds.len(), RECORDS);
    preds.sort_by_key(|p| p.seq);
    for (i, p) in preds.iter().enumerate() {
        let (occupied, proba) = direct.predict_record(&records[i]);
        assert_eq!(p.occupied, occupied);
        assert_eq!(p.proba.to_bits(), proba.to_bits(), "seq {i}");
    }
    assert_eq!(report.unaccounted_records(), 0);
    assert_eq!(report.wire.records_decoded, RECORDS as u64);
    assert_eq!(report.wire.predictions_sent, RECORDS as u64);
}

/// Reactor soak under slow-client backpressure: a tiny `Block`
/// outbound queue and a reader that naps between events force the
/// reactor through its ingress-pause path (it must never park on the
/// queue it alone drains), while capacity-1 `RejectNewest` ingress
/// guarantees a mixture of predictions and NACKs. Every submitted seq
/// must resolve exactly once — as a prediction or a QueueFull NACK —
/// and the extended accounting identity must close.
#[test]
fn slow_client_soak_resolves_every_seq_exactly_once() {
    const SENSORS: usize = 3;
    const RECORDS: usize = 150;
    let detector = quick_detector();
    let (acceptor, connector) = loopback(LoopbackConfig::default());
    let gateway = Gateway::start(
        detector,
        pinned(
            BackpressurePolicy::RejectNewest,
            1,
            BatchConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(1),
            },
        ),
        GatewayConfig {
            outbound_policy: BackpressurePolicy::Block,
            outbound_capacity: 4,
            reactors: 2,
            ..GatewayConfig::default()
        },
        Box::new(acceptor),
    )
    .expect("gateway");

    let handles: Vec<_> = (0..SENSORS)
        .map(|i| {
            let conn = connector.connect().expect("connect");
            std::thread::spawn(move || {
                let (mut tx, mut rx) =
                    connect(conn, &format!("slow{i}"), Duration::from_secs(5)).expect("handshake");
                let records: Vec<_> = fleet_stream(120.0, 40 + i as u64, i as u64)
                    .take(RECORDS)
                    .collect();
                // Reader thread naps so the 4-deep Block outbound queue
                // fills; the sender keeps pushing, so the gateway must
                // pause this connection's ingress instead of stalling
                // its whole reactor.
                let reader = std::thread::spawn(move || {
                    let mut pred_seqs = Vec::new();
                    let mut nack_seqs = Vec::new();
                    loop {
                        match rx.recv().expect("receive") {
                            ClientEvent::Prediction(p) => {
                                pred_seqs.push(p.seq);
                                if pred_seqs.len() % 8 == 0 {
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                            }
                            ClientEvent::Nack(n) => {
                                assert_eq!(n.reason, NackReason::QueueFull);
                                nack_seqs.push(n.seq);
                            }
                            ClientEvent::Goodbye(_) | ClientEvent::Closed => break,
                            ClientEvent::TimedOut => continue,
                        }
                    }
                    (pred_seqs, nack_seqs)
                });
                for r in &records {
                    tx.send(*r, None).expect("send");
                }
                let sent = tx.finish().expect("finish");
                let (pred_seqs, nack_seqs) = reader.join().expect("reader");
                (sent, pred_seqs, nack_seqs)
            })
        })
        .collect();

    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("sensor"))
        .collect();
    let report = gateway.shutdown();

    for (sent, pred_seqs, nack_seqs) in outcomes {
        assert_eq!(sent as usize, RECORDS);
        let mut resolved: Vec<u64> = pred_seqs.iter().chain(nack_seqs.iter()).copied().collect();
        resolved.sort_unstable();
        assert_eq!(
            resolved,
            (0..RECORDS as u64).collect::<Vec<_>>(),
            "every seq must resolve exactly once (prediction xor NACK)"
        );
    }
    assert_eq!(report.wire.connections, SENSORS as u64);
    assert_eq!(
        report.wire.records_decoded,
        (SENSORS * RECORDS) as u64,
        "pause/resume must neither drop nor double-decode"
    );
    assert_eq!(report.unaccounted_records(), 0);
}
