//! End-to-end pipeline tests: simulate → split → train → evaluate →
//! explain, across all model families.

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::explain::Explanation;
use occusense_core::regressor::{EnvRegressor, RegressorConfig, RegressorKind};
use occusense_core::FeatureView;
use occusense_integration::quick_split;

#[test]
fn all_models_learn_occupancy_from_csi() {
    let (train, test) = quick_split(1600.0, 101);
    for model in ModelKind::TABLE4 {
        let det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model,
                features: FeatureView::Csi,
                mlp_epochs: 5,
                ..DetectorConfig::default()
            },
        );
        let acc = det.evaluate(&test).accuracy();
        assert!(acc > 0.6, "{model:?} accuracy {acc}");
    }
}

#[test]
fn nonlinear_models_beat_linear_on_csi() {
    // The paper's central comparison (Table IV): CSI-based occupancy is
    // not linearly separable; RF and the MLP must beat logistic
    // regression on a scenario with varied occupant positions.
    let (train, test) = quick_split(2400.0, 103);
    let acc = |model: ModelKind| {
        OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model,
                features: FeatureView::Csi,
                ..DetectorConfig::default()
            },
        )
        .evaluate(&test)
        .accuracy()
    };
    let logreg = acc(ModelKind::LogisticRegression);
    let forest = acc(ModelKind::RandomForest);
    let mlp = acc(ModelKind::Mlp);
    assert!(
        mlp >= logreg - 0.02 && forest >= logreg - 0.02,
        "logreg {logreg}, forest {forest}, mlp {mlp}"
    );
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let (train, test) = quick_split(900.0, 7);
        let det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                mlp_epochs: 2,
                ..DetectorConfig::default()
            },
        );
        det.predict_proba(&test)
    };
    assert_eq!(run(), run());
}

#[test]
fn explanation_covers_every_feature() {
    let (train, test) = quick_split(1200.0, 9);
    let det = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            features: FeatureView::CsiEnv,
            mlp_epochs: 3,
            ..DetectorConfig::default()
        },
    );
    let explanation = Explanation::of(&det, &test).expect("MLP detector");
    assert_eq!(explanation.importance.len(), 66);
    assert_eq!(explanation.feature_names.len(), 66);
    assert!(explanation.importance.iter().all(|v| v.is_finite()));
    // Some feature must matter.
    assert!(explanation.importance.iter().any(|v| v.abs() > 1e-6));
}

#[test]
fn regression_pipeline_runs_both_families() {
    let (train, test) = quick_split(1600.0, 11);
    for kind in [RegressorKind::Linear, RegressorKind::NeuralNetwork] {
        let model = EnvRegressor::train(
            &train,
            &RegressorConfig {
                kind,
                epochs: 4,
                ..RegressorConfig::default()
            },
        )
        .expect("fit");
        let scores = model.evaluate(&test);
        assert!(scores.mae_temperature.is_finite());
        assert!(
            scores.mae_temperature < 10.0,
            "{kind:?}: MAE T {}",
            scores.mae_temperature
        );
        assert!(
            scores.mae_humidity < 30.0,
            "{kind:?}: MAE H {}",
            scores.mae_humidity
        );
    }
}

#[test]
fn online_prediction_agrees_with_batch() {
    let (train, test) = quick_split(900.0, 13);
    let det = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::RandomForest,
            ..DetectorConfig::default()
        },
    );
    let batch = det.predict_proba(&test);
    for (i, r) in test.iter().enumerate().step_by(37) {
        let (_, p) = det.predict_record(r);
        assert!(
            (p - batch[i]).abs() < 1e-12,
            "record {i}: {p} vs {}",
            batch[i]
        );
    }
}
