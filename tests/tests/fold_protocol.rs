//! The Table III fold protocol over a full simulated campaign: folds
//! tile the window, the scripted occupancy anchors hold, and models are
//! evaluated without retraining.

use occusense_core::dataset::folds::{split_by_folds, turetta_folds};
use occusense_core::dataset::profile::OccupancyProfile;
use occusense_integration::small_campaign;

#[test]
fn folds_partition_the_campaign() {
    let ds = small_campaign(31);
    let (train, tests) = split_by_folds(&ds);
    let total = train.len() + tests.iter().map(|f| f.len()).sum::<usize>();
    assert_eq!(total, ds.len());
    assert_eq!(tests.len(), 5);
    // Train is ~70 % of samples.
    let frac = train.len() as f64 / ds.len() as f64;
    assert!((0.65..0.72).contains(&frac), "train fraction {frac}");
}

#[test]
fn scripted_occupancy_structure_holds() {
    let ds = small_campaign(32);
    let (_, tests) = split_by_folds(&ds);
    // Folds 1-3 (night): entirely empty.
    for (i, fold) in tests[..3].iter().enumerate() {
        assert!(
            fold.labels().iter().all(|&l| l == 0),
            "night fold {} contains occupied samples",
            i + 1
        );
    }
    // Fold 4: mixed, mostly occupied (paper: 82.5 % occupied).
    let f4 = &tests[3];
    let occ4 = f4.labels().iter().filter(|&&l| l == 1).count() as f64 / f4.len() as f64;
    assert!(
        (0.70..0.95).contains(&occ4),
        "fold-4 occupied fraction {occ4}"
    );
    // Fold 5: fully occupied.
    assert!(
        tests[4].labels().iter().all(|&l| l == 1),
        "fold 5 has empty samples"
    );
}

#[test]
fn occupancy_distribution_matches_table2_shape() {
    let ds = small_campaign(33);
    let p = OccupancyProfile::of(&ds, 4);
    // Empty dominates (paper 63.2 %), singles are the most common
    // occupied state, higher head counts are rarer.
    let empty_frac = p.empty_total() as f64 / p.total() as f64;
    assert!(
        (0.5..0.75).contains(&empty_frac),
        "empty fraction {empty_frac}"
    );
    assert!(
        p.count(1) > p.count(3),
        "1-occ {} vs 3-occ {}",
        p.count(1),
        p.count(3)
    );
    assert!(
        p.count(2) > p.count(4),
        "2-occ {} vs 4-occ {}",
        p.count(2),
        p.count(4)
    );
}

#[test]
fn fold_temperature_ranges_are_winter_office_like() {
    let ds = small_campaign(34);
    let folds = turetta_folds();
    for spec in &folds {
        let fold = spec.slice(&ds);
        let temps = fold.temperatures();
        let min = temps.iter().copied().fold(f64::INFINITY, f64::min);
        let max = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(min > 14.0, "fold {} min temperature {min}", spec.index);
        assert!(max < 41.0, "fold {} max temperature {max}", spec.index);
        let hums = fold.humidities();
        for h in hums {
            assert!(
                (5.0..=75.0).contains(&h),
                "fold {} humidity {h}",
                spec.index
            );
        }
    }
}

#[test]
fn campaign_is_deterministic_per_seed() {
    assert_eq!(small_campaign(40), small_campaign(40));
}
