//! Serving-runtime integration tests: backpressure accounting,
//! micro-batch deadlines, deterministic routing, bitwise batched
//! inference and a fixed-seed end-to-end smoke run.

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::sim::{simulate, OfficeSimulator, ScenarioConfig};
use occusense_serve::{
    shard_for, BackpressurePolicy, BatchConfig, BoundedQueue, OnlineTrainingConfig, ServeConfig,
    ServeRuntime,
};
use std::collections::HashMap;
use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

fn quick_detector(seed: u64) -> OccupancyDetector {
    let train = simulate(&ScenarioConfig::quick(1200.0, seed));
    OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            mlp_epochs: 2,
            seed,
            ..DetectorConfig::default()
        },
    )
}

#[test]
fn drop_oldest_queue_accounts_for_every_record() {
    let q: BoundedQueue<u32> = BoundedQueue::new(4, BackpressurePolicy::DropOldest);
    for i in 0..10 {
        q.push(i).unwrap();
    }
    let c = q.counters();
    assert_eq!(c.pushed, 10);
    assert_eq!(c.dropped, 6);
    assert_eq!(c.rejected, 0);
    assert_eq!(c.depth, 4);
    assert_eq!(c.high_watermark, 4);
    // The four survivors are exactly the newest four, in order.
    q.close();
    let survivors: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
    assert_eq!(survivors, vec![6, 7, 8, 9]);
    assert_eq!(q.counters().popped, 4);
}

#[test]
fn reject_newest_queue_returns_the_rejected_record() {
    let q: BoundedQueue<u32> = BoundedQueue::new(3, BackpressurePolicy::RejectNewest);
    for i in 0..3 {
        q.push(i).unwrap();
    }
    for i in 3..8 {
        let err = q.push(i).unwrap_err();
        assert_eq!(err.into_inner(), i);
    }
    let c = q.counters();
    assert_eq!((c.pushed, c.rejected, c.dropped, c.depth), (3, 5, 0, 3));
}

#[test]
fn routing_is_deterministic_and_stable_across_runtimes() {
    let detector = quick_detector(11);
    let config = ServeConfig {
        n_shards: 5,
        online: None,
        ..ServeConfig::default()
    };
    let (rt_a, _rx_a) = ServeRuntime::start(detector.clone(), config.clone()).expect("start");
    let (rt_b, _rx_b) = ServeRuntime::start(detector, config).expect("start");
    let mut seen = [false; 5];
    for i in 0..64 {
        let id = format!("office-{i}/esp32");
        let shard = rt_a.client(&id).shard();
        // Same id ⇒ same shard, within a runtime and across runtimes.
        assert_eq!(shard, rt_a.client(&id).shard());
        assert_eq!(shard, rt_b.client(&id).shard());
        assert_eq!(shard, shard_for(&id, 5));
        assert!(shard < 5);
        seen[shard] = true;
    }
    // 64 distinct sensors should exercise every one of 5 shards.
    assert!(seen.iter().all(|&s| s), "a shard received no sensors");
    rt_a.shutdown();
    rt_b.shutdown();
}

#[test]
fn deadline_flushes_partial_batches() {
    let (runtime, predictions) = ServeRuntime::start(
        quick_detector(12),
        ServeConfig {
            n_shards: 1,
            batch: BatchConfig {
                max_batch: 1_000, // unreachable: only the deadline can flush
                max_delay: Duration::from_millis(10),
            },
            online: None,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let mut client = runtime.client("lone-sensor");
    let records = simulate(&ScenarioConfig::quick(400.0, 12));
    for r in records.records().iter().take(3) {
        client.submit(*r).unwrap();
    }
    for _ in 0..3 {
        predictions
            .recv_timeout(Duration::from_secs(5))
            .expect("deadline flush never delivered the partial batch");
    }
    let report = runtime.shutdown();
    assert_eq!(report.records_served, 3);
    assert!(report.metrics_text.contains("serve.deadline_flushes"));
}

#[test]
fn batched_inference_is_bitwise_identical_to_per_record() {
    let detector = quick_detector(13);
    let (runtime, predictions) = ServeRuntime::start(
        detector.clone(),
        ServeConfig {
            n_shards: 3,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block, // lossless: every record is scored
            online: None,                      // model stays v1 for the whole run
            ..ServeConfig::default()
        },
    )
    .expect("start");

    // Several sensors per shard so batches interleave scenario clocks.
    let mut submitted: HashMap<String, Vec<_>> = HashMap::new();
    let mut handles = Vec::new();
    for i in 0..6u64 {
        let id = format!("sensor-{i}");
        let records: Vec<_> = OfficeSimulator::new(ScenarioConfig::quick(120.0, 200 + i))
            .stream()
            .collect();
        submitted.insert(id.clone(), records.clone());
        let mut client = runtime.client(&id);
        handles.push(std::thread::spawn(move || {
            for r in records {
                client.submit(r).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let total: usize = submitted.values().map(Vec::len).sum();
    let mut checked = 0;
    while checked < total {
        let p = predictions
            .recv_timeout(Duration::from_secs(10))
            .expect("runtime lost a record under Block policy");
        let record = submitted[p.sensor_id.as_ref()][p.seq as usize];
        let (occupied, proba) = detector.predict_record(&record);
        assert_eq!(p.proba.to_bits(), proba.to_bits(), "batched proba differs");
        assert_eq!(p.occupied, occupied);
        assert_eq!(p.model_version, 1);
        checked += 1;
    }

    let report = runtime.shutdown();
    assert_eq!(report.records_served, total as u64);
    assert!(report.shard_queues.iter().all(|q| q.dropped == 0));
    assert!(matches!(
        predictions.recv_timeout(Duration::from_millis(100)),
        Err(RecvTimeoutError::Disconnected)
    ));
}

#[test]
fn end_to_end_smoke_with_online_training() {
    const SENSORS: u64 = 4;
    let (runtime, predictions) = ServeRuntime::start(
        quick_detector(14),
        ServeConfig {
            n_shards: 2,
            queue_capacity: 128,
            policy: BackpressurePolicy::Block,
            batch: BatchConfig::default(),
            online: Some(OnlineTrainingConfig::default()),
            ..ServeConfig::default()
        },
    )
    .expect("start");

    let mut handles = Vec::new();
    for i in 0..SENSORS {
        let mut client = runtime.client(&format!("smoke-{i}"));
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            for record in OfficeSimulator::new(ScenarioConfig::quick(150.0, 300 + i)).stream() {
                let label = record.occupancy();
                client.submit_labelled(record, label).unwrap();
                n += 1;
            }
            n
        }));
    }
    let submitted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(submitted > 0);

    let report = runtime.shutdown();
    assert_eq!(report.records_served, submitted, "Block policy is lossless");
    assert!(report.throughput_rps > 0.0);
    assert!(report.latency_p99_ns >= report.latency_p50_ns);
    assert!(report.latency_p99_ns > 0);
    assert_eq!(report.shard_queues.len(), 2);
    assert_eq!(
        report.shard_queues.iter().map(|q| q.pushed).sum::<u64>(),
        submitted
    );
    // The trainer saw every labelled record (lossless ingest + drain
    // ordering) and published at least one hot swap.
    let trainer = report.trainer_queue.expect("online training was enabled");
    assert_eq!(trainer.popped + trainer.dropped, submitted);
    assert!(report.model_publishes >= 1);
    assert!(report.model_version > 1, "no snapshot was ever published");

    // Every accepted record came back out exactly once.
    let delivered = predictions.into_iter().count() as u64;
    assert_eq!(delivered, submitted);
}
