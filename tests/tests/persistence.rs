//! Persistence round trips: CSV datasets and serialised models survive a
//! save/load cycle bit-for-bit.

use occusense_core::dataset::csv;
use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::nn::serialize;
use occusense_core::FeatureView;
use occusense_integration::quick_split;

#[test]
fn csv_round_trip_preserves_simulated_data() {
    let (train, _) = quick_split(600.0, 21);
    let mut buf = Vec::new();
    csv::write_csv(&mut buf, &train).expect("write");
    let back = csv::read_csv(&buf[..]).expect("read");
    assert_eq!(back, train);
}

#[test]
fn model_round_trip_preserves_predictions() {
    let (train, test) = quick_split(900.0, 23);
    let det = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            features: FeatureView::Csi,
            mlp_epochs: 3,
            ..DetectorConfig::default()
        },
    );
    let mlp = det.mlp().expect("MLP detector");
    let mut buf = Vec::new();
    serialize::save(&mut buf, mlp).expect("save");
    let loaded = serialize::load(&buf[..]).expect("load");
    assert_eq!(&loaded, mlp);
    let x = det.features_of(&test);
    assert_eq!(loaded.predict(&x), mlp.predict(&x));
}

#[test]
fn csv_written_dataset_trains_identically() {
    // A dataset that went through CSV produces the same trained model.
    let (train, test) = quick_split(900.0, 25);
    let mut buf = Vec::new();
    csv::write_csv(&mut buf, &train).expect("write");
    let reloaded = csv::read_csv(&buf[..]).expect("read");
    let cfg = DetectorConfig {
        model: ModelKind::LogisticRegression,
        ..DetectorConfig::default()
    };
    let a = OccupancyDetector::train(&train, &cfg);
    let b = OccupancyDetector::train(&reloaded, &cfg);
    assert_eq!(a.predict_proba(&test), b.predict_proba(&test));
}
