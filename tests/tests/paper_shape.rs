//! Shape tests against the paper's headline findings, run on a
//! downscaled full campaign. These assert the *qualitative* results —
//! who wins, where the hard fold is — not absolute numbers.

use occusense_core::detector::ModelKind;
use occusense_core::experiments::{table4, table5, ExperimentConfig};
use occusense_core::regressor::RegressorKind;
use occusense_core::FeatureView;
use occusense_integration::small_campaign;

fn config() -> ExperimentConfig {
    ExperimentConfig {
        max_train_samples: 8_000,
        epochs: 6,
        n_trees: 15,
        ..ExperimentConfig::tiny()
    }
}

#[test]
fn table4_shape_nonlinear_models_win_on_csi() {
    let ds = small_campaign(50);
    let t4 = table4(&ds, &config());
    let avg = |m: ModelKind, v: FeatureView| t4.cell(m, v).expect("cell").average();

    let mlp_csi = avg(ModelKind::Mlp, FeatureView::Csi);
    let rf_csi = avg(ModelKind::RandomForest, FeatureView::Csi);
    let lr_csi = avg(ModelKind::LogisticRegression, FeatureView::Csi);

    // Headline: the MLP on CSI achieves high accuracy (paper: 97 %).
    assert!(mlp_csi > 0.90, "MLP/CSI average {mlp_csi}");
    assert!(rf_csi > 0.88, "RF/CSI average {rf_csi}");
    // Non-linear models dominate the linear baseline on CSI.
    assert!(mlp_csi > lr_csi, "MLP {mlp_csi} vs LogReg {lr_csi}");
    assert!(rf_csi > lr_csi, "RF {rf_csi} vs LogReg {lr_csi}");
}

#[test]
fn table4_shape_fold4_is_the_hard_fold() {
    let ds = small_campaign(51);
    let t4 = table4(&ds, &config());
    // For the strong models on CSI, fold 4 (index 3) must be the minimum.
    for model in [ModelKind::RandomForest, ModelKind::Mlp] {
        let cell = t4.cell(model, FeatureView::Csi).expect("cell");
        let fold4 = cell.fold_accuracy[3];
        let min = cell
            .fold_accuracy
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            fold4 <= min + 0.06,
            "{model:?}: fold-4 {fold4} is not near the minimum {min} ({:?})",
            cell.fold_accuracy
        );
    }
}

#[test]
fn table4_shape_env_only_linear_collapses_on_fold4() {
    // The paper's most striking cell: Logistic Regression on Env features
    // scores 18 % on fold 4 (a cold-but-occupied morning).
    let ds = small_campaign(52);
    let t4 = table4(&ds, &config());
    let cell = t4
        .cell(ModelKind::LogisticRegression, FeatureView::Env)
        .expect("cell");
    assert!(
        cell.fold_accuracy[3] < 0.5,
        "LogReg/Env fold-4 accuracy {} — expected a collapse",
        cell.fold_accuracy[3]
    );
}

#[test]
fn table4_time_only_is_not_sufficient() {
    // The paper: time alone gives 89.3 %, well below the MLP's 97 %.
    let ds = small_campaign(53);
    let t4 = table4(&ds, &config());
    let mlp_csi = t4
        .cell(ModelKind::Mlp, FeatureView::Csi)
        .expect("cell")
        .average();
    assert!(
        t4.time_only_accuracy < mlp_csi,
        "time-only {} vs MLP/CSI {mlp_csi}",
        t4.time_only_accuracy
    );
    assert!((0.5..1.0).contains(&t4.time_only_accuracy));
}

#[test]
fn table5_shape_nn_beats_ols_on_temperature() {
    let ds = small_campaign(54);
    let rows = table5(&ds, &config());
    let linear = rows
        .iter()
        .find(|r| r.kind == RegressorKind::Linear)
        .expect("linear row")
        .average();
    let nn = rows
        .iter()
        .find(|r| r.kind == RegressorKind::NeuralNetwork)
        .expect("nn row")
        .average();
    // The paper's §V-D conclusion: the environment is embedded in CSI
    // non-linearly, so the non-linear model out-regresses OLS. In this
    // simulator the strongest non-linearity sits in the humidity channel
    // (RH divides absolute humidity by the Magnus saturation curve), so
    // the robust assertions are: the NN clearly wins on humidity MAPE
    // and is at least competitive on temperature.
    assert!(
        nn.mape_humidity < linear.mape_humidity,
        "NN MAPE H {} vs OLS {}",
        nn.mape_humidity,
        linear.mape_humidity
    );
    assert!(
        nn.mae_temperature < linear.mae_temperature + 0.5,
        "NN MAE T {} vs OLS {}",
        nn.mae_temperature,
        linear.mae_temperature
    );
    // Both are far better than chance (the fold temperature spread is
    // several degrees).
    assert!(nn.mae_temperature < 5.0, "NN MAE T {}", nn.mae_temperature);
}
