//! Fault-tolerance integration tests: scripted worker/trainer panics,
//! corrupt and dropped input, the run-level accounting identity
//! `pushed = scored + quarantined + dropped`, and crash-safe
//! checkpoint recovery with bitwise-identical predictions.

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::persist;
use occusense_core::sim::{FaultKind, FaultPlan, OfficeSimulator, ScenarioConfig};
use occusense_core::CsiRecord;
use occusense_serve::{
    BackpressurePolicy, BatchConfig, CheckpointConfig, OnlineTrainingConfig, ServeConfig,
    ServeRuntime, SubmitError,
};
use std::path::PathBuf;
use std::time::Duration;

fn quick_detector(seed: u64) -> OccupancyDetector {
    let train = occusense_core::sim::simulate(&ScenarioConfig::quick(1200.0, seed));
    OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            mlp_epochs: 2,
            seed,
            ..DetectorConfig::default()
        },
    )
}

fn trace(duration_s: f64, seed: u64) -> Vec<CsiRecord> {
    OfficeSimulator::new(ScenarioConfig::quick(duration_s, seed))
        .stream()
        .collect()
}

/// A unique, empty scratch directory for one test's checkpoints.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("occusense-ft-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One shard, batch size 1, lossless ingest: the configuration under
/// which fault accounting is exact to the single record.
fn precise_config() -> ServeConfig {
    let mut config = ServeConfig {
        n_shards: 1,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        batch: BatchConfig {
            max_batch: 1,
            max_delay: Duration::from_millis(5),
        },
        online: None,
        ..ServeConfig::default()
    };
    config.supervisor.panic_on_trigger = true;
    config
}

/// The acceptance scenario: a scripted panic mid-run must leave a
/// restarted shard, exact accounting, and a checkpoint that restores
/// bitwise-identical predictions in a fresh runtime.
#[test]
fn worker_panic_restarts_shard_and_checkpoint_restores_bitwise() {
    const PANIC_AT: usize = 50;
    let detector = quick_detector(21);
    let ckpt_dir = scratch_dir("acceptance");
    let mut config = precise_config();
    config.checkpoint = Some(CheckpointConfig::new(&ckpt_dir));

    let records = trace(60.0, 900);
    let plan = FaultPlan::new().with(FaultKind::WorkerPanic, PANIC_AT, 1);
    let (runtime, predictions) =
        ServeRuntime::start(detector.clone(), config.clone()).expect("start");
    let mut client = runtime.client("acceptance-sensor");
    for (i, record) in records.iter().enumerate() {
        let faulted = plan.apply(i, *record).expect("plan has no dropouts");
        client.submit(faulted).expect("Block policy accepts all");
    }
    let report = runtime.shutdown();

    // Exactly one supervised restart, exactly the trigger record lost.
    assert_eq!(report.faults.shard_restarts, vec![1]);
    assert_eq!(report.faults.poisoned_records, 1);
    assert_eq!(report.faults.uncontained_panics, 0);
    assert_eq!(report.records_served, records.len() as u64 - 1);
    assert_eq!(report.unaccounted_records(), 0);
    let letter = &report.faults.dead_letters[0];
    assert_eq!(letter.seq, PANIC_AT as u64);
    assert!(
        letter.reason.contains("worker panic"),
        "reason: {}",
        letter.reason
    );
    assert!(report.faults.panics.iter().any(|p| p.contains("shard 0")));

    // Ordering and bitwise fidelity survive the restart: every scored
    // record (all but the quarantined one) matches offline inference.
    let mut expected_seq = 0u64;
    for p in predictions {
        if expected_seq == PANIC_AT as u64 {
            expected_seq += 1; // quarantined, never scored
        }
        assert_eq!(p.seq, expected_seq, "per-sensor order broke");
        let (occupied, proba) = detector.predict_record(&records[p.seq as usize]);
        assert_eq!(p.proba.to_bits(), proba.to_bits());
        assert_eq!(p.occupied, occupied);
        expected_seq += 1;
    }
    assert_eq!(expected_seq, records.len() as u64);

    // The shutdown checkpoint is the newest valid one and reloads to a
    // detector that predicts bitwise-identically…
    assert!(report.faults.checkpoints_written >= 1);
    let (version, _path, restored) = persist::load_latest(&ckpt_dir)
        .expect("scan checkpoints")
        .expect("a checkpoint was written");
    assert_eq!(version, report.model_version);
    for record in &records {
        let (_, original) = detector.predict_record(record);
        let (_, recovered) = restored.predict_record(record);
        assert_eq!(original.to_bits(), recovered.to_bits());
    }

    // …and a runtime resumed from it serves the same bits end to end.
    let (resumed, resumed_rx) = ServeRuntime::start(restored, precise_config()).expect("start");
    let mut client = resumed.client("acceptance-sensor");
    for record in &records {
        client.submit(*record).expect("Block policy accepts all");
    }
    let resumed_report = resumed.shutdown();
    assert_eq!(resumed_report.records_served, records.len() as u64);
    for p in resumed_rx {
        let (_, proba) = detector.predict_record(&records[p.seq as usize]);
        assert_eq!(p.proba.to_bits(), proba.to_bits(), "resumed run diverged");
    }

    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn non_finite_and_dropped_records_stay_accounted() {
    const NAN_START: usize = 10;
    const NAN_LEN: usize = 5;
    const DROP_START: usize = 100;
    const DROP_LEN: usize = 20;
    let records = trace(120.0, 901);
    assert!(records.len() > DROP_START + DROP_LEN);
    let plan = FaultPlan::new()
        .with(FaultKind::NanCsi, NAN_START, NAN_LEN)
        .with(FaultKind::Dropout, DROP_START, DROP_LEN)
        .with(FaultKind::Spike { factor: 1e6 }, 150, 3);

    let (runtime, predictions) =
        ServeRuntime::start(quick_detector(22), precise_config()).expect("start");
    let mut client = runtime.client("noisy-sensor");
    let mut submitted = 0u64;
    for (i, record) in records.iter().enumerate() {
        if let Some(faulted) = plan.apply(i, *record) {
            client.submit(faulted).expect("Block policy accepts all");
            submitted += 1;
        }
    }
    assert_eq!(submitted, (records.len() - DROP_LEN) as u64);
    let report = runtime.shutdown();

    // NaN records quarantine (never panic), dropouts never arrive, and
    // spiked records stay scorable; nothing is lost unexplained.
    assert_eq!(report.faults.poisoned_records, NAN_LEN as u64);
    assert_eq!(report.faults.shard_restarts, vec![0]);
    assert_eq!(report.records_served, submitted - NAN_LEN as u64);
    assert_eq!(report.unaccounted_records(), 0);
    assert_eq!(report.faults.dead_letters.len(), NAN_LEN);
    assert!(report
        .faults
        .dead_letters
        .iter()
        .all(|d| d.reason.contains("non-finite")));
    assert_eq!(
        predictions.into_iter().count() as u64,
        report.records_served
    );
}

#[test]
fn trainer_panic_falls_back_to_last_snapshot_without_losing_serving() {
    let records = trace(300.0, 902);
    let plan = FaultPlan::new().with(FaultKind::TrainerPanic, 200, 1);
    let mut config = ServeConfig {
        n_shards: 1,
        queue_capacity: 128,
        policy: BackpressurePolicy::Block,
        batch: BatchConfig::default(),
        online: Some(OnlineTrainingConfig {
            publish_every_updates: 1,
            ..OnlineTrainingConfig::default()
        }),
        ..ServeConfig::default()
    };
    config.supervisor.panic_on_trigger = true;

    let (runtime, predictions) = ServeRuntime::start(quick_detector(23), config).expect("start");
    let mut client = runtime.client("labelled-sensor");
    for (i, record) in records.iter().enumerate() {
        let faulted = plan.apply(i, *record).expect("plan has no dropouts");
        let label = faulted.occupancy();
        client
            .submit_labelled(faulted, label)
            .expect("Block policy");
    }
    let report = runtime.shutdown();

    // The trainer panicked, lost exactly that labelled record, rebuilt
    // from the published snapshot and kept going — while the inference
    // path scored every single submission.
    assert_eq!(report.faults.trainer_restarts, 1);
    assert_eq!(report.faults.trainer_poisoned, 1);
    assert_eq!(report.faults.uncontained_panics, 0);
    assert_eq!(report.records_served, records.len() as u64);
    assert_eq!(report.unaccounted_records(), 0);
    assert!(report.model_publishes >= 1);
    assert!(
        report.faults.panics.iter().any(|p| p.contains("trainer")),
        "panic log: {:?}",
        report.faults.panics
    );
    assert_eq!(
        predictions.into_iter().count() as u64,
        report.records_served
    );
}

#[test]
fn shard_past_restart_limit_fails_closed_not_silent() {
    let mut config = precise_config();
    config.queue_capacity = 16;
    config.supervisor.max_restarts_per_shard = 1;
    let records = trace(60.0, 903);
    let plan =
        FaultPlan::new()
            .with(FaultKind::WorkerPanic, 5, 1)
            .with(FaultKind::WorkerPanic, 10, 1);

    let (runtime, predictions) = ServeRuntime::start(quick_detector(24), config).expect("start");
    let mut client = runtime.client("doomed-sensor");
    let mut shut_down = false;
    let mut submitted = 0u64;
    for (i, record) in records.iter().enumerate() {
        match client.submit(plan.apply(i, *record).expect("no dropouts")) {
            Ok(()) => submitted += 1,
            Err(SubmitError::Shutdown) => {
                shut_down = true;
                break;
            }
            Err(SubmitError::Rejected) => unreachable!("Block policy never rejects"),
        }
    }
    // The worker races ahead of the producer, so the stream may end
    // before the second panic lands; keep probing with fresh records
    // until the failed shard's closed queue turns producers away.
    let mut ts = records.last().expect("non-empty trace").timestamp_s;
    while !shut_down {
        ts += 0.5;
        match client.submit(CsiRecord::new(ts, [0.01; 64], 21.0, 40.0, 0)) {
            Ok(()) => submitted += 1,
            Err(SubmitError::Shutdown) => shut_down = true,
            Err(SubmitError::Rejected) => unreachable!("Block policy never rejects"),
        }
    }

    let report = runtime.shutdown();
    // Two panics against a limit of one: the shard fails *closed* —
    // restarts recorded, producers refused, and still not one record
    // unaccounted for (the remnant is quarantined, not leaked).
    assert_eq!(report.faults.shard_restarts, vec![2]);
    assert!(report.faults.poisoned_records >= 2);
    assert_eq!(report.unaccounted_records(), 0);
    assert_eq!(
        report.shard_queues[0].pushed, submitted,
        "accepted exactly the Ok submissions"
    );
    assert_eq!(
        report.records_served + report.faults.poisoned_records,
        submitted,
        "every accepted record was scored or quarantined"
    );
    assert_eq!(
        predictions.into_iter().count() as u64,
        report.records_served
    );
}
