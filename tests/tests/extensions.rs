//! Integration tests for the extension pipelines: activity recognition,
//! occupant counting, windowed features, quantisation and the detector
//! persistence behind the CLI.

use occusense_core::activity::{ActivityConfig, ActivityRecognizer};
use occusense_core::counting::{CountingConfig, OccupancyCounter};
use occusense_core::dataset::windowed::WindowedView;
use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::nn::quantize::QuantizedMlp;
use occusense_core::persist;
use occusense_core::sim::{simulate_annotated, ScenarioConfig};
use occusense_core::{Dataset, FeatureView};
use occusense_integration::quick_split;

#[test]
fn activity_recognizer_end_to_end() {
    let (ds, labels) = simulate_annotated(&ScenarioConfig::quick(2000.0, 201));
    let split = (ds.len() * 7) / 10;
    let train: Dataset = ds.records()[..split].iter().copied().collect();
    let test: Dataset = ds.records()[split..].iter().copied().collect();
    let model = ActivityRecognizer::train(
        &train,
        &labels[..split],
        &ActivityConfig {
            epochs: 4,
            ..ActivityConfig::default()
        },
    );
    let cm = model.evaluate(&test, &labels[split..]);
    assert!(cm.accuracy() > 0.5, "{cm}");
    // The occupancy view is consistent with the activity view.
    let occ = model.predict_occupancy(&test);
    let act = model.predict(&test);
    for (o, a) in occ.iter().zip(&act) {
        assert_eq!(*o == 0, *a == occusense_core::sim::ActivityClass::Empty);
    }
}

#[test]
fn counter_end_to_end() {
    let (train, test) = quick_split(2000.0, 202);
    let counter = OccupancyCounter::train(
        &train,
        &CountingConfig {
            epochs: 4,
            ..CountingConfig::default()
        },
    );
    let scores = counter.evaluate(&test);
    assert!(
        scores.occupancy_accuracy > 0.7,
        "{}",
        scores.occupancy_accuracy
    );
    assert!(scores.count_mae.is_finite());
}

#[test]
fn windowed_features_are_consistent_over_simulated_data() {
    let (train, _) = quick_split(600.0, 203);
    let view = WindowedView::new(8);
    let x = view.design_matrix(&train);
    assert_eq!(x.shape(), (train.len(), 128));
    // Occupied motion produces larger windowed stds than the empty room.
    let labels = train.labels();
    let mean_std = |label: u8| -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        for (i, &l) in labels.iter().enumerate() {
            if l == label && i >= 8 {
                total += x.row(i)[64..].iter().sum::<f64>();
                n += 1;
            }
        }
        total / n.max(1) as f64
    };
    assert!(
        mean_std(1) > mean_std(0),
        "occupied window-std {} vs empty {}",
        mean_std(1),
        mean_std(0)
    );
}

#[test]
fn quantized_detector_stays_accurate() {
    let (train, test) = quick_split(1600.0, 204);
    let det = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            features: FeatureView::Csi,
            mlp_epochs: 4,
            ..DetectorConfig::default()
        },
    );
    let mlp = det.mlp().expect("MLP");
    let q = QuantizedMlp::from_mlp(mlp);
    let x = det.features_of(&test);
    let full = mlp.predict_labels(&x);
    let quant = q.predict_labels(&x);
    let agree = full.iter().zip(&quant).filter(|(a, b)| a == b).count();
    let agreement = agree as f64 / full.len() as f64;
    assert!(agreement > 0.97, "int8 agreement {agreement}");
    assert!(q.size_kib() < mlp.size_kib(4) / 3.0);
}

#[test]
fn persisted_detector_round_trips_through_files() {
    let (train, test) = quick_split(1200.0, 205);
    let det = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            mlp_epochs: 3,
            ..DetectorConfig::default()
        },
    );
    let mut buf = Vec::new();
    persist::save_detector(&mut buf, &det).expect("save");
    let loaded = persist::load_detector(&buf[..]).expect("load");
    assert_eq!(loaded.predict_proba(&test), det.predict_proba(&test));
}
