//! Integration-test crate for the `occusense` workspace.
//!
//! The library target holds shared test helpers; the cross-crate tests
//! live in `tests/`.

#![deny(unsafe_code)]

use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::Dataset;

/// Simulates the full `turetta2022` campaign at a low sampling rate —
/// small enough for CI, large enough for every fold to be populated.
pub fn small_campaign(seed: u64) -> Dataset {
    let mut cfg = ScenarioConfig::turetta2022(seed);
    cfg.sample_rate_hz = 0.05; // one sample / 20 s → ~13.7 k records
    simulate(&cfg)
}

/// Simulates a quick two-subject scenario and splits it 70/30 in time.
pub fn quick_split(duration_s: f64, seed: u64) -> (Dataset, Dataset) {
    let ds = simulate(&ScenarioConfig::quick(duration_s, seed));
    let split = (ds.len() * 7) / 10;
    (
        ds.records()[..split].iter().copied().collect(),
        ds.records()[split..].iter().copied().collect(),
    )
}
